//! Integration tests for the paper's headline claims, end to end through
//! the real pipeline (synthetic dataset → telemetry → fingerprints →
//! dictionary → recognition).

use efd::prelude::*;
use efd_core::observation::LabeledObservation;
use efd_eval::classifier::{EfdClassifier, ExecutionClassifier};
use efd_eval::experiments::{run_experiment, EvalOptions, ExperimentKind};
use efd_telemetry::catalog::small_catalog;

fn dataset() -> Dataset {
    Dataset::with_catalog(DatasetSpec::default(), small_catalog())
}

fn headline(d: &Dataset) -> MetricId {
    d.catalog().id("nr_mapped_vmstat").unwrap()
}

/// §1/§6: "F-scores above 95 percent within the first 2 minutes by only
/// using a single system metric."
#[test]
fn f_score_above_95_with_one_metric_and_two_minutes() {
    let d = dataset();
    let mut c = EfdClassifier::new(headline(&d));
    let r = run_experiment(
        ExperimentKind::NormalFold,
        &mut c,
        &d,
        &EvalOptions::default(),
    );
    assert!(
        r.mean_f1 > 0.95,
        "normal-fold F1 = {} (per fold: {:?})",
        r.mean_f1,
        r.per_variant
    );
    // The model fitted along the way used exactly one metric and the
    // [60:120] window.
    let model = c.model().unwrap();
    assert_eq!(model.config().metrics.len(), 1);
    assert_eq!(model.config().intervals, vec![Interval::PAPER_DEFAULT]);
}

/// §5: "a collision between SP and BT … The example EFD was fixed to
/// rounding depth 2. Rounding depth 3 avoids this collision and also
/// recognizes BT."
#[test]
fn sp_bt_collide_at_depth_2_and_separate_at_depth_3() {
    let d = dataset();
    let metric = headline(&d);
    let selection = MetricSelection::single(metric);
    let labels = d.labels();

    let learn = |depth: u8| -> EfdDictionary {
        let mut dict = EfdDictionary::new(RoundingDepth::new(depth));
        for (i, label) in labels.iter().enumerate() {
            if label.app != "sp" && label.app != "bt" {
                continue;
            }
            let means: Vec<f64> = d
                .window_means(i, &selection, Interval::PAPER_DEFAULT)
                .iter()
                .map(|m| m[0])
                .collect();
            dict.learn(&LabeledObservation {
                label: label.clone(),
                query: Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means),
            });
        }
        dict
    };

    // Depth 2: keys collide. Most BT X runs resolve to the tie array with
    // SP first (the paper's evaluation rule then scores SP); a few carry a
    // stray off-grain key — the paper's "measurement variation".
    let d2 = learn(2);
    assert!(
        d2.stats().colliding_entries > 0,
        "no SP/BT collisions at depth 2"
    );
    let bt_x_runs: Vec<usize> = (0..d.len())
        .filter(|&i| labels[i].app == "bt" && labels[i].input == "X")
        .collect();
    let query_of = |i: usize| {
        let means: Vec<f64> = d
            .window_means(i, &selection, Interval::PAPER_DEFAULT)
            .iter()
            .map(|m| m[0])
            .collect();
        Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means)
    };
    let ties = bt_x_runs
        .iter()
        .filter(|&&i| {
            matches!(
                &d2.recognize(&query_of(i)).verdict,
                Verdict::Ambiguous(apps) if apps[0] == "sp"
            )
        })
        .count();
    assert!(
        ties * 2 > bt_x_runs.len(),
        "only {ties}/{} BT X runs tie with SP at depth 2",
        bt_x_runs.len()
    );

    // Depth 3: BT and SP are recognized correctly.
    let d3 = learn(3);
    for &i in &bt_x_runs {
        assert_eq!(
            d3.recognize(&query_of(i)).verdict,
            Verdict::Recognized("bt".into()),
            "bt run {i} at depth 3"
        );
    }
    let sp_run = (0..d.len()).find(|&i| labels[i].app == "sp").unwrap();
    assert_eq!(
        d3.recognize(&query_of(sp_run)).verdict,
        Verdict::Recognized("sp".into())
    );
}

/// §5: "execution fingerprints repeat even for different application
/// input sizes. This, however, does not apply to all applications
/// (e.g. miniAMR)."
#[test]
fn miniamr_fingerprints_track_input_while_ft_repeats() {
    let d = dataset();
    let metric = headline(&d);
    let selection = MetricSelection::single(metric);
    let depth = RoundingDepth::new(2);

    let fp_of = |app: &str, input: &str| -> f64 {
        let i = (0..d.len())
            .find(|&i| d.labels()[i].app == app && d.labels()[i].input == input)
            .unwrap();
        depth.round(d.window_means(i, &selection, Interval::PAPER_DEFAULT)[1][0])
    };

    assert_eq!(fp_of("ft", "X"), fp_of("ft", "Y"));
    assert_eq!(fp_of("ft", "X"), fp_of("ft", "Z"));
    assert_ne!(fp_of("miniAMR", "X"), fp_of("miniAMR", "Z"));
}

/// §5: "If unknown applications produce execution fingerprints that are
/// not in the dictionary, they will not be recognized and thus correctly
/// labeled as unknown."
#[test]
fn unknown_applications_fall_through_to_unknown() {
    let d = dataset();
    let mut c = EfdClassifier::new(headline(&d));
    let labels = d.labels();
    let train: Vec<usize> = (0..d.len())
        .filter(|&i| labels[i].app != "CoMD")
        .collect();
    let held_out: Vec<usize> = (0..d.len())
        .filter(|&i| labels[i].app == "CoMD")
        .collect();
    c.fit(&d, &train);
    let preds = c.predict_batch(&d, &held_out);
    let unknown = preds.iter().filter(|p| *p == "unknown").count();
    assert!(
        unknown as f64 / preds.len() as f64 > 0.8,
        "only {unknown}/{} CoMD runs flagged unknown: {preds:?}",
        preds.len()
    );
}

/// The data-diet claim: recognition needs only the first two minutes —
/// a trace truncated at 120 s yields the same verdict as the full trace.
#[test]
fn two_minute_prefix_suffices() {
    let d = dataset();
    let metric = headline(&d);
    let selection = MetricSelection::single(metric);
    let train: Vec<ExecutionTrace> = (1..d.len())
        .map(|i| d.materialize_prefix(i, &selection, 120))
        .collect();
    let efd = Efd::fit_traces(EfdConfig::single_metric(metric), &train);

    let full = d.materialize(0, &selection);
    let prefix = d.materialize_prefix(0, &selection, 120);
    assert!(prefix.sample_count() < full.sample_count() / 2);
    let (a, b) = (efd.recognize_trace(&full), efd.recognize_trace(&prefix));
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.best(), Some(d.labels()[0].app.as_str()));
}

/// Paper Table 1 is reproduced bit-for-bit by the rounding primitive.
#[test]
fn table1_rows_exact() {
    for (value, expected) in efd_eval::paper::TABLE1 {
        for (i, exp) in expected.iter().enumerate() {
            let depth = (5 - i) as u8;
            let got = round_to_depth(value, depth);
            assert_eq!(got, exp.unwrap_or(value), "round({value}, {depth})");
        }
    }
}
