//! Facade smoke test: every `efd::*` re-export resolves, and a minimal
//! learn → recognize round trip through the prelude succeeds.

use efd::prelude::*;

/// Touch each re-exported crate module through the facade path, so a
/// missing `pub use` in `src/lib.rs` fails this test rather than only
/// downstream builds.
#[test]
fn reexports_resolve() {
    // efd::core
    let depth: efd::core::rounding::RoundingDepth = RoundingDepth::new(2);
    assert_eq!(depth.get(), 2);
    // efd::telemetry
    let window: efd::telemetry::interval::Interval = Interval::PAPER_DEFAULT;
    assert_eq!(window.duration(), 60);
    // efd::workload
    assert_eq!(efd::workload::AppId::ALL.len(), 11);
    // efd::ml
    assert_eq!(efd::ml::metrics::UNKNOWN_LABEL, "unknown");
    // efd::eval
    assert!(!efd::eval::paper::HEADLINE_METRIC.is_empty());
    // efd::util
    assert_eq!(efd::util::SplitMix64::new(7).next_below(1), 0);
}

#[test]
fn prelude_learn_recognize_roundtrip() {
    let mut dict = EfdDictionary::new(RoundingDepth::new(2));
    let w = Interval::PAPER_DEFAULT;
    for (app, mean) in [("ft", 6037.2), ("sp", 7617.8)] {
        dict.learn(&LabeledObservation {
            label: AppLabel::new(app, "X"),
            query: Query {
                points: vec![ObsPoint {
                    metric: MetricId(0),
                    node: NodeId(0),
                    interval: w,
                    mean,
                }],
            },
        });
    }

    // A nearby mean lands in the same depth-2 bucket and is recognized.
    let query = Query {
        points: vec![ObsPoint {
            metric: MetricId(0),
            node: NodeId(0),
            interval: w,
            mean: 5980.4,
        }],
    };
    let recognition = dict.recognize(&query);
    assert_eq!(recognition.verdict, Verdict::Recognized("ft".to_string()));

    // A mean far from every learned bucket stays unknown.
    let stranger = Query {
        points: vec![ObsPoint {
            metric: MetricId(0),
            node: NodeId(0),
            interval: w,
            mean: 123.0,
        }],
    };
    assert_eq!(dict.recognize(&stranger).verdict, Verdict::Unknown);
}
