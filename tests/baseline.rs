//! The Taxonomist baseline, end to end on generated telemetry (reduced
//! forest size — these tests run unoptimized).

use efd_eval::classifier::{EfdClassifier, ExecutionClassifier, TaxonomistClassifier};
use efd_eval::experiments::{run_experiment, EvalOptions, ExperimentKind};
use efd_ml::taxonomist::TaxonomistConfig;
use efd_telemetry::catalog::small_catalog;
use efd_workload::{Dataset, DatasetSpec};

fn dataset() -> Dataset {
    Dataset::with_catalog(DatasetSpec::default(), small_catalog())
}

fn quick_cfg() -> TaxonomistConfig {
    TaxonomistConfig {
        n_trees: 12,
        ..Default::default()
    }
}

#[test]
fn taxonomist_normal_fold_is_high() {
    let d = dataset();
    let mut c = TaxonomistClassifier::new(quick_cfg());
    let r = run_experiment(
        ExperimentKind::NormalFold,
        &mut c,
        &d,
        &EvalOptions { folds: 3, seed: 0x7A } ,
    );
    assert!(r.mean_f1 > 0.9, "baseline normal fold {}", r.mean_f1);
}

#[test]
fn both_systems_agree_on_easy_runs_with_different_data_diets() {
    let d = dataset();
    let metric = d.catalog().id("nr_mapped_vmstat").unwrap();
    let train: Vec<usize> = (0..d.len()).filter(|i| i % 3 != 0).collect();
    let test: Vec<usize> = (0..d.len()).filter(|i| i % 3 == 0).take(20).collect();

    let mut efd = EfdClassifier::new(metric);
    efd.fit(&d, &train);
    let efd_preds = efd.predict_batch(&d, &test);

    let mut tax = TaxonomistClassifier::new(quick_cfg());
    tax.fit(&d, &train);
    let tax_preds = tax.predict_batch(&d, &test);

    let labels = d.labels();
    let agree = efd_preds
        .iter()
        .zip(&tax_preds)
        .zip(&test)
        .filter(|((e, t), &i)| e == t && **e == labels[i].app)
        .count();
    assert!(
        agree as f64 / test.len() as f64 > 0.85,
        "systems agree on only {agree}/{} runs\nefd: {efd_preds:?}\ntax: {tax_preds:?}",
        test.len()
    );
}
