//! The Figure 2 *shape* as executable assertions (EFD side; the Taxonomist
//! side runs in `tests/baseline.rs` with a reduced forest).
//!
//! Absolute numbers are substrate-dependent; the shape is the paper's
//! result: normal fold ≈ 1, soft experiments high, hard experiments
//! clearly lower.

use efd_eval::classifier::EfdClassifier;
use efd_eval::experiments::{run_experiment, EvalOptions, ExperimentKind};
use efd_telemetry::catalog::small_catalog;
use efd_workload::{Dataset, DatasetSpec};

#[test]
fn figure2_shape_holds_for_the_efd() {
    let d = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = d.catalog().id("nr_mapped_vmstat").unwrap();
    let opts = EvalOptions::default();
    let mut c = EfdClassifier::new(metric);

    let mut f = std::collections::HashMap::new();
    for kind in ExperimentKind::ALL {
        let r = run_experiment(kind, &mut c, &d, &opts);
        f.insert(kind, r.mean_f1);
    }

    let normal = f[&ExperimentKind::NormalFold];
    let soft_input = f[&ExperimentKind::SoftInput];
    let soft_unknown = f[&ExperimentKind::SoftUnknown];
    let hard_input = f[&ExperimentKind::HardInput];
    let hard_unknown = f[&ExperimentKind::HardUnknown];

    // Headline: near-perfect recognition of repeated executions.
    assert!(normal > 0.97, "normal fold {normal}");
    // Soft experiments stay high (paper: 0.97-0.98).
    assert!(soft_input > 0.9, "soft input {soft_input}");
    assert!(soft_unknown > 0.9, "soft unknown {soft_unknown}");
    // Hard experiments are the paper's "room for improvement".
    assert!(
        hard_input < soft_input - 0.1,
        "hard input {hard_input} should sit clearly below soft input {soft_input}"
    );
    assert!(
        hard_unknown < soft_unknown - 0.05,
        "hard unknown {hard_unknown} vs soft unknown {soft_unknown}"
    );
    // …but both remain far above chance.
    assert!(hard_input > 0.4, "hard input {hard_input}");
    assert!(hard_unknown > 0.5, "hard unknown {hard_unknown}");
}

#[test]
fn efd_results_are_deterministic() {
    let d = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = d.catalog().id("nr_mapped_vmstat").unwrap();
    let opts = EvalOptions::default();
    let r1 = run_experiment(
        ExperimentKind::NormalFold,
        &mut EfdClassifier::new(metric),
        &d,
        &opts,
    );
    let r2 = run_experiment(
        ExperimentKind::NormalFold,
        &mut EfdClassifier::new(metric),
        &d,
        &opts,
    );
    assert_eq!(r1.mean_f1, r2.mean_f1);
    assert_eq!(r1.per_variant, r2.per_variant);
}
