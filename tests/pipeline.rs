//! End-to-end pipeline tests across crates: generation → learning →
//! persistence → restore → (offline|online) recognition.

use efd::prelude::*;
use efd_core::serialize;
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::storage;

fn dataset() -> Dataset {
    Dataset::with_catalog(DatasetSpec::default(), small_catalog())
}

#[test]
fn train_dump_restore_recognize() {
    let d = dataset();
    let metric = d.catalog().id("nr_mapped_vmstat").unwrap();
    let selection = MetricSelection::single(metric);

    let train: Vec<ExecutionTrace> = (0..d.len())
        .filter(|i| i % 4 != 0)
        .map(|i| d.materialize_prefix(i, &selection, 120))
        .collect();
    let efd = Efd::fit_traces(EfdConfig::single_metric(metric), &train);

    // Persist and restore the dictionary.
    let json = serialize::to_json(efd.dictionary(), d.catalog());
    let restored = serialize::from_json(&json, d.catalog()).unwrap();
    assert_eq!(restored.len(), efd.dictionary().len());
    assert_eq!(restored.depth(), efd.depth());

    // The restored dictionary gives identical verdicts on held-out runs.
    let mut checked = 0;
    for i in (0..d.len()).filter(|i| i % 4 == 0).take(30) {
        let trace = d.materialize_prefix(i, &selection, 120);
        let q = Query::from_trace(&trace, &[metric], &[Interval::PAPER_DEFAULT]);
        assert_eq!(
            efd.recognize(&q).verdict,
            restored.recognize(&q).verdict,
            "run {i}"
        );
        checked += 1;
    }
    assert_eq!(checked, 30);
}

#[test]
fn online_verdict_matches_offline() {
    let d = dataset();
    let metric = d.catalog().id("nr_mapped_vmstat").unwrap();
    let selection = MetricSelection::single(metric);
    let train: Vec<ExecutionTrace> = (1..d.len())
        .map(|i| d.materialize_prefix(i, &selection, 120))
        .collect();
    let efd = Efd::fit_traces(EfdConfig::single_metric(metric), &train);

    let job = d.materialize_prefix(0, &selection, 150);
    let offline = efd.recognize_trace(&job);

    let nodes: Vec<NodeId> = job.nodes.iter().map(|n| n.node).collect();
    let mut rec = efd_core::online::OnlineRecognizer::new(
        efd.dictionary(),
        &[metric],
        &nodes,
        vec![Interval::PAPER_DEFAULT],
    );
    let mut online = None;
    'outer: for t in 0..job.duration_s {
        for node in &job.nodes {
            let v = node.series[0].at(t).unwrap_or(f64::NAN);
            if let Some(r) = rec.push(node.node, metric, t, v) {
                online = Some(r);
                break 'outer;
            }
        }
    }
    let online = online.expect("online verdict by 120 s");
    assert_eq!(online.verdict, offline.verdict);
    assert_eq!(online.matched_points, offline.matched_points);
}

#[test]
fn trace_binary_storage_roundtrip_through_real_data() {
    let d = dataset();
    let selection = MetricSelection::new(d.catalog().ids().collect());
    let trace = d.materialize_prefix(5, &selection, 60);

    let bytes = storage::to_bytes(&trace);
    let back = storage::from_bytes(&bytes).unwrap();
    assert_eq!(back.label, trace.label);
    assert_eq!(back.node_count(), trace.node_count());
    assert_eq!(back.sample_count(), trace.sample_count());
    // Window means survive exactly (fingerprints would be identical).
    for node in &trace.nodes {
        for (pos, series) in node.series.iter().enumerate() {
            let a = series.window_mean(Interval::new(0, 60));
            let b = back.nodes[node.node.index()].series[pos].window_mean(Interval::new(0, 60));
            assert!(a == b || (a.is_nan() && b.is_nan()));
        }
    }

    let json = storage::to_json(&trace).unwrap();
    let back = storage::from_json(&json).unwrap();
    assert_eq!(back.label, trace.label);
}

#[test]
fn incremental_learning_extends_a_live_dictionary() {
    // "Learning new applications is as simple as adding new keys."
    let d = dataset();
    let metric = d.catalog().id("nr_mapped_vmstat").unwrap();
    let selection = MetricSelection::single(metric);
    let labels = d.labels();

    // Start with a 10-app dictionary (no kripke).
    let mut dict = EfdDictionary::new(RoundingDepth::new(3));
    for i in (0..d.len()).filter(|&i| labels[i].app != "kripke") {
        let trace = d.materialize_prefix(i, &selection, 120);
        dict.learn(&efd_core::observation::LabeledObservation::from_trace(
            &trace,
            &[metric],
            &[Interval::PAPER_DEFAULT],
        ));
    }
    let kripke_runs: Vec<usize> = (0..d.len()).filter(|&i| labels[i].app == "kripke").collect();
    let probe = {
        let trace = d.materialize_prefix(kripke_runs[0], &selection, 120);
        Query::from_trace(&trace, &[metric], &[Interval::PAPER_DEFAULT])
    };
    assert_eq!(dict.recognize(&probe).verdict, Verdict::Unknown);

    // Add kripke from its other runs — no retraining of anything.
    let before = dict.len();
    for &i in &kripke_runs[1..] {
        let trace = d.materialize_prefix(i, &selection, 120);
        dict.learn(&efd_core::observation::LabeledObservation::from_trace(
            &trace,
            &[metric],
            &[Interval::PAPER_DEFAULT],
        ));
    }
    assert!(dict.len() > before);
    assert_eq!(dict.recognize(&probe).best(), Some("kripke"));
}
