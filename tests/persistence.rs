//! Persistence integration: JSON ↔ EFDB round trips through the facade.
//!
//! The acceptance property of the EFDB format, end to end: a dictionary
//! dumped to either format and restored — through any chain of
//! conversions — answers a large query batch identically to the
//! original, and the EFDB encoding is canonical (one byte stream per
//! dictionary content).

use efd::core::{binfmt, serialize};
use efd::prelude::*;

const QUERY_BATCH: usize = 1_000;

/// A moderately sized deterministic dictionary: many apps × inputs ×
/// nodes on one metric, learned at depth 3.
fn build_dict(catalog: &MetricCatalog) -> (EfdDictionary, MetricId) {
    let metric = catalog.id("nr_mapped_vmstat").unwrap();
    let mut dict = EfdDictionary::new(RoundingDepth::new(3));
    let mut rng = efd::util::SplitMix64::new(0xEFDB);
    for app in 0..24 {
        for input in ["X", "Y", "Z"] {
            let label = AppLabel::new(format!("app{app:02}"), input);
            let base = 4000.0 + 250.0 * app as f64 + 3000.0 * (input.len() as f64);
            let means: Vec<f64> = (0..8)
                .map(|_| base * (1.0 + (rng.next_f64() - 0.5) * 0.02))
                .collect();
            dict.learn(&LabeledObservation {
                label,
                query: Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means),
            });
        }
    }
    (dict, metric)
}

/// A 1k-query batch cycling over learned levels with jitter, plus some
/// never-seen levels (Unknown verdicts must round-trip too).
fn query_batch(metric: MetricId) -> Vec<Query> {
    let mut rng = efd::util::SplitMix64::new(0x5EED);
    (0..QUERY_BATCH)
        .map(|i| {
            let base = if i % 7 == 6 {
                500.0 // below every learned level: Unknown
            } else {
                4000.0 + 250.0 * ((i % 24) as f64) + 3000.0 * (1 + i % 3) as f64
            };
            let means: Vec<f64> = (0..8)
                .map(|_| base * (1.0 + (rng.next_f64() - 0.5) * 0.02))
                .collect();
            Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means)
        })
        .collect()
}

#[test]
fn json_and_efdb_round_trips_answer_identically_on_1k_queries() {
    let catalog = efd::telemetry::catalog::small_catalog();
    let (dict, metric) = build_dict(&catalog);

    // JSON → dictionary.
    let via_json = serialize::from_json(&serialize::to_json(&dict, &catalog), &catalog).unwrap();
    // EFDB → dictionary.
    let bytes = binfmt::write_dictionary(&dict, &catalog);
    let via_efdb = binfmt::read_dictionary(&bytes, &catalog).unwrap();
    // JSON → EFDB → JSON → dictionary (the full conversion chain).
    let chained = {
        let j1 = serialize::to_json(&dict, &catalog);
        let d1 = serialize::from_json(&j1, &catalog).unwrap();
        let b = binfmt::write_dictionary(&d1, &catalog);
        let d2 = binfmt::read_dictionary(&b, &catalog).unwrap();
        serialize::from_json(&serialize::to_json(&d2, &catalog), &catalog).unwrap()
    };

    assert_eq!(via_json.len(), dict.len());
    assert_eq!(via_efdb.len(), dict.len());
    let mut unknowns = 0usize;
    for q in query_batch(metric) {
        let expect = dict.recognize(&q);
        if expect.verdict == Verdict::Unknown {
            unknowns += 1;
        }
        assert_eq!(via_json.recognize(&q), expect);
        assert_eq!(via_efdb.recognize(&q), expect);
        assert_eq!(chained.recognize(&q), expect);
    }
    assert!(unknowns > 0, "batch must exercise the Unknown path");
}

#[test]
fn efdb_encoding_is_canonical_across_round_trips() {
    let catalog = efd::telemetry::catalog::small_catalog();
    let (dict, _) = build_dict(&catalog);
    let bytes = binfmt::write_dictionary(&dict, &catalog);
    // EFDB → JSON → EFDB reproduces identical bytes.
    let json = serialize::to_json(&binfmt::read_dictionary(&bytes, &catalog).unwrap(), &catalog);
    let again = binfmt::write_dictionary(&serialize::from_json(&json, &catalog).unwrap(), &catalog);
    assert_eq!(bytes, again);
    // And EFDB is the compact form.
    assert!(
        bytes.len() * 2 < json.len(),
        "efdb {} bytes vs json {} bytes",
        bytes.len(),
        json.len()
    );
}

#[test]
fn efdb_snapshot_fast_path_serves_identically() {
    let catalog = efd::telemetry::catalog::small_catalog();
    let (dict, metric) = build_dict(&catalog);
    let efdb = binfmt::read(&binfmt::write_dictionary(&dict, &catalog)).unwrap();
    let snap = Snapshot::from_efdb(&efdb, &catalog, 8).unwrap();
    assert_eq!(snap.len(), dict.len());
    for q in query_batch(metric).into_iter().take(200) {
        assert_eq!(snap.recognize(&q), dict.recognize(&q).normalized());
    }
}

#[test]
fn depth_expectations_are_enforced_through_the_facade() {
    let catalog = efd::telemetry::catalog::small_catalog();
    let (dict, _) = build_dict(&catalog); // depth 3
    let json = serialize::to_json(&dict, &catalog);
    assert!(serialize::from_json_expecting(&json, &catalog, RoundingDepth::new(3)).is_ok());
    assert!(matches!(
        serialize::from_json_expecting(&json, &catalog, RoundingDepth::new(2)),
        Err(serialize::RestoreError::DepthMismatch {
            expected: 2,
            found: 3
        })
    ));
}
