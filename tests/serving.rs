//! Facade-level serving test: the full pipeline (synthetic dataset →
//! training → freeze → sharded batch) answers exactly like the
//! single-threaded dictionary, and the serve re-exports are reachable
//! through `efd::prelude` / `efd::serve`.

use std::sync::Arc;

use efd::prelude::*;
use efd_telemetry::catalog::small_catalog;

#[test]
fn served_pipeline_matches_oracle_on_dataset() {
    let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = dataset.catalog().id("nr_mapped_vmstat").unwrap();
    let selection = MetricSelection::single(metric);

    let traces: Vec<ExecutionTrace> = (0..dataset.len())
        .map(|i| dataset.materialize_prefix(i, &selection, 120))
        .collect();
    let efd = Efd::fit_traces(
        EfdConfig::single_metric_fixed(metric, RoundingDepth::new(3)),
        &traces,
    );
    let dict = efd.dictionary();

    let queries: Vec<Query> = traces
        .iter()
        .map(|t| Query::from_trace(t, &[metric], &[Interval::PAPER_DEFAULT]))
        .collect();

    let snapshot = Arc::new(Snapshot::freeze(dict, 8));
    assert_eq!(snapshot.len(), dict.len());
    let server = BatchRecognizer::new(Arc::clone(&snapshot));
    let answers = server.recognize_batch(&queries);

    for (q, served) in queries.iter().zip(&answers) {
        let oracle = dict.recognize(q).normalized();
        assert_eq!(served, &oracle);
        assert_eq!(snapshot.best(q), oracle.best());
    }

    // Training data recognizes itself (sanity that the pipeline is live).
    let recognized = answers.iter().filter(|r| r.best().is_some()).count();
    assert!(
        recognized * 10 >= answers.len() * 9,
        "only {recognized}/{} recognized",
        answers.len()
    );
}

#[test]
fn online_session_through_facade() {
    use efd::serve::OnlineSession;

    let mut dict = EfdDictionary::new(RoundingDepth::new(2));
    dict.learn(&LabeledObservation {
        label: AppLabel::new("ft", "X"),
        query: Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[6000.0, 6000.0]),
    });
    let snap = Arc::new(Snapshot::freeze(&dict, 4));

    let mut session = OnlineSession::new(
        snap,
        &[MetricId(0)],
        &[NodeId(0), NodeId(1)],
        vec![Interval::PAPER_DEFAULT],
    );
    let mut verdict = None;
    for t in 0..=session.horizon_s() {
        for n in [NodeId(0), NodeId(1)] {
            if let Some(r) = session.push(n, MetricId(0), t, 6004.0) {
                verdict = Some(r);
            }
        }
    }
    assert_eq!(verdict.expect("verdict at horizon").best(), Some("ft"));
}
