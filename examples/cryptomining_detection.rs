//! Unknown-application detection: the cryptomining scenario.
//!
//! ```sh
//! cargo run --release --example cryptomining_detection
//! ```
//!
//! The paper's motivation (a): detect allocations that "deviate from
//! allocation purpose (e.g. cryptocurrency mining)". A miner is not in the
//! dictionary, so its fingerprints miss everywhere — the EFD's in-built
//! safeguard flags it as unknown, while known science apps keep being
//! recognized. A *known-malicious* dictionary then identifies the miner
//! positively.

use efd::prelude::*;
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::noise::{Composite, NoiseProcess};
use efd_telemetry::sampler::{CollectorConfig, LdmsCollector};
use efd_util::rng::derive_seed;

/// Synthesize a miner-like job: pegged compute, memory footprint unlike
/// any learned application, tiny variance (miners are steady-state).
fn miner_trace(exec_id: u64, nodes: u16, duration_s: u32, seed: u64) -> ExecutionTrace {
    let metric = MetricId(0); // nr_mapped_vmstat position in small_catalog
    let node_traces = (0..nodes)
        .map(|n| {
            let mut noise = Composite::standard(12.0, 4.0, 0.0, derive_seed(seed, &[n as u64]));
            let mut source = move |t: f64| 23_370.0 + noise.sample(t);
            let mut collector =
                LdmsCollector::new(CollectorConfig::default(), derive_seed(seed, &[n as u64, 9]));
            NodeTrace {
                node: NodeId(n),
                series: vec![collector.collect(&mut source, duration_s)],
            }
        })
        .collect::<Vec<_>>();
    ExecutionTrace {
        exec_id,
        label: AppLabel::new("??", "?"),
        selection: MetricSelection::single(metric),
        nodes: node_traces,
        duration_s,
    }
}

fn main() {
    let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = dataset.catalog().id("nr_mapped_vmstat").unwrap();
    let selection = MetricSelection::single(metric);

    // Dictionary of sanctioned applications.
    let traces: Vec<ExecutionTrace> = (0..dataset.len())
        .map(|i| dataset.materialize_prefix(i, &selection, 120))
        .collect();
    let sanctioned = Efd::fit_traces(EfdConfig::single_metric(metric), &traces);
    println!(
        "sanctioned dictionary: {} apps, {} keys",
        sanctioned.dictionary().stats().apps,
        sanctioned.dictionary().len()
    );

    // A legitimate job is recognized…
    let legit = dataset.materialize_prefix(3, &selection, 120);
    let r = sanctioned.recognize_trace(&legit);
    println!(
        "job A -> {:?} (truth: {})",
        r.verdict,
        dataset.labels()[3]
    );
    assert!(matches!(r.verdict, Verdict::Recognized(_)));

    // …the miner is not.
    let miner = miner_trace(0xBAD, 4, 150, 0xC0FFEE);
    let r = sanctioned.recognize_trace(&miner);
    println!("job B -> {:?}  << ALERT: no known application matches", r.verdict);
    assert_eq!(r.verdict, Verdict::Unknown);

    // Second line of defense: a dictionary of *known-malicious* signatures
    // (paper motivation (c): "detect resource usage of known malicious
    // applications"). Learn the miner from a previous incident, then
    // positively identify the new sighting.
    let mut blacklist = EfdDictionary::new(RoundingDepth::new(2));
    let incident = miner_trace(0xBAD0, 4, 150, 0x5EED5);
    blacklist.learn(&LabeledObservation::from_trace(
        &ExecutionTrace {
            label: AppLabel::new("xmrig", "-"),
            ..incident
        },
        &[metric],
        &[Interval::PAPER_DEFAULT],
    ));
    let q = Query::from_trace(&miner, &[metric], &[Interval::PAPER_DEFAULT]);
    let r = blacklist.recognize(&q);
    println!("job B vs blacklist -> {:?}", r.verdict);
    assert_eq!(r.best(), Some("xmrig"));
}
