//! Online recognition: a verdict while the job is still running.
//!
//! ```sh
//! cargo run --release --example online_recognition
//! ```
//!
//! The paper's pitch is low latency: related work waits for the whole
//! execution, the EFD answers two minutes in. This example streams a job's
//! telemetry sample by sample into an [`OnlineRecognizer`] and prints the
//! moment the verdict drops.

use efd::prelude::*;
use efd_telemetry::catalog::small_catalog;

fn main() {
    let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = dataset.catalog().id("nr_mapped_vmstat").unwrap();
    let selection = MetricSelection::single(metric);

    // Train on everything except the run we will stream.
    let streamed_run = 7;
    let train: Vec<ExecutionTrace> = (0..dataset.len())
        .filter(|&i| i != streamed_run)
        .map(|i| dataset.materialize_prefix(i, &selection, 120))
        .collect();
    let efd = Efd::fit_traces(EfdConfig::single_metric(metric), &train);
    println!("dictionary ready (depth {})", efd.depth());

    // "Live" job: materialize the full trace, then replay it as a stream —
    // exactly what an LDMS subscriber would deliver.
    let job = dataset.materialize(streamed_run, &selection);
    println!(
        "job started: {} nodes, duration {} s (true label hidden: {})",
        job.node_count(),
        job.duration_s,
        job.label
    );

    let nodes: Vec<NodeId> = job.nodes.iter().map(|n| n.node).collect();
    let mut recognizer = OnlineRecognizer::new(
        efd.dictionary(),
        &[metric],
        &nodes,
        vec![Interval::PAPER_DEFAULT],
    );

    'stream: for t in 0..job.duration_s {
        for node in &job.nodes {
            let value = node.series[0].at(t).unwrap_or(f64::NAN);
            if let Some(recognition) = recognizer.push(node.node, metric, t, value) {
                println!(
                    "t = {t:>3} s: verdict {:?} after {} window means \
                     ({} of {} matched); job still has {} s to run",
                    recognition.verdict,
                    recognizer.collected(),
                    recognition.matched_points,
                    recognition.total_points,
                    job.duration_s - t
                );
                assert_eq!(recognition.best(), Some(job.label.app.as_str()));
                break 'stream;
            }
        }
    }
    println!("ground truth was: {}", job.label);
}
