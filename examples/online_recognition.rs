//! Online recognition: a verdict while the job is still running.
//!
//! ```sh
//! cargo run --release --example online_recognition
//! ```
//!
//! The paper's pitch is low latency: related work waits for the whole
//! execution, the EFD answers two minutes in. This example streams a
//! job's telemetry sample by sample into a served [`OnlineSession`]
//! (the `'static`, snapshot-backed streaming form) and prints the moment
//! the verdict drops. Because the session also implements the engine
//! API's [`Recognize`] trait, the same object answers ad-hoc queries
//! against its current publication — a session table doubles as a fleet
//! of ordinary backends.

use std::sync::Arc;

use efd::prelude::*;
use efd_telemetry::catalog::small_catalog;

fn main() {
    let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = dataset.catalog().id("nr_mapped_vmstat").unwrap();
    let selection = MetricSelection::single(metric);

    // Train on everything except the run we will stream.
    let streamed_run = 7;
    let train: Vec<ExecutionTrace> = (0..dataset.len())
        .filter(|&i| i != streamed_run)
        .map(|i| dataset.materialize_prefix(i, &selection, 120))
        .collect();
    let efd = Efd::fit_traces(EfdConfig::single_metric(metric), &train);
    println!("dictionary ready (depth {})", efd.depth());

    // Publish once; the streaming session holds the Arc and can swap to a
    // newer publication mid-stream.
    let snapshot = Arc::new(Snapshot::freeze(efd.dictionary(), 8));

    // "Live" job: materialize the full trace, then replay it as a stream —
    // exactly what an LDMS subscriber would deliver.
    let job = dataset.materialize(streamed_run, &selection);
    println!(
        "job started: {} nodes, duration {} s (true label hidden: {})",
        job.node_count(),
        job.duration_s,
        job.label
    );

    let nodes: Vec<NodeId> = job.nodes.iter().map(|n| n.node).collect();
    let mut session = OnlineSession::new(
        Arc::clone(&snapshot),
        &[metric],
        &nodes,
        vec![Interval::PAPER_DEFAULT],
    );

    'stream: for t in 0..job.duration_s {
        for node in &job.nodes {
            let value = node.series[0].at(t).unwrap_or(f64::NAN);
            if let Some(recognition) = session.push(node.node, metric, t, value) {
                println!(
                    "t = {t:>3} s: verdict {:?} after {} window means \
                     ({} of {} matched); job still has {} s to run",
                    recognition.verdict,
                    session.collected(),
                    recognition.matched_points,
                    recognition.total_points,
                    job.duration_s - t
                );
                assert_eq!(recognition.best(), Some(job.label.app.as_str()));
                break 'stream;
            }
        }
    }
    println!("ground truth was: {}", job.label);

    // The session is an engine backend too: ad-hoc queries answer against
    // the publication it currently serves, identically to the snapshot.
    let probe = Query::from_trace(
        &dataset.materialize_prefix(0, &selection, 120),
        &[metric],
        &[Interval::PAPER_DEFAULT],
    );
    let via_session = Recognize::recognize(&session, &probe);
    assert_eq!(via_session, Recognize::recognize(&snapshot, &probe));
    println!(
        "ad-hoc query through the session (engine API): {:?}",
        via_session.verdict
    );
}
