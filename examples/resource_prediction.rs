//! Resource-usage prediction by reverse lookup (paper §6 future work).
//!
//! ```sh
//! cargo run --release --example resource_prediction
//! ```
//!
//! "Populating the dictionary with different time intervals could enable
//! resource usage prediction, by using the dictionary in reverse." We
//! learn a multi-interval dictionary, recognize a job from its first two
//! minutes, then *forecast* its remaining resource usage from the stored
//! fingerprints of past runs — and check the forecast against what the job
//! actually does.

use efd::prelude::*;
use efd_core::reverse::predict_timeline_for;
use efd_telemetry::catalog::small_catalog;

fn main() {
    let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = dataset.catalog().id("nr_mapped_vmstat").unwrap();
    let selection = MetricSelection::single(metric);
    // Four fingerprint windows covering the first four minutes.
    let tiling = Interval::tiling(60, 240);

    // Pick a miniAMR run: its footprint ramps, so the forecast is
    // non-trivial.
    let target = (0..dataset.len())
        .find(|&i| dataset.labels()[i].to_string() == "miniAMR Z")
        .expect("a miniAMR Z run");

    // Learn all windows of all other runs.
    let train: Vec<ExecutionTrace> = (0..dataset.len())
        .filter(|&i| i != target)
        .map(|i| dataset.materialize(i, &selection))
        .collect();
    let config = EfdConfig {
        metrics: vec![metric],
        intervals: tiling.clone(),
        depth: DepthPolicy::Fixed(RoundingDepth::new(3)),
    };
    let efd = Efd::fit_traces(config, &train);

    // Recognize the new job from its FIRST TWO MINUTES only.
    let early = dataset.materialize_prefix(target, &selection, 120);
    let q = Query::from_trace(&early, &[metric], &[Interval::PAPER_DEFAULT]);
    let rec = efd.recognize(&q);
    let app = rec.best().expect("recognized");
    let label = rec.predicted_label().expect("label with input").clone();
    println!(
        "recognized '{label}' at t = 120 s (truth: {})",
        dataset.labels()[target]
    );

    // Reverse lookup: what will this application's nr_mapped look like for
    // the rest of the execution? Filter by the predicted input size —
    // miniAMR's footprint differs per input.
    let forecast = predict_timeline_for(efd.dictionary(), app, Some(&label.input), metric);
    let actual = dataset.materialize(target, &selection);
    println!("\n  window       forecast      actual   error");
    let mut worst = 0.0f64;
    for (interval, predicted) in &forecast {
        let mut actual_mean = 0.0;
        for node in &actual.nodes {
            actual_mean += node.series[0].window_mean(*interval);
        }
        actual_mean /= actual.node_count() as f64;
        let err = (predicted / actual_mean - 1.0).abs();
        worst = worst.max(err);
        println!(
            "  {:<10} {:>10.0}  {:>10.0}   {:>5.1}%",
            interval.to_string(),
            predicted,
            actual_mean,
            err * 100.0
        );
    }
    assert!(
        worst < 0.05,
        "forecast should track actual usage (worst error {worst:.3})"
    );
    println!("\nforecast tracks the job within {:.1}%.", worst * 100.0);
}
