//! Deviation detection: a known app behaving unlike its past runs.
//!
//! ```sh
//! cargo run --release --example anomaly_detection
//! ```
//!
//! Paper motivation (b): "detect deviations from past resource usage
//! (indicating anomalies and potential errors)". We recognize a job in its
//! first two minutes, forecast its later windows by reverse lookup, and
//! raise an alert when the observed usage leaves the envelope of all past
//! fingerprints — here injected as a memory leak that inflates
//! `nr_mapped` after t = 150 s.

use efd::prelude::*;
use efd_core::reverse::predict_usage;
use efd_telemetry::catalog::small_catalog;

/// Inject a leak: from `onset`, values grow by `rate` per second.
fn inject_leak(trace: &mut ExecutionTrace, onset: u32, rate: f64) {
    for node in &mut trace.nodes {
        for series in &mut node.series {
            let vals: Vec<f64> = series
                .values()
                .iter()
                .enumerate()
                .map(|(t, &v)| {
                    if t as u32 > onset && v.is_finite() {
                        v + rate * (t as u32 - onset) as f64
                    } else {
                        v
                    }
                })
                .collect();
            *series = TimeSeries::from_values(vals);
        }
    }
}

fn main() {
    let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = dataset.catalog().id("nr_mapped_vmstat").unwrap();
    let selection = MetricSelection::single(metric);
    let tiling = Interval::tiling(60, 240);

    let target = (0..dataset.len())
        .find(|&i| dataset.labels()[i].to_string() == "cg Y")
        .expect("a cg Y run");
    let train: Vec<ExecutionTrace> = (0..dataset.len())
        .filter(|&i| i != target)
        .map(|i| dataset.materialize(i, &selection))
        .collect();
    let efd = Efd::fit_traces(
        EfdConfig {
            metrics: vec![metric],
            intervals: tiling.clone(),
            depth: DepthPolicy::Fixed(RoundingDepth::new(3)),
        },
        &train,
    );

    // The job starts healthy, is recognized at t = 120 s…
    let mut job = dataset.materialize(target, &selection);
    let early = Query::from_trace(&job, &[metric], &[Interval::PAPER_DEFAULT]);
    let app = efd.recognize(&early).best().expect("recognized").to_string();
    println!("t = 120 s: job recognized as '{app}'");

    // …then a memory leak sets in.
    inject_leak(&mut job, 150, 35.0);

    // Envelope of past behavior per window (min/max stored fingerprints,
    // one grain of slack).
    let envelope = predict_usage(efd.dictionary(), &app, None);
    println!("\n  window      observed    envelope         status");
    let mut alerts = 0;
    for w in &tiling {
        let mut observed = 0.0;
        for node in &job.nodes {
            observed += node.series[0].window_mean(*w);
        }
        observed /= job.node_count() as f64;
        let (lo, hi) = envelope
            .iter()
            .filter(|p| p.interval == *w)
            .flat_map(|p| p.means.iter().copied())
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), m| {
                (lo.min(m), hi.max(m))
            });
        let slack = (hi - lo).max(hi * 0.005);
        let ok = observed >= lo - slack && observed <= hi + slack;
        if !ok {
            alerts += 1;
        }
        println!(
            "  {:<10} {:>9.0}   [{:>7.0}, {:>7.0}]   {}",
            w.to_string(),
            observed,
            lo,
            hi,
            if ok { "ok" } else { "DEVIATION" }
        );
    }
    assert!(alerts >= 1, "the injected leak must trip the envelope");
    println!(
        "\n{alerts} window(s) outside the fingerprint envelope — job flagged \
         for inspection while still running."
    );
}
