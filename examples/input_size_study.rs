//! Input-size behavior: why "hard input" is hard (paper §5).
//!
//! ```sh
//! cargo run --release --example input_size_study
//! ```
//!
//! "Depending on the application and system metric considered, execution
//! fingerprints repeat even for different application input sizes. This,
//! however, does not apply to all applications (e.g. miniAMR)." This
//! example prints each application's fingerprint per input size and then
//! demonstrates both recognition with an unknown input (works for
//! input-invariant apps) and its failure mode (miniAMR).

use efd::prelude::*;
use efd_telemetry::catalog::small_catalog;

fn main() {
    let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = dataset.catalog().id("nr_mapped_vmstat").unwrap();
    let selection = MetricSelection::single(metric);
    let depth = RoundingDepth::new(2);

    // One fingerprint per (app, input): node-0 mean of the first run.
    println!("depth-2 fingerprints (node 0) per input size:\n");
    println!("  {:<12} {:>8} {:>8} {:>8}", "app", "X", "Y", "Z");
    for app in AppId::ALL {
        let mut cells = Vec::new();
        for input in [InputSize::X, InputSize::Y, InputSize::Z] {
            let run = dataset
                .runs()
                .iter()
                .position(|r| r.app == app && r.input == input && r.rep == 0)
                .unwrap();
            let mean = dataset.window_means(run, &selection, Interval::PAPER_DEFAULT)[0][0];
            cells.push(depth.round(mean));
        }
        let marker = if cells.windows(2).all(|w| w[0] == w[1]) {
            "   <- input-invariant"
        } else {
            "   <- input-DEPENDENT"
        };
        println!(
            "  {:<12} {:>8} {:>8} {:>8}{marker}",
            app.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    // Hard-input scenario: learn X and Y only, meet Z in production.
    let labels = dataset.labels();
    let train: Vec<ExecutionTrace> = (0..dataset.len())
        .filter(|&i| labels[i].input != "Z")
        .map(|i| dataset.materialize_prefix(i, &selection, 120))
        .collect();
    let efd = Efd::fit_traces(EfdConfig::single_metric(metric), &train);

    println!("\nrecognizing never-seen Z-input runs (learned X/Y only):");
    for app in [AppId::Ft, AppId::Lu, AppId::MiniAmr] {
        let run = (0..dataset.len())
            .find(|&i| labels[i].app == app.name() && labels[i].input == "Z")
            .unwrap();
        let trace = dataset.materialize_prefix(run, &selection, 120);
        let verdict = efd.recognize_trace(&trace).verdict;
        println!("  {:<10} Z -> {verdict:?}", app.name());
    }
    println!(
        "\nft/lu carry input-invariant fingerprints (recognized); miniAMR's\n\
         footprint tracks its input (unknown) — exactly the paper's hard-input\n\
         'room for improvement'."
    );
}
