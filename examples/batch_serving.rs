//! Batch serving through the engine API: one `Recognize` contract, any
//! backend.
//!
//! ```sh
//! cargo run --release --example batch_serving [snapshot|sharded|combo]
//! ```
//!
//! The serving lifecycle on top of the paper's pipeline: train an EFD on
//! the synthetic dataset, publish it as a runtime-selected
//! `Box<dyn Recognize + Send + Sync>` (an immutable [`Snapshot`], a live
//! [`ShardedDictionary`], or a conjunctive `ComboSnapshot` — the same
//! loop serves all three), fan a 10 000-query stream over worker threads
//! with the generic [`BatchRecognizer`], then learn a *new* application
//! concurrently and re-publish — the paper's "learning new applications
//! is as simple as adding new keys", done live.

use std::sync::Arc;
use std::time::Instant;

use efd::prelude::*;
use efd_telemetry::catalog::small_catalog;
use efd_util::SplitMix64;

fn main() {
    let backend_kind = std::env::args().nth(1).unwrap_or_else(|| "snapshot".into());

    // Train exactly like the quickstart: one metric, first two minutes.
    let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = dataset.catalog().id("nr_mapped_vmstat").unwrap();
    let selection = MetricSelection::single(metric);
    let traces: Vec<ExecutionTrace> = (0..dataset.len())
        .map(|i| dataset.materialize_prefix(i, &selection, 120))
        .collect();
    let efd = Efd::fit_traces(EfdConfig::single_metric(metric), &traces);
    let dict = efd.dictionary();
    println!(
        "trained: {} keys, depth {}, {} apps",
        dict.len(),
        efd.depth(),
        dict.app_names().len()
    );

    // Publish behind the object-safe engine trait. This is the whole
    // point of the API: the serving loop below never names a concrete
    // backend type.
    let snapshot = Arc::new(Snapshot::freeze(dict, 8));
    let backend: Arc<dyn Recognize + Send + Sync> = match backend_kind.as_str() {
        "snapshot" => Arc::clone(&snapshot) as _,
        "sharded" => Arc::new(ShardedDictionary::from_parts(dict.to_parts(), 8)) as _,
        "combo" => {
            let combo = efd::core::multi::ComboDictionary::from_single_metric(dict)
                .expect("trained dictionary is single-metric");
            Arc::new(efd::serve::ComboSnapshot::freeze(combo)) as _
        }
        other => {
            eprintln!("unknown backend {other:?} (snapshot|sharded|combo)");
            std::process::exit(1);
        }
    };
    println!("published: backend = {backend_kind}");

    // A 10k-query stream: the dataset's runs with small jitter.
    let mut rng = SplitMix64::new(7);
    let base: Vec<Query> = traces
        .iter()
        .map(|t| Query::from_trace(t, &[metric], &[Interval::PAPER_DEFAULT]))
        .collect();
    let stream: Vec<Query> = (0..10_000)
        .map(|i| {
            let mut q = base[i % base.len()].clone();
            for p in &mut q.points {
                p.mean *= 1.0 + (rng.next_f64() - 0.5) * 0.004;
            }
            q
        })
        .collect();

    // The batch front end is generic over `R: Recognize + Sync`; here R is
    // the trait object itself.
    let server = BatchRecognizer::new(Arc::clone(&backend));
    let t = Instant::now();
    let answers = server.recognize_batch(&stream);
    let dt = t.elapsed();
    let recognized = answers.iter().filter(|r| r.best().is_some()).count();
    println!(
        "served: {} queries in {:.1} ms ({:.0} q/s), {recognized} recognized",
        stream.len(),
        dt.as_secs_f64() * 1e3,
        stream.len() as f64 / dt.as_secs_f64()
    );
    assert!(recognized * 10 >= stream.len() * 9, "jitter broke recognition");

    // Every backend answers like the single-threaded oracle (the engine
    // contract, asserted across the board by `engine_conformance`).
    for q in stream.iter().take(50) {
        assert_eq!(
            Recognize::recognize(&backend, q),
            dict.recognize(q).normalized()
        );
    }

    // Live learning: thaw into a sharded dictionary, learn a brand-new
    // app from two threads, re-publish, swap it into the server.
    let sharded = ShardedDictionary::from_parts(snapshot.to_dictionary().into_parts(), 8);
    let novel = Query::from_node_means(metric, Interval::PAPER_DEFAULT, &[123_456.0; 4]);
    std::thread::scope(|s| {
        for input in ["X", "Y"] {
            let sharded = &sharded;
            let novel = &novel;
            s.spawn(move || {
                sharded.learn(&LabeledObservation {
                    label: AppLabel::new("newapp", input),
                    query: novel.clone(),
                });
            });
        }
    });
    let mut server = server;
    server.swap(Arc::new(sharded.snapshot()) as _);
    let verdict = server.recognize_batch(std::slice::from_ref(&novel));
    assert_eq!(verdict[0].best(), Some("newapp"));
    println!(
        "re-published: verdict for the live-learned app = {:?}",
        verdict[0].verdict
    );
}
