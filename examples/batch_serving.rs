//! Batch serving: freeze a trained dictionary, answer query streams.
//!
//! ```sh
//! cargo run --release --example batch_serving
//! ```
//!
//! The serving lifecycle on top of the paper's pipeline: train an EFD on
//! the synthetic dataset, freeze it into an immutable sharded
//! [`Snapshot`], fan a 10 000-query stream over worker threads with
//! [`BatchRecognizer`], then learn a *new* application concurrently in a
//! [`ShardedDictionary`] and re-publish — the paper's "learning new
//! applications is as simple as adding new keys", done live.

use std::sync::Arc;
use std::time::Instant;

use efd::prelude::*;
use efd_telemetry::catalog::small_catalog;
use efd_util::SplitMix64;

fn main() {
    // Train exactly like the quickstart: one metric, first two minutes.
    let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = dataset.catalog().id("nr_mapped_vmstat").unwrap();
    let selection = MetricSelection::single(metric);
    let traces: Vec<ExecutionTrace> = (0..dataset.len())
        .map(|i| dataset.materialize_prefix(i, &selection, 120))
        .collect();
    let efd = Efd::fit_traces(EfdConfig::single_metric(metric), &traces);
    let dict = efd.dictionary();
    println!(
        "trained: {} keys, depth {}, {} apps",
        dict.len(),
        efd.depth(),
        dict.app_names().len()
    );

    // Freeze into 8 shards and publish. The dictionary itself stays
    // usable; the snapshot is the immutable serving artifact.
    let snapshot = Arc::new(Snapshot::freeze(dict, 8));
    let sizes = snapshot.shard_sizes();
    println!(
        "published: {} shards, keys/shard min {} max {}",
        snapshot.shard_count(),
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap()
    );

    // A 10k-query stream: the dataset's runs with small jitter.
    let mut rng = SplitMix64::new(7);
    let base: Vec<Query> = traces
        .iter()
        .map(|t| Query::from_trace(t, &[metric], &[Interval::PAPER_DEFAULT]))
        .collect();
    let stream: Vec<Query> = (0..10_000)
        .map(|i| {
            let mut q = base[i % base.len()].clone();
            for p in &mut q.points {
                p.mean *= 1.0 + (rng.next_f64() - 0.5) * 0.004;
            }
            q
        })
        .collect();

    let server = BatchRecognizer::new(Arc::clone(&snapshot));
    let t = Instant::now();
    let answers = server.recognize_batch(&stream);
    let dt = t.elapsed();
    let recognized = answers.iter().filter(|r| r.best().is_some()).count();
    println!(
        "served: {} queries in {:.1} ms ({:.0} q/s), {recognized} recognized",
        stream.len(),
        dt.as_secs_f64() * 1e3,
        stream.len() as f64 / dt.as_secs_f64()
    );
    assert!(recognized * 10 >= stream.len() * 9, "jitter broke recognition");

    // Live learning: thaw into a sharded dictionary, learn a brand-new
    // app from two threads, re-publish, swap it into the server.
    let sharded = ShardedDictionary::from_parts(snapshot.to_dictionary().into_parts(), 8);
    let novel = Query::from_node_means(metric, Interval::PAPER_DEFAULT, &[123_456.0; 4]);
    std::thread::scope(|s| {
        for input in ["X", "Y"] {
            let sharded = &sharded;
            let novel = &novel;
            s.spawn(move || {
                sharded.learn(&LabeledObservation {
                    label: AppLabel::new("newapp", input),
                    query: novel.clone(),
                });
            });
        }
    });
    let mut server = server;
    server.swap(Arc::new(sharded.snapshot()));
    let verdict = server.recognize_batch(std::slice::from_ref(&novel));
    assert_eq!(verdict[0].best(), Some("newapp"));
    println!(
        "re-published: {} keys after learning 'newapp' live; verdict = {:?}",
        server.snapshot().len(),
        verdict[0].verdict
    );
}
