//! Quickstart: learn a dictionary from labeled runs, recognize new ones.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's Figure 1 pipeline: (1) per-node window means are
//! rounded and stored as key→label pairs; (2) fingerprints of unlabeled
//! executions are looked up; (3) the most-matched application is returned.

use efd::prelude::*;
use efd_telemetry::catalog::small_catalog;

fn main() {
    // A small synthetic dataset (9 metrics, paper Table 2 run inventory).
    let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = dataset.catalog().id("nr_mapped_vmstat").unwrap();
    println!(
        "dataset: {} labeled runs of {} applications",
        dataset.len(),
        AppId::ALL.len()
    );

    // Split: every 5th run is a "new job" we pretend not to know.
    let train_idx: Vec<usize> = (0..dataset.len()).filter(|i| i % 5 != 0).collect();
    let test_idx: Vec<usize> = (0..dataset.len()).filter(|i| i % 5 == 0).collect();

    // (1) Learn: reduce training runs to fingerprints, pick the rounding
    // depth by cross-validation inside the training set, build the
    // dictionary.
    let selection = MetricSelection::single(metric);
    let train_traces: Vec<ExecutionTrace> = train_idx
        .iter()
        // The EFD only ever needs the first two minutes.
        .map(|&i| dataset.materialize_prefix(i, &selection, 120))
        .collect();
    let efd = Efd::fit_traces(EfdConfig::single_metric(metric), &train_traces);
    let stats = efd.dictionary().stats();
    println!(
        "learned dictionary: depth {}, {} keys for {} labels ({} colliding keys)",
        efd.depth(),
        stats.entries,
        stats.labels,
        stats.colliding_entries
    );

    // (2)+(3) Recognize the held-out runs from their first two minutes.
    let mut correct = 0;
    for &i in &test_idx {
        let trace = dataset.materialize_prefix(i, &selection, 120);
        let recognition = efd.recognize_trace(&trace);
        let truth = &dataset.labels()[i];
        let verdict = match &recognition.verdict {
            Verdict::Recognized(app) => app.clone(),
            Verdict::Ambiguous(apps) => format!("{apps:?} (tie)"),
            Verdict::Unknown => "unknown".into(),
            // Verdict is #[non_exhaustive]; render future variants via Debug.
            other => format!("{other:?}"),
        };
        if recognition.best() == Some(truth.app.as_str()) {
            correct += 1;
        } else {
            println!("  miss: run {i} ({truth}) -> {verdict}");
        }
    }
    println!(
        "recognized {correct}/{} held-out runs from 1 metric x 60 samples each",
        test_idx.len()
    );

    // Bonus: the dictionary also knows input sizes.
    let probe = test_idx[0];
    let trace = dataset.materialize_prefix(probe, &selection, 120);
    let rec = efd.recognize_trace(&trace);
    println!(
        "run {probe}: true '{}', predicted label '{}'",
        dataset.labels()[probe],
        rec.predicted_label().map(|l| l.to_string()).unwrap_or_default()
    );
}
