//! # efd — Execution Fingerprint Dictionary
//!
//! A reproduction of *“An Execution Fingerprint Dictionary for HPC
//! Application Recognition”* (Jakobsche, Lachiche, Cavelan, Ciorba —
//! IEEE CLUSTER 2021): recognize repeated HPC application executions from
//! a **single system metric** and the **first two minutes** of telemetry,
//! Shazam-style, with a rounded-mean key-value dictionary.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] (`efd-core`) — the dictionary itself: rounding depth,
//!   fingerprints, learning/recognition, depth selection, persistence
//!   (JSON dumps and the EFDB binary format, spec in `docs/FORMAT.md`),
//!   plus the paper's future-work extensions (combinatorial fingerprints,
//!   temporal alignment, reverse lookup, streaming recognition) — and the
//!   **engine API** (`efd_core::engine`): object-safe
//!   [`Learn`](prelude::Learn)/[`Recognize`](prelude::Recognize) traits
//!   unifying every backend, re-exported through the [`prelude`].
//! * [`telemetry`] (`efd-telemetry`) — the simulated LDMS substrate:
//!   562-metric catalog, 1 Hz sampling, noise processes, traces.
//! * [`workload`] (`efd-workload`) — synthetic application models and the
//!   Table 2 dataset generator.
//! * [`ml`] (`efd-ml`) — the from-scratch Taxonomist baseline and
//!   scikit-learn-compatible classification metrics.
//! * [`eval`] (`efd-eval`) — the paper's five experiments, Table 3
//!   screening, and paper-vs-measured reporting.
//! * [`serve`] (`efd-serve`) — the concurrent serving layer: sharded
//!   dictionaries, immutable published snapshots, parallel batch and
//!   streaming recognition.
//! * [`catalog`] (`efd-catalog`) — versioned dictionary artifacts: the
//!   named catalog store with its signed index, and `recognizer.v1`
//!   manifests stacking backends with explicit precedence.
//! * [`util`] (`efd-util`) — hashing, RNG derivation, online statistics,
//!   scoped-thread parallelism, text tables.
//!
//! See `README.md` for a tour, `ARCHITECTURE.md` for the crate map and
//! data flow, and `examples/` for runnable scenarios.

#![warn(rust_2018_idioms)]

pub use efd_catalog as catalog;
pub use efd_core as core;
pub use efd_eval as eval;
pub use efd_ml as ml;
pub use efd_serve as serve;
pub use efd_telemetry as telemetry;
pub use efd_util as util;
pub use efd_workload as workload;

/// The types most programs need.
pub mod prelude {
    pub use efd_core::dictionary::{DictionaryStats, EfdDictionary, Recognition, Verdict};
    pub use efd_core::engine::{Learn, ParallelRecognize, Recognize, VoteScratch};
    pub use efd_core::fingerprint::Fingerprint;
    pub use efd_core::observation::{LabeledObservation, ObsPoint, Query};
    pub use efd_core::online::OnlineRecognizer;
    pub use efd_core::rounding::{round_to_depth, RoundingDepth};
    pub use efd_core::training::{DepthPolicy, Efd, EfdConfig};
    pub use efd_serve::{BatchRecognizer, OnlineSession, ShardedDictionary, Snapshot};
    pub use efd_telemetry::trace::{ExecutionTrace, MetricSelection, NodeTrace};
    pub use efd_telemetry::{AppLabel, Interval, MetricCatalog, MetricId, NodeId, TimeSeries};
    pub use efd_workload::{AppId, Dataset, DatasetSpec, InputSize, SubsetKind};
}
