//! Vendored, dependency-free stand-in for the `bytes` crate (offline
//! build). Implements just the surface the workspace uses: `BytesMut` as a
//! growable buffer with `put_*_le` writers, `Bytes` as a frozen byte
//! container, and the [`Buf`] reader trait for `&[u8]` with `get_*_le`
//! accessors that advance the slice.

use std::ops::Deref;

/// Immutable byte container (here: a plain owned vec).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copy into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        BytesMut(Vec::with_capacity(n))
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Writer extension trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u16`, little endian.
    fn put_u16_le(&mut self, n: u16) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Append a `u32`, little endian.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Append a `u64`, little endian.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Append an `f64`, little endian IEEE-754 bits.
    fn put_f64_le(&mut self, n: f64) {
        self.put_slice(&n.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Reader extension trait (subset of `bytes::Buf`). Implemented for
/// `&[u8]`, advancing the slice on every read. Reads past the end panic —
/// callers bounds-check with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u16` and advance.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32` and advance.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64` and advance.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64` and advance.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f64_le(f64::NAN);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert!(r.get_f64_le().is_nan());
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }
}
