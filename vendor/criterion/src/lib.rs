//! Vendored, dependency-free stand-in for `criterion` (offline build).
//!
//! Implements the subset of the criterion API the bench targets use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the `criterion_group!`
//! / `criterion_main!` macros — backed by a simple wall-clock sampler:
//! warm up briefly, then time `sample_size` batches and report
//! median / mean / min.
//!
//! Knobs (environment variables):
//! * `EFD_BENCH_SAMPLES` — override every group's sample count.
//! * `EFD_BENCH_WARMUP_MS` — warm-up budget per benchmark (default 300).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark, e.g. `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    /// Measured batch durations, one per sample.
    samples: Vec<Duration>,
    sample_size: usize,
    warmup: Duration,
}

impl Bencher {
    /// Time `f`, repeatedly: a short calibration/warm-up phase sizes the
    /// batch so one batch is neither trivially short nor seconds long, then
    /// `sample_size` batches are measured.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Calibration: run until the warm-up budget is spent, counting
        // iterations to estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);
        // Aim for ~5 ms per batch, clamped to [1, 10_000] iterations.
        let batch = (5_000_000 / per_iter.max(1)).clamp(1, 10_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / batch as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!("{id:<50} median {median:>12.3?}  mean {mean:>12.3?}  min {min:>12.3?}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement time budget (accepted for API compatibility;
    /// the stand-in sizes batches automatically).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, self.sample_size, |b| f(b));
        self
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark driver.
pub struct Criterion {
    default_samples: usize,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let default_samples = std::env::var("EFD_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        let warmup_ms = std::env::var("EFD_BENCH_WARMUP_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300);
        Criterion {
            default_samples,
            warmup: Duration::from_millis(warmup_ms),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_samples;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_samples;
        self.run_one(id, samples, |b| f(b));
        self
    }

    fn run_one(&mut self, id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        // Allow filtering by substring, mirroring `cargo bench -- <filter>`.
        let filter: Vec<String> = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with("--"))
            .collect();
        if !filter.is_empty() && !filter.iter().any(|pat| id.contains(pat.as_str())) {
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
            warmup: self.warmup,
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
