//! Vendored, dependency-free stand-in for `proptest` (offline build).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! numeric-range and regex-character-class strategies,
//! `prop::collection::vec`, `prop::sample::select`, `any::<T>()`, `Just`,
//! weighted `prop_oneof!`, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! sequence (deterministic across runs; set `PROPTEST_CASES` to change the
//! count, default 48) and failing cases are NOT shrunk — the panic message
//! carries the case index and seed instead.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::{TestCaseError, TestRng};

/// Everything the property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__efd_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __efd_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )+
    };
}

/// Weighted choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Assert inside a property test; failure reports the case instead of
/// unwinding through arbitrary stack frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two expressions are equal (compared by reference, so operands
/// need not be `Copy`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{:?} == {:?}", l, r);
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
