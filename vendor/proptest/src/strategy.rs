//! Value-generation strategies for the vendored proptest.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy: Clone {
    /// Generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        S: Strategy,
        F: Fn(Self::Value) -> S + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe strategy view used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of same-typed strategies (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Union over `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_below(self.total as u64) as u32;
        for (w, strat) in &self.arms {
            if pick < *w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

// ---------------------------------------------------------------------
// Numeric ranges
// ---------------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi as i128 - lo as i128 + 1;
                // Full-domain ranges (e.g. 0..=u64::MAX) have span 2^64,
                // which next_below cannot represent — draw raw bits instead.
                if span > u64::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.next_below(span as u64) as i128) as $t
            }
        }
    )+};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------
// Regex-lite string strategies: `"[a-z]{1,8}"`, `"[A-Z]{1}"`, `"[abc]"`
// ---------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (choices, next) = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed character class in pattern {pattern:?}"));
            (expand_class(&chars[i + 1..close]), close + 1)
        } else {
            (vec![chars[i]], i + 1)
        };
        let (min, max, next) = parse_quantifier(&chars, next, pattern);
        let count = if min == max {
            min
        } else {
            min + rng.next_below((max - min + 1) as u64) as usize
        };
        for _ in 0..count {
            out.push(choices[rng.next_below(choices.len() as u64) as usize]);
        }
        i = next;
    }
    out
}

/// Expand a character class body (`a-z`, `abc`, `A-Za-z0-9`) to its chars.
fn expand_class(body: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            for c in lo..=hi {
                out.push(char::from_u32(c).expect("valid class range"));
            }
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class");
    out
}

/// Parse `{m}`, `{m,n}`, or nothing (= exactly once) at `pos`.
fn parse_quantifier(chars: &[char], pos: usize, pattern: &str) -> (usize, usize, usize) {
    if chars.get(pos) != Some(&'{') {
        return (1, 1, pos);
    }
    let close = chars[pos..]
        .iter()
        .position(|&c| c == '}')
        .map(|p| pos + p)
        .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
    let body: String = chars[pos + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((m, n)) => (
            m.trim().parse().expect("quantifier min"),
            n.trim().parse().expect("quantifier max"),
        ),
        None => {
            let m = body.trim().parse().expect("quantifier count");
            (m, m)
        }
    };
    (min, max, close + 1)
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<T>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain integer strategy backing `any::<int>()`.
#[derive(Clone)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyInt(std::marker::PhantomData)
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy backing `any::<bool>()`.
#[derive(Clone)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> Self::Strategy {
        AnyBool
    }
}
