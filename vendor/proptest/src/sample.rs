//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice from a fixed list.
#[derive(Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.next_below(self.options.len() as u64) as usize].clone()
    }
}

/// `prop::sample::select(options)`: pick one element uniformly.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}
