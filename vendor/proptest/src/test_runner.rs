//! Case runner and RNG for the vendored proptest.

/// Why a test-case closure did not return `Ok`.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition failed; the case is discarded.
    Reject,
    /// `prop_assert*` failed with this message.
    Fail(String),
}

/// SplitMix64 RNG — tiny, seedable, good enough for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Lemire-style rejection-free reduction is overkill for tests;
        // modulo bias is negligible at these bounds.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Number of cases per property (env `PROPTEST_CASES`, default 48).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
}

/// Drive one property: generate cases until `case_count` of them ran (or
/// the reject budget is exhausted), panicking on the first failure.
pub fn run(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let want = case_count();
    let max_rejects = want * 64;
    let mut ran = 0u64;
    let mut rejected = 0u64;
    let mut attempt = 0u64;
    while ran < want {
        // Seed derived from the property name so distinct properties explore
        // distinct streams, but runs are reproducible.
        let seed = name
            .bytes()
            .fold(0xcbf29ce484222325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100000001b3)
            })
            .wrapping_add(attempt.wrapping_mul(0x9E3779B97F4A7C15));
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    // Too constrained to generate: surface loudly rather than
                    // silently passing with zero executed cases.
                    assert!(
                        ran > 0,
                        "property {name}: all {rejected} generated cases were rejected"
                    );
                    eprintln!(
                        "warning: property {name} ran only {ran}/{want} cases \
                         ({rejected} rejected)"
                    );
                    return;
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed at case {ran} (attempt {attempt}): {msg}");
            }
        }
        attempt += 1;
    }
}
