//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything usable as a collection size specification.
pub trait SizeRange: Clone {
    /// Draw a size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.next_below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty size range");
        lo + rng.next_below((hi - lo + 1) as u64) as usize
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a size range.
#[derive(Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}
