//! Vendored, dependency-free stand-in for `serde_json` (offline build).
//!
//! Provides `to_string` / `to_string_pretty` / `from_str` over the vendored
//! `serde` crate's [`Value`] tree. Floats print with Rust's
//! shortest-round-trip formatting, so `f64` values survive a text round
//! trip bit-exactly; non-finite floats serialize as `null` (callers that
//! need NaN gaps represent them as `Option<f64>`, as real serde_json users
//! do too).

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest representation that round-trips exactly.
    let s = format!("{n:?}");
    out.push_str(&s);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Maximum container nesting (matches real serde_json's default); keeps
/// adversarial input from overflowing the stack instead of returning `Err`.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::msg(format!("nesting deeper than {MAX_DEPTH}")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::msg(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error::msg(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape()?;
                            if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: ASCII-escaping encoders
                                // (e.g. Python's json with ensure_ascii)
                                // emit non-BMP chars as \uHIGH\uLOW pairs.
                                self.pos += 1;
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::msg("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::msg("unpaired high surrogate"));
                                }
                                let low = self.hex_escape()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::msg("invalid surrogate pair"))?,
                                );
                            } else if (0xDC00..=0xDFFF).contains(&code) {
                                return Err(Error::msg("unpaired low surrogate"));
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the maximal run of unescaped bytes in one shot.
                    // Runs end at ASCII delimiters (`"`, `\`) or
                    // end-of-input, so a run cut from valid UTF-8 is valid
                    // UTF-8 on its own, and validation is O(run) — not
                    // O(remaining input) per character, which made large
                    // documents quadratic to parse.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    /// Read the 4 hex digits of a `\u` escape, leaving `pos` on the last
    /// digit (the caller's shared `pos += 1` consumes it).
    fn hex_escape(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| Error::msg("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for (src, expect) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("42", Value::U64(42)),
            ("-7", Value::I64(-7)),
            ("1.5", Value::F64(1.5)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(parse(src).unwrap(), expect);
        }
    }

    #[test]
    fn f64_roundtrips_exactly() {
        for x in [0.1f64, 1e300, -2.2250738585072014e-308, 458175847.2046428] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{json}");
        }
    }

    #[test]
    fn u64_full_fidelity() {
        let x = u64::MAX - 3;
        let json = to_string(&x).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn nested_pretty_parses_back() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::U64(1), Value::Null])),
            ("b".into(), Value::Str("x\"y".into())),
        ]);
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(parse("{not json").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
        // At or under the limit still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn surrogate_pairs_combine() {
        // Python json.dumps('\U0001F600') with ensure_ascii=True emits the
        // escaped surrogate pair; it must combine to one scalar.
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::Str("\u{1F600}".to_string()));
        // Raw (non-escaped) UTF-8 also passes through.
        assert_eq!(parse("\"😀\"").unwrap(), Value::Str("😀".to_string()));
        // Lone surrogates are invalid JSON text.
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }
}
