//! Vendored, dependency-free stand-in for `serde`, used because this
//! workspace must build fully offline (no crates.io access).
//!
//! Instead of serde's visitor architecture, this crate models serialization
//! as conversion to and from a JSON-like [`Value`] tree:
//!
//! * [`Serialize`] — `fn to_value(&self) -> Value`
//! * [`Deserialize`] — `fn from_value(&Value) -> Result<Self, Error>`
//!
//! Derive macros are replaced by declarative macros invoked next to the
//! type definition ([`impl_serde_struct!`], [`impl_serde_newtype!`],
//! [`impl_serde_unit_enum!`]); types that used `#[serde(...)]` attributes
//! (skip, default, from/into) write the short manual impl instead.
//!
//! The companion vendored `serde_json` crate supplies the JSON text codec
//! over the same [`Value`].

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-like value tree.
///
/// Integers keep full 64-bit fidelity (`U64`/`I64` variants) so ids and
/// seeds survive round-trips exactly; floats print via Rust's
/// shortest-round-trip formatting.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64 if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// The value as u64 if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            // `u64::MAX as f64` rounds up to 2^64, which is out of range —
            // the bound must be exclusive or the cast would saturate.
            Value::F64(n) if n >= 0.0 && n.fract() == 0.0 && n < u64::MAX as f64 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The value as i64 if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::I64(n) => Some(n),
            // Exclusive upper bound: `i64::MAX as f64` rounds up to 2^63.
            Value::F64(n)
                if n.fract() == 0.0 && n >= i64::MIN as f64 && n < i64::MAX as f64 =>
            {
                Some(n as i64)
            }
            _ => None,
        }
    }

    /// The value as &str if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// (De)serialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Represent `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn expected(what: &str, got: &Value) -> Error {
    Error::msg(format!("expected {what}, got {got:?}"))
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )+};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )+};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| expected("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| expected("f32", v))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(expected("2-element array", v)),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Derive replacements
// ---------------------------------------------------------------------

/// Implement `Serialize`/`Deserialize` for a struct with named public (or
/// module-visible) fields; serialized as a JSON object in field order.
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Obj(vec![
                    $((stringify!($field).to_string(), $crate::Serialize::to_value(&self.$field)),)+
                ])
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                Ok(Self {
                    $($field: $crate::Deserialize::from_value(
                        v.get(stringify!($field)).ok_or_else(|| $crate::Error::msg(
                            concat!("missing field `", stringify!($field), "`")))?,
                    )?,)+
                })
            }
        }
    };
}

/// Implement `Serialize`/`Deserialize` for a single-field tuple struct,
/// serialized transparently as the inner value.
#[macro_export]
macro_rules! impl_serde_newtype {
    ($ty:ident) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Serialize::to_value(&self.0)
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                Ok($ty($crate::Deserialize::from_value(v)?))
            }
        }
    };
}

/// Implement `Serialize`/`Deserialize` for a fieldless enum, serialized as
/// the variant name string (serde's default external representation).
#[macro_export]
macro_rules! impl_serde_unit_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                match self {
                    $($ty::$variant => $crate::Value::Str(stringify!($variant).to_string()),)+
                }
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                match v.as_str() {
                    $(Some(stringify!($variant)) => Ok($ty::$variant),)+
                    _ => Err($crate::Error::msg(format!(
                        concat!("invalid ", stringify!($ty), " variant: {:?}"), v))),
                }
            }
        }
    };
}
