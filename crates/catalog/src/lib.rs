//! # efd-catalog — versioned fingerprint-dictionary artifacts
//!
//! The paper's dictionary is a *living* artifact: HPC workloads evolve,
//! the EFD is periodically re-learned, and operators need to track which
//! version is serving, how versions differ, and when live traffic has
//! drifted far enough from a version's baseline that a re-learn is due.
//! This crate supplies the two persistent pieces of that lifecycle:
//!
//! * [`store`] — the **catalog directory**: named, monotonically
//!   versioned EFDB artifacts (`hpc-apps.v3.efdb`) described by a
//!   digest-signed JSON index carrying provenance (source dump, depth,
//!   key/app counts, parent version) and the published version's
//!   abstention **baseline** — the reference point for the serve layer's
//!   drift alarms.
//! * [`manifest`] — the **`recognizer.v1` manifest**: a declarative
//!   stack of recognizer backends with explicit precedence (exact
//!   dictionary → combo → ml fallback) evaluated first-confident-verdict
//!   wins. `efd serve --manifest` builds a `StackedRecognizer` from it;
//!   the manifest is data, so a stack can be versioned, reviewed, and
//!   hot-swapped like any other artifact.
//!
//! The byte-level index and manifest schemas are documented in
//! `docs/FORMAT.md`; `efd catalog publish/list/show/rollback`, `efd
//! diff`, and `efd serve --manifest` are the CLI surface.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod manifest;
pub mod store;

pub use manifest::{Manifest, ManifestStage, StageBackend, MANIFEST_SCHEMA};
pub use store::{
    Artifact, Baseline, Catalog, CatalogError, CatalogRef, PublishMeta, INDEX_FILE, INDEX_SCHEMA,
};
