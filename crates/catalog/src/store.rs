//! The catalog directory: versioned artifacts under a signed index.
//!
//! A catalog is a plain directory:
//!
//! ```text
//! catalog/
//! ├── catalog.json          the signed index (schema "efd-catalog.v1")
//! ├── hpc-apps.v1.efdb      artifact bytes, canonical EFDB
//! ├── hpc-apps.v2.efdb
//! └── io-suite.v1.efdb
//! ```
//!
//! **Versioning.** Versions are per-name, monotonically increasing, and
//! never reused: publishing after a rollback continues from the highest
//! version ever issued, retired or not, so an artifact reference like
//! `hpc-apps@v2` is forever unambiguous. [`Catalog::rollback`] *retires*
//! the newest live version rather than deleting bytes — audits can still
//! read it, `@latest` just no longer resolves to it.
//!
//! **Integrity.** Two digest layers, both the workspace-standard
//! [`FxHasher`](efd_util::FxHasher) 64-bit hash:
//!
//! * every artifact record stores the digest of its file's bytes, checked
//!   on [`Catalog::read_bytes`] — a swapped or truncated `.efdb` is
//!   caught before it can serve a single verdict;
//! * the index itself stores `index_digest`, the hash of the canonical
//!   rendering of its artifact records, checked on [`Catalog::open`] — a
//!   hand-edited index is rejected rather than trusted.
//!
//! The EFDB header's own `catalog_digest` (metric-name table) is recorded
//! per artifact too, so `efd catalog show` can flag artifacts written
//! against a different metric catalog without opening them.
//!
//! Writes go through a temp file + rename, the same crash-safety idiom as
//! the WAL segments: a torn publish leaves the previous index intact.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use efd_util::hash::hash_bytes;

/// Index file name inside a catalog directory.
pub const INDEX_FILE: &str = "catalog.json";

/// Schema tag the index must carry.
pub const INDEX_SCHEMA: &str = "efd-catalog.v1";

/// Errors from catalog operations.
#[derive(Debug)]
pub enum CatalogError {
    /// Filesystem failure (path + OS error).
    Io(String),
    /// The index or an artifact failed validation.
    Corrupt(String),
    /// A name, version, or reference did not resolve.
    NotFound(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Io(m) => write!(f, "catalog io: {m}"),
            CatalogError::Corrupt(m) => write!(f, "catalog corrupt: {m}"),
            CatalogError::NotFound(m) => write!(f, "catalog: {m}"),
        }
    }
}

impl std::error::Error for CatalogError {}

type Result<T> = std::result::Result<T, CatalogError>;

/// The abstention baseline recorded when a version is published — the
/// reference the serve layer's drift monitor compares live traffic to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// Queries scored to produce the baseline.
    pub queries: usize,
    /// Fraction answered `Unknown`.
    pub unknown_rate: f64,
    /// Fraction answered `Ambiguous`.
    pub ambiguous_rate: f64,
    /// Macro-averaged F1 over the scored apps.
    pub macro_f1: f64,
}

/// One published artifact record in the index.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Catalog name (`[A-Za-z0-9_-]+`).
    pub name: String,
    /// Per-name version, starting at 1.
    pub version: u32,
    /// File name inside the catalog directory.
    pub file: String,
    /// FxHash64 of the artifact file's bytes.
    pub digest: u64,
    /// The EFDB header's metric-catalog digest.
    pub catalog_digest: u64,
    /// Rounding depth of the dictionary.
    pub depth: u8,
    /// Fingerprint key count.
    pub keys: usize,
    /// Distinct application count.
    pub apps: usize,
    /// Distinct label (app + input) count.
    pub labels: usize,
    /// The version this one superseded, if any.
    pub parent: Option<u32>,
    /// Where the dictionary came from (source dump path, as given).
    pub source: String,
    /// Publish time, seconds since the Unix epoch.
    pub created_unix: u64,
    /// Abstention baseline measured at publish time.
    pub baseline: Option<Baseline>,
    /// Retired by rollback: kept for audit, skipped by `@latest`.
    pub retired: bool,
}

impl Artifact {
    /// The canonical reference string, e.g. `hpc-apps@v3`.
    pub fn artifact_ref(&self) -> String {
        format!("{}@v{}", self.name, self.version)
    }

    /// One-line provenance, the form every load path prints.
    pub fn provenance(&self) -> String {
        let baseline = match &self.baseline {
            Some(b) => format!(
                "baseline unknown={:.3} ambiguous={:.3} f1={:.3}",
                b.unknown_rate, b.ambiguous_rate, b.macro_f1
            ),
            None => "no baseline".to_string(),
        };
        format!(
            "{} depth={} keys={} apps={} labels={} parent={} source={} {}{}",
            self.artifact_ref(),
            self.depth,
            self.keys,
            self.apps,
            self.labels,
            match self.parent {
                Some(p) => format!("v{p}"),
                None => "-".to_string(),
            },
            self.source,
            baseline,
            if self.retired { " (retired)" } else { "" },
        )
    }
}

/// Provenance supplied by the publisher (the CLI) alongside the bytes.
#[derive(Debug, Clone)]
pub struct PublishMeta {
    /// The EFDB header's metric-catalog digest.
    pub catalog_digest: u64,
    /// Rounding depth.
    pub depth: u8,
    /// Key count.
    pub keys: usize,
    /// Distinct app count.
    pub apps: usize,
    /// Distinct label count.
    pub labels: usize,
    /// Source dump path, as given on the command line.
    pub source: String,
    /// Publish time, seconds since the Unix epoch.
    pub created_unix: u64,
    /// Abstention baseline, if one was computed.
    pub baseline: Option<Baseline>,
}

/// A parsed artifact reference: `name`, `name@latest`, or `name@vN`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogRef {
    /// Catalog name.
    pub name: String,
    /// Pinned version; `None` means latest live.
    pub version: Option<u32>,
}

/// Valid catalog names: non-empty, `[A-Za-z0-9_-]` only. Dots are
/// excluded so file paths (`dump.json`, `a.efdb`) never parse as refs.
pub fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

impl CatalogRef {
    /// Parse a reference. Returns `None` for anything that is not a
    /// well-formed reference (callers fall back to treating the string
    /// as a file path).
    pub fn parse(s: &str) -> Option<CatalogRef> {
        let (name, version) = match s.split_once('@') {
            None => (s, None),
            Some((n, "latest")) => (n, None),
            Some((n, v)) => {
                let v = v.strip_prefix('v')?;
                (n, Some(v.parse::<u32>().ok().filter(|v| *v > 0)?))
            }
        };
        valid_name(name).then(|| CatalogRef {
            name: name.to_string(),
            version,
        })
    }
}

impl fmt::Display for CatalogRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.version {
            Some(v) => write!(f, "{}@v{}", self.name, v),
            None => write!(f, "{}@latest", self.name),
        }
    }
}

/// An open catalog directory.
#[derive(Debug)]
pub struct Catalog {
    dir: PathBuf,
    artifacts: Vec<Artifact>,
}

impl Catalog {
    /// Open (or initialize) a catalog directory. A missing directory or
    /// index is an empty catalog; a present-but-invalid index is
    /// [`CatalogError::Corrupt`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        let index = dir.join(INDEX_FILE);
        let artifacts = match fs::read_to_string(&index) {
            Ok(text) => parse_index(&text)
                .map_err(|e| CatalogError::Corrupt(format!("{}: {e}", index.display())))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(CatalogError::Io(format!("{}: {e}", index.display()))),
        };
        Ok(Self { dir, artifacts })
    }

    /// The catalog directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All artifact records, oldest first (publication order).
    pub fn artifacts(&self) -> &[Artifact] {
        &self.artifacts
    }

    /// Sorted distinct artifact names.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.artifacts.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// The newest live (non-retired) version of `name`.
    pub fn latest(&self, name: &str) -> Option<&Artifact> {
        self.artifacts
            .iter()
            .filter(|a| a.name == name && !a.retired)
            .max_by_key(|a| a.version)
    }

    /// A specific version of `name`, retired or not.
    pub fn get(&self, name: &str, version: u32) -> Option<&Artifact> {
        self.artifacts
            .iter()
            .find(|a| a.name == name && a.version == version)
    }

    /// Resolve a reference to an artifact record.
    pub fn resolve(&self, r: &CatalogRef) -> Result<&Artifact> {
        match r.version {
            Some(v) => self.get(&r.name, v).ok_or_else(|| {
                CatalogError::NotFound(format!("no artifact {}@v{v} in {}", r.name, self.dir.display()))
            }),
            None => self.latest(&r.name).ok_or_else(|| {
                CatalogError::NotFound(format!(
                    "no live artifact named {:?} in {}",
                    r.name,
                    self.dir.display()
                ))
            }),
        }
    }

    /// Publish `bytes` (canonical EFDB) as the next version of `name`.
    /// Returns the new record.
    pub fn publish(&mut self, name: &str, bytes: &[u8], meta: PublishMeta) -> Result<&Artifact> {
        if !valid_name(name) {
            return Err(CatalogError::NotFound(format!(
                "invalid catalog name {name:?} (want [A-Za-z0-9_-]+)"
            )));
        }
        // Never reuse a version number, even across rollbacks.
        let next = self
            .artifacts
            .iter()
            .filter(|a| a.name == name)
            .map(|a| a.version)
            .max()
            .unwrap_or(0)
            + 1;
        let parent = self.latest(name).map(|a| a.version);
        let file = format!("{name}.v{next}.efdb");
        fs::create_dir_all(&self.dir)
            .map_err(|e| CatalogError::Io(format!("{}: {e}", self.dir.display())))?;
        write_atomic(&self.dir.join(&file), bytes)?;
        self.artifacts.push(Artifact {
            name: name.to_string(),
            version: next,
            file,
            digest: hash_bytes(bytes),
            catalog_digest: meta.catalog_digest,
            depth: meta.depth,
            keys: meta.keys,
            apps: meta.apps,
            labels: meta.labels,
            parent,
            source: meta.source,
            created_unix: meta.created_unix,
            baseline: meta.baseline,
            retired: false,
        });
        self.save()?;
        Ok(self.artifacts.last().expect("just pushed"))
    }

    /// Publish a live dictionary: encode to canonical EFDB and derive
    /// the structural provenance (depth, key/app/label counts, metric
    /// catalog digest) from the dictionary itself, so the index can
    /// never disagree with the bytes it describes.
    pub fn publish_dictionary(
        &mut self,
        name: &str,
        dict: &efd_core::EfdDictionary,
        metric_catalog: &efd_telemetry::MetricCatalog,
        source: &str,
        created_unix: u64,
        baseline: Option<Baseline>,
    ) -> Result<&Artifact> {
        let bytes = efd_core::binfmt::write_dictionary(dict, metric_catalog);
        let meta = PublishMeta {
            catalog_digest: efd_core::binfmt::catalog_digest(metric_catalog),
            depth: dict.depth().get(),
            keys: dict.len(),
            apps: dict.app_names().len(),
            labels: dict.label_count(),
            source: source.to_string(),
            created_unix,
            baseline,
        };
        self.publish(name, &bytes, meta)
    }

    /// Retire the newest live version of `name`. Returns the retired
    /// version and the version `@latest` now resolves to (if any).
    pub fn rollback(&mut self, name: &str) -> Result<(u32, Option<u32>)> {
        let retired = self
            .latest(name)
            .map(|a| a.version)
            .ok_or_else(|| CatalogError::NotFound(format!("no live artifact named {name:?}")))?;
        for a in &mut self.artifacts {
            if a.name == name && a.version == retired {
                a.retired = true;
            }
        }
        self.save()?;
        Ok((retired, self.latest(name).map(|a| a.version)))
    }

    /// Read and integrity-check an artifact's bytes.
    pub fn read_bytes(&self, artifact: &Artifact) -> Result<Vec<u8>> {
        let path = self.dir.join(&artifact.file);
        let bytes =
            fs::read(&path).map_err(|e| CatalogError::Io(format!("{}: {e}", path.display())))?;
        let digest = hash_bytes(&bytes);
        if digest != artifact.digest {
            return Err(CatalogError::Corrupt(format!(
                "{}: digest {:016x} does not match index ({:016x}) — artifact bytes changed \
                 since publish",
                path.display(),
                digest,
                artifact.digest
            )));
        }
        Ok(bytes)
    }

    /// Persist the index (canonical rendering, temp file + rename).
    fn save(&self) -> Result<()> {
        fs::create_dir_all(&self.dir)
            .map_err(|e| CatalogError::Io(format!("{}: {e}", self.dir.display())))?;
        write_atomic(&self.dir.join(INDEX_FILE), render_index(&self.artifacts).as_bytes())
    }
}

/// Write `bytes` to `path` via a sibling temp file and atomic rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| CatalogError::Io(format!("{}: {e}", path.display()));
    let mut f = fs::File::create(&tmp).map_err(io)?;
    f.write_all(bytes).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    fs::rename(&tmp, path).map_err(io)
}

// ---------------------------------------------------------------------
// Index rendering / parsing
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Canonical rendering of the artifact records alone — the bytes the
/// index digest signs. Deterministic: field order is fixed, floats render
/// with Rust's shortest-round-trip formatting.
fn render_artifacts(artifacts: &[Artifact]) -> String {
    let mut out = String::from("[");
    for (i, a) in artifacts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"version\":{},\"file\":\"{}\",\"digest\":\"{:016x}\",\
             \"efdb_catalog_digest\":\"{:016x}\",\"depth\":{},\"keys\":{},\"apps\":{},\
             \"labels\":{},\"parent\":{},\"source\":\"{}\",\"created_unix\":{},",
            json_escape(&a.name),
            a.version,
            json_escape(&a.file),
            a.digest,
            a.catalog_digest,
            a.depth,
            a.keys,
            a.apps,
            a.labels,
            match a.parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            },
            json_escape(&a.source),
            a.created_unix,
        ));
        match &a.baseline {
            Some(b) => out.push_str(&format!(
                "\"baseline\":{{\"queries\":{},\"unknown_rate\":{},\"ambiguous_rate\":{},\
                 \"macro_f1\":{}}},",
                b.queries, b.unknown_rate, b.ambiguous_rate, b.macro_f1
            )),
            None => out.push_str("\"baseline\":null,"),
        }
        out.push_str(&format!("\"retired\":{}}}", a.retired));
    }
    out.push(']');
    out
}

/// Render the full signed index document.
fn render_index(artifacts: &[Artifact]) -> String {
    let body = render_artifacts(artifacts);
    format!(
        "{{\"schema\":\"{INDEX_SCHEMA}\",\"index_digest\":\"{:016x}\",\"artifacts\":{body}}}\n",
        hash_bytes(body.as_bytes())
    )
}

fn field<'v>(v: &'v serde::Value, key: &str) -> std::result::Result<&'v serde::Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn hex_digest(v: &serde::Value, key: &str) -> std::result::Result<u64, String> {
    let s = field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} must be a hex string"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("field {key:?}: {e}"))
}

fn uint(v: &serde::Value, key: &str) -> std::result::Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
}

fn string(v: &serde::Value, key: &str) -> std::result::Result<String, String> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} must be a string"))?
        .to_string())
}

fn parse_artifact(v: &serde::Value) -> std::result::Result<Artifact, String> {
    let baseline = match field(v, "baseline")? {
        serde::Value::Null => None,
        b => Some(Baseline {
            queries: uint(b, "queries")? as usize,
            unknown_rate: field(b, "unknown_rate")?
                .as_f64()
                .ok_or("baseline.unknown_rate must be a number")?,
            ambiguous_rate: field(b, "ambiguous_rate")?
                .as_f64()
                .ok_or("baseline.ambiguous_rate must be a number")?,
            macro_f1: field(b, "macro_f1")?
                .as_f64()
                .ok_or("baseline.macro_f1 must be a number")?,
        }),
    };
    Ok(Artifact {
        name: string(v, "name")?,
        version: uint(v, "version")? as u32,
        file: string(v, "file")?,
        digest: hex_digest(v, "digest")?,
        catalog_digest: hex_digest(v, "efdb_catalog_digest")?,
        depth: uint(v, "depth")? as u8,
        keys: uint(v, "keys")? as usize,
        apps: uint(v, "apps")? as usize,
        labels: uint(v, "labels")? as usize,
        parent: match field(v, "parent")? {
            serde::Value::Null => None,
            p => Some(p.as_u64().ok_or("field \"parent\" must be null or integer")? as u32),
        },
        source: string(v, "source")?,
        created_unix: uint(v, "created_unix")?,
        baseline,
        retired: match field(v, "retired")? {
            serde::Value::Bool(b) => *b,
            _ => return Err("field \"retired\" must be a boolean".into()),
        },
    })
}

/// Parse and verify a signed index document.
fn parse_index(text: &str) -> std::result::Result<Vec<Artifact>, String> {
    let root: serde::Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
    let schema = string(&root, "schema")?;
    if schema != INDEX_SCHEMA {
        return Err(format!("schema {schema:?}, want {INDEX_SCHEMA:?}"));
    }
    let stored = hex_digest(&root, "index_digest")?;
    let artifacts: Vec<Artifact> = field(&root, "artifacts")?
        .as_arr()
        .ok_or("field \"artifacts\" must be an array")?
        .iter()
        .map(parse_artifact)
        .collect::<std::result::Result<_, _>>()?;
    // Re-render canonically and check the signature: a hand-edited record
    // (or a record the canonical writer didn't produce) fails here.
    let canonical = render_artifacts(&artifacts);
    let actual = hash_bytes(canonical.as_bytes());
    if actual != stored {
        return Err(format!(
            "index digest {actual:016x} does not match signed {stored:016x} — index edited \
             outside `efd catalog`?"
        ));
    }
    Ok(artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "efd-catalog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta(source: &str) -> PublishMeta {
        PublishMeta {
            catalog_digest: 0xABCD,
            depth: 2,
            keys: 10,
            apps: 3,
            labels: 4,
            source: source.to_string(),
            created_unix: 1_700_000_000,
            baseline: Some(Baseline {
                queries: 100,
                unknown_rate: 0.05,
                ambiguous_rate: 0.125,
                macro_f1: 0.9,
            }),
        }
    }

    #[test]
    fn publish_versions_and_reopen() {
        let dir = scratch("publish");
        let mut c = Catalog::open(&dir).unwrap();
        assert!(c.artifacts().is_empty());
        c.publish("hpc-apps", b"v1 bytes", meta("a.json")).unwrap();
        let a2 = c.publish("hpc-apps", b"v2 bytes", meta("b.json")).unwrap();
        assert_eq!(a2.version, 2);
        assert_eq!(a2.parent, Some(1));
        assert_eq!(a2.file, "hpc-apps.v2.efdb");

        let reopened = Catalog::open(&dir).unwrap();
        assert_eq!(reopened.artifacts(), c.artifacts(), "index round-trips");
        let latest = reopened.latest("hpc-apps").unwrap();
        assert_eq!(latest.version, 2);
        assert_eq!(reopened.read_bytes(latest).unwrap(), b"v2 bytes");
        assert_eq!(
            reopened.latest("hpc-apps").unwrap().baseline.unwrap().ambiguous_rate,
            0.125
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollback_retires_but_never_reuses_versions() {
        let dir = scratch("rollback");
        let mut c = Catalog::open(&dir).unwrap();
        c.publish("apps", b"one", meta("a")).unwrap();
        c.publish("apps", b"two", meta("b")).unwrap();
        let (retired, now) = c.rollback("apps").unwrap();
        assert_eq!((retired, now), (2, Some(1)));
        // v2 is still resolvable by pin, just not by @latest.
        assert!(c.get("apps", 2).unwrap().retired);
        assert_eq!(c.resolve(&CatalogRef::parse("apps@v2").unwrap()).unwrap().version, 2);
        assert_eq!(c.resolve(&CatalogRef::parse("apps").unwrap()).unwrap().version, 1);
        // The next publish skips the retired number.
        let a3 = c.publish("apps", b"three", meta("c")).unwrap();
        assert_eq!(a3.version, 3);
        assert_eq!(a3.parent, Some(1), "parent is the live latest, not the retired v2");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_index_and_artifact_are_rejected() {
        let dir = scratch("tamper");
        let mut c = Catalog::open(&dir).unwrap();
        c.publish("apps", b"payload", meta("a")).unwrap();

        // Flip a byte in the artifact: read_bytes must refuse.
        let path = dir.join("apps.v1.efdb");
        fs::write(&path, b"Payload").unwrap();
        let reopened = Catalog::open(&dir).unwrap();
        let art = reopened.latest("apps").unwrap();
        let err = reopened.read_bytes(art).unwrap_err();
        assert!(matches!(err, CatalogError::Corrupt(_)), "{err}");

        // Hand-edit the index: open must refuse.
        let index = dir.join(INDEX_FILE);
        let text = fs::read_to_string(&index).unwrap().replace("\"keys\":10", "\"keys\":99");
        fs::write(&index, text).unwrap();
        let err = Catalog::open(&dir).unwrap_err();
        assert!(matches!(err, CatalogError::Corrupt(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn refs_parse_and_reject() {
        assert_eq!(
            CatalogRef::parse("hpc-apps@v3"),
            Some(CatalogRef { name: "hpc-apps".into(), version: Some(3) })
        );
        assert_eq!(
            CatalogRef::parse("hpc-apps@latest"),
            Some(CatalogRef { name: "hpc-apps".into(), version: None })
        );
        assert_eq!(
            CatalogRef::parse("hpc_apps"),
            Some(CatalogRef { name: "hpc_apps".into(), version: None })
        );
        for bad in ["dump.json", "a/b", "apps@3", "apps@v0", "apps@vx", "", "@v1", "a b"] {
            assert_eq!(CatalogRef::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn missing_names_are_not_found() {
        let dir = scratch("missing");
        let c = Catalog::open(&dir).unwrap();
        let err = c.resolve(&CatalogRef::parse("ghost").unwrap()).unwrap_err();
        assert!(matches!(err, CatalogError::NotFound(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
