//! The `recognizer.v1` manifest: a declarative recognizer stack.
//!
//! A manifest names a list of backend **stages** in precedence order.
//! Serving evaluates stages top to bottom and returns the first
//! *confident* verdict (`Recognized` with a matched-point fraction at or
//! above the stage's `min_confidence`); if no stage is confident, the
//! primary (first) stage's verdict stands — abstention is an answer, and
//! it should be the most trusted backend's abstention.
//!
//! ```json
//! {
//!   "schema": "recognizer.v1",
//!   "name": "prod-stack",
//!   "catalog": "catalog",
//!   "stack": [
//!     { "backend": "exact", "artifact": "hpc-apps@latest", "min_confidence": 0.6 },
//!     { "backend": "combo", "artifact": "hpc-apps@latest", "min_confidence": 0.5 },
//!     { "backend": "knn", "k": 3, "artifact": "hpc-apps@latest", "min_confidence": 0.0 }
//!   ]
//! }
//! ```
//!
//! `artifact` is a catalog reference (`name`, `name@latest`, `name@vN`)
//! resolved against `catalog` — a directory path, relative to the
//! manifest file's own location — or a direct `.efdb`/`.json` file path.
//! The manifest is *data*: the same file drives `efd serve --manifest`,
//! hot reload over SWAP/SIGHUP, and the CI lifecycle smoke. Field-level
//! schema reference lives in `docs/FORMAT.md`.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::store::CatalogError;

/// Schema tag a manifest must carry.
pub const MANIFEST_SCHEMA: &str = "recognizer.v1";

/// Which engine a stage runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageBackend {
    /// Owned in-memory snapshot of the exact dictionary.
    Exact,
    /// Zero-copy snapshot served off the EFDB bytes.
    Efdb,
    /// Sharded concurrent dictionary.
    Sharded,
    /// Combinatorial (multi-point) fingerprint snapshot.
    Combo,
    /// k-nearest-neighbour fallback with abstention.
    Knn {
        /// Neighbour count.
        k: usize,
    },
    /// Gaussian naive-Bayes fallback with abstention.
    GaussianNb,
}

impl StageBackend {
    /// The manifest's string form.
    pub fn name(&self) -> &'static str {
        match self {
            StageBackend::Exact => "exact",
            StageBackend::Efdb => "efdb",
            StageBackend::Sharded => "sharded",
            StageBackend::Combo => "combo",
            StageBackend::Knn { .. } => "knn",
            StageBackend::GaussianNb => "gaussian-nb",
        }
    }
}

impl fmt::Display for StageBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageBackend::Knn { k } => write!(f, "knn(k={k})"),
            other => f.write_str(other.name()),
        }
    }
}

/// One stage of the stack: a backend over an artifact, with the
/// confidence bar a verdict must clear to end evaluation here.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestStage {
    /// Engine kind.
    pub backend: StageBackend,
    /// Catalog reference or file path of the dictionary it serves.
    pub artifact: String,
    /// Minimum matched-point fraction for a `Recognized` verdict to win
    /// (`0.0` = any recognition wins, `1.0` = every point must match).
    pub min_confidence: f64,
}

/// A parsed, validated `recognizer.v1` manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Stack name (reported by `efd ctl status` and `/metrics`).
    pub name: String,
    /// Catalog directory artifact references resolve against, already
    /// resolved relative to the manifest file when loaded from disk.
    pub catalog_dir: Option<PathBuf>,
    /// The stages, precedence order.
    pub stack: Vec<ManifestStage>,
}

fn invalid(msg: impl fmt::Display) -> CatalogError {
    CatalogError::Corrupt(format!("manifest: {msg}"))
}

fn parse_stage(i: usize, v: &serde::Value) -> Result<ManifestStage, CatalogError> {
    let backend_name = v
        .get("backend")
        .and_then(|b| b.as_str())
        .ok_or_else(|| invalid(format!("stack[{i}]: missing string field \"backend\"")))?;
    let backend = match backend_name {
        "exact" => StageBackend::Exact,
        "efdb" => StageBackend::Efdb,
        "sharded" => StageBackend::Sharded,
        "combo" => StageBackend::Combo,
        "knn" => {
            let k = match v.get("k") {
                None => 3,
                Some(k) => k
                    .as_u64()
                    .filter(|k| *k >= 1)
                    .ok_or_else(|| invalid(format!("stack[{i}]: \"k\" must be an integer >= 1")))?
                    as usize,
            };
            StageBackend::Knn { k }
        }
        "gaussian-nb" => StageBackend::GaussianNb,
        other => {
            return Err(invalid(format!(
                "stack[{i}]: unknown backend {other:?} (want exact|efdb|sharded|combo|knn|gaussian-nb)"
            )))
        }
    };
    let artifact = v
        .get("artifact")
        .and_then(|a| a.as_str())
        .ok_or_else(|| invalid(format!("stack[{i}]: missing string field \"artifact\"")))?
        .to_string();
    if artifact.is_empty() {
        return Err(invalid(format!("stack[{i}]: \"artifact\" must be non-empty")));
    }
    let min_confidence = match v.get("min_confidence") {
        None => 0.0,
        Some(c) => c
            .as_f64()
            .filter(|c| c.is_finite() && (0.0..=1.0).contains(c))
            .ok_or_else(|| {
                invalid(format!("stack[{i}]: \"min_confidence\" must be a number in [0, 1]"))
            })?,
    };
    Ok(ManifestStage {
        backend,
        artifact,
        min_confidence,
    })
}

impl Manifest {
    /// Parse and validate manifest JSON. `catalog_dir` comes back exactly
    /// as written; use [`Manifest::load`] to resolve it against the file.
    pub fn parse(text: &str) -> Result<Manifest, CatalogError> {
        let root: serde::Value =
            serde_json::from_str(text).map_err(|e| invalid(format!("bad JSON: {e}")))?;
        let schema = root
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or_else(|| invalid("missing string field \"schema\""))?;
        if schema != MANIFEST_SCHEMA {
            return Err(invalid(format!("schema {schema:?}, want {MANIFEST_SCHEMA:?}")));
        }
        let name = root
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| invalid("missing string field \"name\""))?
            .to_string();
        let catalog_dir = match root.get("catalog") {
            None | Some(serde::Value::Null) => None,
            Some(c) => Some(PathBuf::from(
                c.as_str().ok_or_else(|| invalid("\"catalog\" must be a string path"))?,
            )),
        };
        let stack = root
            .get("stack")
            .and_then(|s| s.as_arr())
            .ok_or_else(|| invalid("missing array field \"stack\""))?;
        if stack.is_empty() {
            return Err(invalid("\"stack\" must have at least one stage"));
        }
        let stack = stack
            .iter()
            .enumerate()
            .map(|(i, v)| parse_stage(i, v))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Manifest {
            name,
            catalog_dir,
            stack,
        })
    }

    /// Load a manifest file; a relative `catalog` directory resolves
    /// against the manifest's own parent directory, so a manifest and its
    /// catalog travel together.
    pub fn load(path: &Path) -> Result<Manifest, CatalogError> {
        let text = fs::read_to_string(path)
            .map_err(|e| CatalogError::Io(format!("{}: {e}", path.display())))?;
        let mut m = Self::parse(&text)
            .map_err(|e| invalid(format!("{}: {e}", path.display())))?;
        if let Some(dir) = &m.catalog_dir {
            if dir.is_relative() {
                let base = path.parent().unwrap_or(Path::new("."));
                m.catalog_dir = Some(base.join(dir));
            }
        }
        Ok(m)
    }

    /// The primary (highest-precedence) stage.
    pub fn primary(&self) -> &ManifestStage {
        &self.stack[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
      "schema": "recognizer.v1",
      "name": "prod",
      "catalog": "cat",
      "stack": [
        { "backend": "exact", "artifact": "apps@latest", "min_confidence": 0.6 },
        { "backend": "combo", "artifact": "apps@v2", "min_confidence": 0.5 },
        { "backend": "knn", "k": 5, "artifact": "apps@latest" }
      ]
    }"#;

    #[test]
    fn parses_a_full_stack() {
        let m = Manifest::parse(GOOD).unwrap();
        assert_eq!(m.name, "prod");
        assert_eq!(m.catalog_dir.as_deref(), Some(Path::new("cat")));
        assert_eq!(m.stack.len(), 3);
        assert_eq!(m.primary().backend, StageBackend::Exact);
        assert_eq!(m.stack[2].backend, StageBackend::Knn { k: 5 });
        assert_eq!(m.stack[2].min_confidence, 0.0, "defaults to 0");
    }

    #[test]
    fn load_resolves_relative_catalog_dir() {
        let dir = std::env::temp_dir().join(format!("efd-manifest-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stack.json");
        fs::write(&path, GOOD).unwrap();
        let m = Manifest::load(&path).unwrap();
        assert_eq!(m.catalog_dir.as_deref(), Some(dir.join("cat").as_path()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_malformed_manifests() {
        let cases = [
            ("{}", "schema"),
            (r#"{"schema":"recognizer.v2","name":"x","stack":[]}"#, "schema"),
            (r#"{"schema":"recognizer.v1","name":"x","stack":[]}"#, "at least one"),
            (
                r#"{"schema":"recognizer.v1","name":"x","stack":[{"backend":"nope","artifact":"a"}]}"#,
                "unknown backend",
            ),
            (
                r#"{"schema":"recognizer.v1","name":"x","stack":[{"backend":"exact"}]}"#,
                "artifact",
            ),
            (
                r#"{"schema":"recognizer.v1","name":"x","stack":[{"backend":"exact","artifact":"a","min_confidence":1.5}]}"#,
                "min_confidence",
            ),
            (
                r#"{"schema":"recognizer.v1","name":"x","stack":[{"backend":"knn","k":0,"artifact":"a"}]}"#,
                "\"k\"",
            ),
        ];
        for (text, needle) in cases {
            let err = Manifest::parse(text).unwrap_err().to_string();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }
}
