//! Integration suite for the scenario × backend matrix.
//!
//! Three cross-crate guarantees the inline unit tests can't give:
//!
//! * **Null-perturbation scoring** — at intensity 0 every scenario's
//!   report is bit-identical to the clean baseline (the scoring-side half
//!   of the byte-identity property in `efd_workload`).
//! * **Backend conformance** — every dictionary-family backend (in-memory,
//!   snapshot, sharded, combo, EFDB zero-copy, WAL-recovered) produces the
//!   *identical verdict histogram* on the masquerade scenario at a fixed
//!   seed: they are serving representations of one dictionary, not six
//!   classifiers.
//! * **Blessed clean baseline** — the intensity-0 cells for all six
//!   dictionary-family backends, pinned to a fixture file. Re-bless after
//!   an intentional change with `EFD_BLESS=1 cargo test -p efd-eval`.

use std::sync::OnceLock;

use efd_eval::{fit_backend, run_cell, AbstentionReport, BackendKind, CellOptions};
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::Interval;
use efd_workload::scenario::{build, CleanRuns, ScenarioKind, ScenarioSpec};
use efd_workload::{Dataset, DatasetSpec};

struct Fixture {
    dataset: Dataset,
    metric: efd_telemetry::MetricId,
    clean: CleanRuns,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
        let metric = dataset.catalog().id("nr_mapped_vmstat").unwrap();
        let clean = CleanRuns::from_dataset(&dataset, metric, Interval::PAPER_DEFAULT);
        Fixture {
            dataset,
            metric,
            clean,
        }
    })
}

/// Every float field of a report, as bits — exact comparison, NaN-proof.
fn report_bits(r: &AbstentionReport) -> Vec<u64> {
    vec![
        r.n as u64,
        r.macro_f1.to_bits(),
        r.accuracy.to_bits(),
        r.unknown_precision.to_bits(),
        r.unknown_recall.to_bits(),
        r.unknown_f1.to_bits(),
        r.calibration_error.to_bits(),
        r.tie_coverage.to_bits(),
        r.verdicts.recognized as u64,
        r.verdicts.ambiguous as u64,
        r.verdicts.unknown as u64,
    ]
}

#[test]
fn intensity_zero_scores_equal_clean_baseline_for_every_scenario() {
    let fix = fixture();
    let clf = fit_backend(
        BackendKind::Dict,
        &fix.dataset,
        fix.metric,
        Interval::PAPER_DEFAULT,
        CellOptions::default(),
    );
    let mut baseline: Option<Vec<u64>> = None;
    for kind in ScenarioKind::ALL {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let spec = ScenarioSpec {
                kind,
                intensity: 0.0,
                seed,
            };
            let data = build(&fix.clean, &spec);
            let report = run_cell(&clf, &data, fix.metric, Interval::PAPER_DEFAULT);
            let bits = report_bits(&report);
            match &baseline {
                None => baseline = Some(bits),
                Some(b) => assert_eq!(
                    &bits, b,
                    "{kind} at intensity 0 (seed {seed}) diverged from the clean baseline"
                ),
            }
        }
    }
}

#[test]
fn dictionary_family_backends_agree_on_masquerade_verdicts() {
    let fix = fixture();
    let spec = ScenarioSpec {
        kind: ScenarioKind::CryptominingMasquerade,
        intensity: 0.75,
        seed: 9,
    };
    let data = build(&fix.clean, &spec);

    let mut reference: Option<(BackendKind, AbstentionReport)> = None;
    for backend in BackendKind::ALL.into_iter().filter(|b| b.dictionary_family()) {
        let clf = fit_backend(
            backend,
            &fix.dataset,
            fix.metric,
            Interval::PAPER_DEFAULT,
            CellOptions::default(),
        );
        let report = run_cell(&clf, &data, fix.metric, Interval::PAPER_DEFAULT);
        match &reference {
            None => reference = Some((backend, report)),
            Some((first, expected)) => {
                assert_eq!(
                    report.verdicts, expected.verdicts,
                    "{backend} verdict histogram diverged from {first} \
                     on masquerade (seed 9, intensity 0.75)"
                );
                assert_eq!(
                    report_bits(&report),
                    report_bits(expected),
                    "{backend} full report diverged from {first}"
                );
            }
        }
    }
    // All six dictionary-family backends actually ran.
    let (_, expected) = reference.expect("at least one dictionary-family backend");
    assert!(expected.n > 0);
}

fn baseline_fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/clean_baseline.txt")
}

fn render_baseline_line(backend: BackendKind, r: &AbstentionReport) -> String {
    format!(
        "{} n={} {} macro_f1={:.6} accuracy={:.6} unknown_p={:.6} unknown_r={:.6} \
         unknown_f1={:.6} ece={:.6} tie_coverage={:.6}",
        backend,
        r.n,
        r.verdicts,
        r.macro_f1,
        r.accuracy,
        r.unknown_precision,
        r.unknown_recall,
        r.unknown_f1,
        r.calibration_error,
        r.tie_coverage,
    )
}

#[test]
fn clean_baseline_matches_blessed_fixture() {
    let fix = fixture();
    let spec = ScenarioSpec {
        kind: ScenarioKind::CryptominingMasquerade,
        intensity: 0.0,
        seed: 0,
    };
    let data = build(&fix.clean, &spec);

    let mut lines = Vec::new();
    for backend in BackendKind::ALL.into_iter().filter(|b| b.dictionary_family()) {
        let clf = fit_backend(
            backend,
            &fix.dataset,
            fix.metric,
            Interval::PAPER_DEFAULT,
            CellOptions::default(),
        );
        let report = run_cell(&clf, &data, fix.metric, Interval::PAPER_DEFAULT);
        lines.push(render_baseline_line(backend, &report));
    }
    let rendered = format!("{}\n", lines.join("\n"));

    let path = baseline_fixture_path();
    if std::env::var("EFD_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let blessed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing blessed baseline {} ({e}); run `EFD_BLESS=1 cargo test -p efd-eval` \
             to create it"
        ,
            path.display()
        )
    });
    assert_eq!(
        rendered, blessed,
        "clean-baseline cells diverged from {}; if the change is intentional, \
         re-bless with `EFD_BLESS=1 cargo test -p efd-eval`",
        path.display()
    );
}
