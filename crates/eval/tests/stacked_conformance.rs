//! Manifest-stack conformance: `StackedRecognizer` over the canonical
//! (exact → combo → knn) precedence must answer **exactly** as the
//! exact backend wherever the exact backend is confident. The stack is
//! an augmentation of the primary dictionary, never an override — the
//! abstention-safeguard contract `efd_serve::stacked` documents,
//! checked here across the full dataset with a real ml fallback in the
//! third slot (which is why this test lives in `efd-eval`, the crate
//! that owns [`MlBackend`]).

use std::sync::Arc;

use efd_core::engine::Recognize;
use efd_core::multi::ComboDictionary;
use efd_core::{EfdDictionary, LabeledObservation, Query, RoundingDepth, Verdict};
use efd_eval::MlBackend;
use efd_serve::{ComboSnapshot, Snapshot, StackedRecognizer, StackedStage};
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::{Interval, MetricId};
use efd_workload::scenario::{build, CleanRuns, ScenarioKind, ScenarioSpec};
use efd_workload::{Dataset, DatasetSpec};

const W: Interval = Interval::PAPER_DEFAULT;
const M: MetricId = MetricId(0);
/// The exact stage's confidence bar (the manifest default precedence).
const EXACT_BAR: f64 = 0.6;

fn obs(label: &efd_telemetry::AppLabel, means: &[f64]) -> LabeledObservation {
    LabeledObservation {
        label: label.clone(),
        query: Query::from_node_means(M, W, means),
    }
}

/// Train the three backends of the canonical stack on the same runs.
fn stack_over(train: &[efd_workload::scenario::ScenarioRun]) -> (EfdDictionary, StackedRecognizer) {
    let mut dict = EfdDictionary::new(RoundingDepth::new(3));
    let mut knn = MlBackend::knn(3, 0.5);
    for run in train {
        let label = run.truth.clone().expect("training runs are labeled");
        let o = obs(&label, &run.means);
        dict.learn(&o);
        efd_core::engine::Learn::learn(&mut knn, &o);
    }
    let combo = ComboDictionary::from_single_metric(&dict).expect("non-empty dict");
    let stack = StackedRecognizer::new(vec![
        StackedStage {
            name: "exact".into(),
            engine: Arc::new(Snapshot::freeze(&dict, 4)),
            min_confidence: EXACT_BAR,
        },
        StackedStage {
            name: "combo".into(),
            engine: Arc::new(ComboSnapshot::freeze(combo)),
            min_confidence: 0.5,
        },
        StackedStage {
            name: "knn(k=3)".into(),
            engine: Arc::new(knn),
            min_confidence: 0.5,
        },
    ]);
    (dict, stack)
}

/// Confidence the way the stack judges it: a `Recognized` verdict whose
/// matched-point fraction clears the stage bar.
fn exact_is_confident(rec: &efd_core::Recognition) -> bool {
    matches!(rec.verdict, Verdict::Recognized(_))
        && rec.total_points > 0
        && rec.matched_points as f64 / rec.total_points as f64 >= EXACT_BAR
}

#[test]
fn stack_agrees_with_exact_wherever_exact_is_confident() {
    let dataset = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
    let metric = dataset.catalog().id("nr_mapped_vmstat").unwrap();
    let clean = CleanRuns::from_dataset(&dataset, metric, W);

    // Query mix: clean in-dictionary runs (exact confident), injected
    // miners (out-of-dictionary), and extrapolated inputs (exact loses
    // confidence) — the regions where a broken stack would override the
    // primary differ per scenario.
    let mut queries: Vec<Query> = Vec::new();
    let mut train = None;
    for (kind, intensity) in [
        (ScenarioKind::CryptominingMasquerade, 0.5),
        (ScenarioKind::InputExtrapolation, 1.0),
        (ScenarioKind::ConceptDrift, 1.0),
    ] {
        let data = build(
            &clean,
            &ScenarioSpec {
                kind,
                intensity,
                seed: 9,
            },
        );
        queries.extend(
            data.test
                .iter()
                .map(|run| Query::from_node_means(M, W, &run.means)),
        );
        train.get_or_insert(data.train);
    }
    let (dict, stack) = stack_over(&train.expect("at least one scenario built"));
    let exact = Snapshot::freeze(&dict, 4);

    let (mut confident, mut fallthrough, mut augmented) = (0usize, 0usize, 0usize);
    for q in &queries {
        let from_exact = exact.recognize(q);
        let from_stack = stack.recognize(q);
        if exact_is_confident(&from_exact) {
            confident += 1;
            assert_eq!(
                from_stack.verdict, from_exact.verdict,
                "stack flipped a confident exact verdict on {q:?}"
            );
            assert_eq!(
                (from_stack.matched_points, from_stack.total_points),
                (from_exact.matched_points, from_exact.total_points),
                "stack must return the exact stage's recognition unchanged"
            );
        } else {
            fallthrough += 1;
            if from_stack.verdict != from_exact.verdict {
                augmented += 1;
                // A later stage only ever *adds* recognitions — it can
                // never introduce a new abstention.
                assert!(
                    matches!(from_stack.verdict, Verdict::Recognized(_)),
                    "fallback produced a non-recognition override: {:?}",
                    from_stack.verdict
                );
            }
        }
    }
    // The mix must actually exercise both regions, and the fallback
    // stages must matter somewhere — otherwise this test proves nothing.
    assert!(confident > 0, "no confident exact verdicts in the mix");
    assert!(fallthrough > 0, "no fall-through cases in the mix");
    assert!(
        augmented > 0,
        "fallback stages never engaged ({confident} confident, {fallthrough} fall-through)"
    );
}
