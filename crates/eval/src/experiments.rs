//! The paper's five experiments (§4).
//!
//! Executions have two identifying dimensions — application name and input
//! size — and the experiments differ in how learning/testing sets are split
//! along them:
//!
//! 1. **Normal fold** — 5-fold cross-validation on the full dataset.
//! 2. **Soft input** — extends normal fold; individual input sizes are
//!    removed from learning, testing sets stay the same.
//! 3. **Soft unknown** — extends normal fold; individual applications are
//!    removed from learning, testing sets stay the same (removed app's
//!    correct answer is `unknown`).
//! 4. **Hard input** — learn on 3 of 4 input sizes, test *only* the 4th.
//! 5. **Hard unknown** — learn on 10 of 11 applications, test *only* the
//!    11th (correct answer: `unknown`).
//!
//! Correctness is judged on the application *name* (returning `ft X` for
//! an `ft Y` run is correct). Scores are scikit-learn macro F1 per
//! fold/variant, averaged — see `efd_ml::metrics` for exact semantics.

use std::fmt;

use efd_ml::metrics::{evaluate, UNKNOWN_LABEL};
use efd_workload::splits::{leave_one_app_out, leave_one_input_out, stratified_k_fold};
use efd_workload::Dataset;

use crate::classifier::ExecutionClassifier;

/// Which of the paper's experiments to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentKind {
    /// 5-fold CV on everything.
    NormalFold,
    /// Inputs removed from learning; full test sets.
    SoftInput,
    /// Apps removed from learning; full test sets.
    SoftUnknown,
    /// Test only the left-out input.
    HardInput,
    /// Test only the left-out application.
    HardUnknown,
}

impl ExperimentKind {
    /// All five, in the paper's Figure 2 order.
    pub const ALL: [ExperimentKind; 5] = [
        ExperimentKind::NormalFold,
        ExperimentKind::SoftInput,
        ExperimentKind::SoftUnknown,
        ExperimentKind::HardInput,
        ExperimentKind::HardUnknown,
    ];

    /// Figure 2 label.
    pub fn label(self) -> &'static str {
        match self {
            ExperimentKind::NormalFold => "normal fold",
            ExperimentKind::SoftInput => "soft input",
            ExperimentKind::SoftUnknown => "soft unknown",
            ExperimentKind::HardInput => "hard input",
            ExperimentKind::HardUnknown => "hard unknown",
        }
    }
}

impl fmt::Display for ExperimentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Harness options.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Outer folds for the normal/soft experiments (paper: 5).
    pub folds: usize,
    /// Fold shuffle seed.
    pub seed: u64,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            folds: 5,
            seed: 0xE7A1,
        }
    }
}

/// Result of one experiment for one classifier.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Which experiment.
    pub kind: ExperimentKind,
    /// Classifier display name.
    pub classifier: String,
    /// Mean macro F1 over all folds/variants.
    pub mean_f1: f64,
    /// Per-variant scores: `(variant label, macro F1)`. Variants are folds
    /// for normal fold, (removed-thing, fold) pairs for soft, and the
    /// removed thing for hard experiments.
    pub per_variant: Vec<(String, f64)>,
}

/// Run `kind` for `classifier` on `dataset`.
pub fn run_experiment(
    kind: ExperimentKind,
    classifier: &mut dyn ExecutionClassifier,
    dataset: &Dataset,
    opts: &EvalOptions,
) -> ExperimentResult {
    let per_variant = match kind {
        ExperimentKind::NormalFold => normal_fold(classifier, dataset, opts),
        ExperimentKind::SoftInput => soft(classifier, dataset, opts, Removal::Input),
        ExperimentKind::SoftUnknown => soft(classifier, dataset, opts, Removal::App),
        ExperimentKind::HardInput => hard(classifier, dataset, Removal::Input),
        ExperimentKind::HardUnknown => hard(classifier, dataset, Removal::App),
    };
    let mean_f1 = per_variant.iter().map(|(_, f)| f).sum::<f64>() / per_variant.len() as f64;
    ExperimentResult {
        kind,
        classifier: classifier.name().to_string(),
        mean_f1,
        per_variant,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Removal {
    Input,
    App,
}

/// Fit on `train`, predict `test`, score macro F1 with ground truth = app
/// name, overridden to `unknown` for apps in `removed_apps`.
fn score(
    classifier: &mut dyn ExecutionClassifier,
    dataset: &Dataset,
    train: &[usize],
    test: &[usize],
    removed_app: Option<&str>,
) -> f64 {
    classifier.fit(dataset, train);
    let preds = classifier.predict_batch(dataset, test);
    let labels = dataset.labels();
    let truth: Vec<String> = test
        .iter()
        .map(|&i| {
            if removed_app == Some(labels[i].app.as_str()) {
                UNKNOWN_LABEL.to_string()
            } else {
                labels[i].app.clone()
            }
        })
        .collect();
    // Macro F1 over the classes present in the truth — the paper fixes the
    // sklearn label list to the applications under test (see
    // `ClassificationReport::macro_f1_present`).
    evaluate(&truth, &preds).macro_f1_present()
}

fn normal_fold(
    classifier: &mut dyn ExecutionClassifier,
    dataset: &Dataset,
    opts: &EvalOptions,
) -> Vec<(String, f64)> {
    let folds = stratified_k_fold(&dataset.labels(), opts.folds, opts.seed);
    folds
        .iter()
        .enumerate()
        .map(|(k, fold)| {
            let f1 = score(classifier, dataset, &fold.train, &fold.test, None);
            (format!("fold {}", k + 1), f1)
        })
        .collect()
}

fn soft(
    classifier: &mut dyn ExecutionClassifier,
    dataset: &Dataset,
    opts: &EvalOptions,
    removal: Removal,
) -> Vec<(String, f64)> {
    let labels = dataset.labels();
    let groups = match removal {
        Removal::Input => leave_one_input_out(&labels),
        Removal::App => leave_one_app_out(&labels),
    };
    let folds = stratified_k_fold(&labels, opts.folds, opts.seed);
    let mut out = Vec::new();
    for (removed, removed_idx) in &groups {
        let removed_set: efd_util::FxHashSet<usize> = removed_idx.iter().copied().collect();
        for (k, fold) in folds.iter().enumerate() {
            let train: Vec<usize> = fold
                .train
                .iter()
                .copied()
                .filter(|i| !removed_set.contains(i))
                .collect();
            let removed_app = match removal {
                Removal::App => Some(removed.as_str()),
                Removal::Input => None,
            };
            let f1 = score(classifier, dataset, &train, &fold.test, removed_app);
            out.push((format!("-{removed} fold {}", k + 1), f1));
        }
    }
    out
}

fn hard(
    classifier: &mut dyn ExecutionClassifier,
    dataset: &Dataset,
    removal: Removal,
) -> Vec<(String, f64)> {
    let labels = dataset.labels();
    let groups = match removal {
        Removal::Input => leave_one_input_out(&labels),
        Removal::App => leave_one_app_out(&labels),
    };
    groups
        .iter()
        .map(|(removed, removed_idx)| {
            let removed_set: efd_util::FxHashSet<usize> = removed_idx.iter().copied().collect();
            let train: Vec<usize> = (0..dataset.len())
                .filter(|i| !removed_set.contains(i))
                .collect();
            let removed_app = match removal {
                Removal::App => Some(removed.as_str()),
                Removal::Input => None,
            };
            let f1 = score(classifier, dataset, &train, removed_idx, removed_app);
            (format!("-{removed}"), f1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::EfdClassifier;
    use efd_telemetry::catalog::small_catalog;
    use efd_workload::DatasetSpec;

    fn dataset() -> Dataset {
        Dataset::with_catalog(DatasetSpec::default(), small_catalog())
    }

    fn efd(d: &Dataset) -> EfdClassifier {
        EfdClassifier::new(d.catalog().id("nr_mapped_vmstat").unwrap())
    }

    #[test]
    fn normal_fold_is_near_perfect_on_curated_metric() {
        let d = dataset();
        let mut c = efd(&d);
        let r = run_experiment(ExperimentKind::NormalFold, &mut c, &d, &EvalOptions::default());
        assert_eq!(r.per_variant.len(), 5);
        assert!(
            r.mean_f1 > 0.95,
            "normal fold F1 {} (per fold {:?})",
            r.mean_f1,
            r.per_variant
        );
    }

    #[test]
    fn hard_input_is_harder_than_soft_input() {
        let d = dataset();
        let mut c = efd(&d);
        let opts = EvalOptions::default();
        let soft = run_experiment(ExperimentKind::SoftInput, &mut c, &d, &opts);
        let hard = run_experiment(ExperimentKind::HardInput, &mut c, &d, &opts);
        assert_eq!(hard.per_variant.len(), 4); // X, Y, Z, L
        assert!(
            soft.mean_f1 > hard.mean_f1,
            "soft {} vs hard {}",
            soft.mean_f1,
            hard.mean_f1
        );
        assert!(soft.mean_f1 > 0.85, "soft input {}", soft.mean_f1);
    }

    #[test]
    fn unknown_experiments_score_unknown_as_correct() {
        let d = dataset();
        let mut c = efd(&d);
        let hard = run_experiment(ExperimentKind::HardUnknown, &mut c, &d, &EvalOptions::default());
        assert_eq!(hard.per_variant.len(), 11);
        // The EFD's safeguard should make this clearly better than chance,
        // but SP/BT-style twins keep it below the soft scores.
        assert!(
            hard.mean_f1 > 0.5,
            "hard unknown {} ({:?})",
            hard.mean_f1,
            hard.per_variant
        );
    }

    #[test]
    fn experiment_kind_labels() {
        assert_eq!(ExperimentKind::ALL.len(), 5);
        assert_eq!(ExperimentKind::NormalFold.label(), "normal fold");
        assert_eq!(ExperimentKind::HardUnknown.to_string(), "hard unknown");
    }
}
