//! Evaluation harness: the paper's five experiments, per-metric screening,
//! and paper-vs-measured reporting.
//!
//! * [`classifier`] — one trait over both systems (EFD and the Taxonomist
//!   baseline) so every experiment runs them identically, plus feature /
//!   window-mean caches so repeated fits don't regenerate telemetry.
//! * [`engine`] — adapters between the engine API and the harness:
//!   ml classifier families (forest / kNN / Gaussian NB) as
//!   `Learn`/`Recognize` backends, and any engine backend as an
//!   [`ExecutionClassifier`].
//! * [`experiments`] — normal fold, soft/hard input, soft/hard unknown
//!   (paper §4), scored with scikit-learn-compatible macro F1.
//! * [`scoring`] — abstention-quality scoring: unknown-detection
//!   precision/recall, ambiguity calibration, verdict histograms.
//! * [`robustness`] — the scenario × backend matrix: every engine backend
//!   (dictionary family and ml family) scored on the adversarial & drift
//!   scenarios from `efd_workload::scenario`, plus the online-relearning
//!   arm for concept drift.
//! * [`screening`] — per-metric normal-fold F-scores (paper Table 3).
//! * [`paper`] — the paper's reported numbers (digitized from Figure 2 /
//!   copied from Table 3) for side-by-side comparison.
//! * [`report`] — renders Tables 1–4 and Figure 2 as text/markdown, and
//!   generates EXPERIMENTS.md.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classifier;
pub mod engine;
pub mod experiments;
pub mod paper;
pub mod report;
pub mod robustness;
pub mod scoring;
pub mod screening;

pub use classifier::{EfdClassifier, ExecutionClassifier, TaxonomistClassifier};
pub use engine::{EngineClassifier, MlBackend, MlFamily};
pub use experiments::{run_experiment, EvalOptions, ExperimentKind, ExperimentResult};
pub use robustness::{
    drift_relearn, fit_backend, query_from_means, run_cell, BackendKind, CellOptions,
    ScenarioBackend,
};
pub use scoring::{score, AbstentionReport, ScoredQuery, VerdictHistogram, VerdictKind};
pub use screening::{screen_metrics, MetricScore};
