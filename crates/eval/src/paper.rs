//! The paper's reported numbers, for side-by-side comparison.
//!
//! Figure 2 is a bar chart without a numbers table; the EFD/Taxonomist
//! values below are digitized from the figure and are **approximate**
//! (±0.02). Table 3 values are copied verbatim. The reproduction is judged
//! on *shape* — who wins, by roughly what factor, where the hard
//! experiments fall off — not on matching these to the percent.

use crate::experiments::ExperimentKind;

/// Paper-reported EFD F-scores (digitized from Figure 2; the hard
/// experiments are the "room for improvement" bars of §5).
pub fn efd_figure2(kind: ExperimentKind) -> f64 {
    match kind {
        ExperimentKind::NormalFold => 1.0,
        ExperimentKind::SoftInput => 0.98,
        ExperimentKind::SoftUnknown => 0.97,
        ExperimentKind::HardInput => 0.70,
        ExperimentKind::HardUnknown => 0.74,
    }
}

/// Paper-reported Taxonomist F-scores (digitized from Figure 2). The
/// hard experiments "were not conducted in the Taxonomist" — `None`.
pub fn taxonomist_figure2(kind: ExperimentKind) -> Option<f64> {
    match kind {
        ExperimentKind::NormalFold => Some(0.99),
        ExperimentKind::SoftInput => Some(0.98),
        ExperimentKind::SoftUnknown => Some(0.97),
        ExperimentKind::HardInput | ExperimentKind::HardUnknown => None,
    }
}

/// Table 3 (excerpt of individual system-metric results, normal fold),
/// verbatim from the paper.
pub const TABLE3: [(&str, f64); 13] = [
    ("nr_mapped_vmstat", 1.0),
    ("Committed_AS_meminfo", 1.0),
    ("nr_active_anon_vmstat", 1.0),
    ("nr_anon_pages_vmstat", 1.0),
    ("Active_meminfo", 0.99),
    ("Mapped_meminfo", 0.99),
    ("AnonPages_meminfo", 0.97),
    ("MemFree_meminfo", 0.97),
    ("PageTables_meminfo", 0.97),
    ("nr_page_table_pages_vmstat", 0.97),
    ("AMO_PKTS_metric_set_nic", 0.96),
    ("AMO_FLITS_metric_set_nic", 0.95),
    ("PI_PKTS_metric_set_nic", 0.95),
];

/// The paper's headline metric.
pub const HEADLINE_METRIC: &str = "nr_mapped_vmstat";

/// Table 1 rows: (value, [depth-5, depth-4, depth-3, depth-2, depth-1]
/// expected outputs; `None` = the paper's "—", i.e. value unchanged).
pub const TABLE1: [(f64, [Option<f64>; 5]); 3] = [
    (
        1358.0,
        [
            None,
            Some(1358.0),
            Some(1360.0),
            Some(1400.0),
            Some(1000.0),
        ],
    ),
    (5.28, [None, None, Some(5.28), Some(5.3), Some(5.0)]),
    (0.038, [None, None, None, Some(0.038), Some(0.04)]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_covers_all_experiments() {
        for kind in ExperimentKind::ALL {
            let e = efd_figure2(kind);
            assert!((0.0..=1.0).contains(&e));
        }
        assert!(taxonomist_figure2(ExperimentKind::HardInput).is_none());
        assert!(taxonomist_figure2(ExperimentKind::NormalFold).is_some());
    }

    #[test]
    fn table3_is_sorted_descending() {
        for w in TABLE3.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(TABLE3[0].0, HEADLINE_METRIC);
    }

    #[test]
    fn table1_matches_rounding_implementation() {
        for (value, expected) in TABLE1 {
            for (i, exp) in expected.iter().enumerate() {
                let depth = (5 - i) as u8;
                let got = efd_core::round_to_depth(value, depth);
                match exp {
                    Some(e) => assert_eq!(got, *e, "round({value}, {depth})"),
                    None => assert_eq!(got, value, "round({value}, {depth}) should be identity"),
                }
            }
        }
    }
}
