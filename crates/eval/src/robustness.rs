//! The scenario × backend robustness matrix.
//!
//! `efd_workload::scenario` builds the hostile inputs; this module runs
//! them against **every** engine backend — the whole dictionary family
//! (in-memory oracle, frozen snapshot, sharded, combo, zero-copy EFDB,
//! WAL-recovered) and the ml family (forest / kNN / Gaussian NB) — and
//! scores each cell with [`crate::scoring`]'s abstention-quality metrics.
//!
//! The plumbing is PR 5's engine API end to end: one concrete
//! [`ScenarioBackend`] type wraps all nine [`BackendKind`]s behind
//! [`Learn`]`+`[`Recognize`] (freeze-style backends buffer observations
//! and build lazily on first recognition, the WAL backend additionally
//! round-trips through close-and-recover), so a single
//! [`EngineClassifier`] drives the full matrix. Dictionary-family cells
//! must produce identical verdict histograms — the conformance suite pins
//! that on the masquerade scenario.
//!
//! [`drift_relearn`] is the online-relearning arm of `concept-drift`: an
//! [`AgingDictionary`] keeps learning each drifted run after its verdict,
//! republishing [`Snapshot`]s that live [`OnlineSession`]s [`swap`] to
//! mid-stream, with epoch advances aging out stale keys — the
//! learn-while-serve loop a production deployment would run.
//!
//! [`swap`]: OnlineSession::swap

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use efd_core::engine::{Learn, Recognize, VoteScratch};
use efd_core::maintenance::AgingDictionary;
use efd_core::multi::ComboDictionary;
use efd_core::wal::WalOptions;
use efd_core::{
    binfmt, EfdDictionary, LabeledObservation, ObsPoint, Query, Recognition, RoundingDepth,
};
use efd_ml::taxonomist::TaxonomistConfig;
use efd_serve::{ComboSnapshot, DurableDictionary, EfdbSnapshot, OnlineSession, ShardedDictionary, Snapshot};
use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::{Interval, MetricId, NodeId};
use efd_workload::scenario::{split, ScenarioData};
use efd_workload::Dataset;

use crate::engine::{EngineClassifier, MlBackend};
use crate::scoring::{score, AbstentionReport, ScoredQuery};

/// Every engine backend the matrix can run a scenario against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The single-threaded in-memory oracle ([`EfdDictionary`]).
    Dict,
    /// Frozen immutable [`Snapshot`].
    Snapshot,
    /// Concurrent [`ShardedDictionary`].
    Sharded,
    /// Conjunctive multi-metric combo ([`ComboSnapshot`]).
    Combo,
    /// Zero-copy [`EfdbSnapshot`] served off canonical EFDB bytes.
    Efdb,
    /// WAL-backed [`DurableDictionary`], closed and *recovered* before
    /// serving — every cell also exercises the durability path.
    Wal,
    /// Random forest (Taxonomist configuration) behind the engine API.
    Forest,
    /// k-nearest-neighbors behind the engine API.
    Knn,
    /// Gaussian naive Bayes behind the engine API.
    GaussianNb,
}

impl BackendKind {
    /// Every backend, in canonical (report) order.
    pub const ALL: [BackendKind; 9] = [
        BackendKind::Dict,
        BackendKind::Snapshot,
        BackendKind::Sharded,
        BackendKind::Combo,
        BackendKind::Efdb,
        BackendKind::Wal,
        BackendKind::Forest,
        BackendKind::Knn,
        BackendKind::GaussianNb,
    ];

    /// CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Dict => "dict",
            BackendKind::Snapshot => "snapshot",
            BackendKind::Sharded => "sharded",
            BackendKind::Combo => "combo",
            BackendKind::Efdb => "efdb",
            BackendKind::Wal => "wal",
            BackendKind::Forest => "forest",
            BackendKind::Knn => "knn",
            BackendKind::GaussianNb => "gaussian-nb",
        }
    }

    /// Parse a CLI / report name.
    pub fn parse(name: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Whether this backend answers with the dictionary family's exact
    /// vote semantics (identical verdict histograms required) rather than
    /// the ml family's confidence-threshold semantics.
    pub fn dictionary_family(self) -> bool {
        !matches!(
            self,
            BackendKind::Forest | BackendKind::Knn | BackendKind::GaussianNb
        )
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Knobs shared by every cell of a matrix run.
#[derive(Debug, Clone, Copy)]
pub struct CellOptions {
    /// Rounding depth of every dictionary-family backend.
    pub depth: u8,
    /// Shard count (sharded / snapshot backends).
    pub shards: usize,
    /// Trees in the forest backend.
    pub forest_trees: usize,
    /// Abstention threshold of the ml backends.
    pub ml_confidence: f64,
    /// Online-relearning arm: epochs a key survives without refresh.
    pub drift_max_age: u64,
    /// Online-relearning arm: runs between republish + epoch advance.
    pub drift_chunk: usize,
}

impl Default for CellOptions {
    fn default() -> Self {
        Self {
            depth: 2,
            shards: 8,
            forest_trees: 20,
            ml_confidence: 0.5,
            drift_max_age: 3,
            drift_chunk: 8,
        }
    }
}

/// Any of the nine backends as one `Learn + Recognize` type, so a single
/// [`EngineClassifier`] can host the whole matrix.
///
/// Learning buffers observations; the actual backend is built lazily on
/// first recognition (freeze-style backends need the full training set
/// before they exist). The WAL variant writes a real log in a scratch
/// directory, closes it, and *recovers* — the answer path is the one a
/// crash-restarted server would take.
pub struct ScenarioBackend {
    kind: BackendKind,
    metric: MetricId,
    opts: CellOptions,
    catalog: MetricCatalog,
    buffered: Vec<LabeledObservation>,
    built: OnceLock<Box<dyn Recognize + Send + Sync>>,
}

impl std::fmt::Debug for ScenarioBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioBackend")
            .field("kind", &self.kind)
            .field("buffered", &self.buffered.len())
            .field("built", &self.built.get().is_some())
            .finish_non_exhaustive()
    }
}

/// Distinguishes concurrent WAL scratch directories within one process.
static WAL_SEQ: AtomicU64 = AtomicU64::new(0);

impl ScenarioBackend {
    /// An empty backend of `kind`; `metric` is the combo backend's key
    /// dimension, `catalog` resolves metric names for EFDB/WAL bytes.
    pub fn new(kind: BackendKind, metric: MetricId, catalog: MetricCatalog, opts: CellOptions) -> Self {
        Self {
            kind,
            metric,
            opts,
            catalog,
            buffered: Vec::new(),
            built: OnceLock::new(),
        }
    }

    /// Which backend this is.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    fn depth(&self) -> RoundingDepth {
        RoundingDepth::new(self.opts.depth)
    }

    fn learned_dict(&self) -> EfdDictionary {
        let mut d = EfdDictionary::new(self.depth());
        d.learn_all(&self.buffered);
        d
    }

    fn build_backend(&self) -> Box<dyn Recognize + Send + Sync> {
        match self.kind {
            BackendKind::Dict => Box::new(self.learned_dict()),
            BackendKind::Snapshot => {
                Box::new(Snapshot::freeze(&self.learned_dict(), self.opts.shards))
            }
            BackendKind::Sharded => {
                let s = ShardedDictionary::new(self.depth(), self.opts.shards);
                s.learn_all(&self.buffered);
                Box::new(s)
            }
            BackendKind::Combo => {
                let mut c = ComboDictionary::new(vec![self.metric], self.depth());
                Learn::learn_all(&mut c, &self.buffered);
                Box::new(ComboSnapshot::freeze(c))
            }
            BackendKind::Efdb => {
                let bytes = binfmt::write_dictionary(&self.learned_dict(), &self.catalog);
                Box::new(
                    EfdbSnapshot::load(bytes, &self.catalog)
                        .expect("freshly written EFDB bytes must load"),
                )
            }
            BackendKind::Wal => {
                let dir = std::env::temp_dir().join(format!(
                    "efd-scenario-wal-{}-{}",
                    std::process::id(),
                    WAL_SEQ.fetch_add(1, Ordering::Relaxed),
                ));
                let _ = std::fs::remove_dir_all(&dir);
                {
                    let (served, _recovery) = DurableDictionary::open(
                        &dir,
                        self.depth(),
                        self.opts.shards,
                        &self.catalog,
                        WalOptions::default(),
                    )
                    .expect("open scratch WAL");
                    for obs in &self.buffered {
                        served.learn(obs).expect("WAL learn");
                    }
                    served.sync().expect("WAL sync");
                }
                // Reopen: the serving state is the *recovered* one.
                let (served, _recovery) = DurableDictionary::open(
                    &dir,
                    self.depth(),
                    self.opts.shards,
                    &self.catalog,
                    WalOptions::default(),
                )
                .expect("recover scratch WAL");
                let snapshot = served.dictionary().snapshot();
                drop(served);
                let _ = std::fs::remove_dir_all(&dir);
                Box::new(snapshot)
            }
            BackendKind::Forest => {
                let mut b = MlBackend::forest(TaxonomistConfig {
                    n_trees: self.opts.forest_trees,
                    confidence_threshold: self.opts.ml_confidence,
                    ..TaxonomistConfig::default()
                });
                b.learn_all(&self.buffered);
                Box::new(b)
            }
            BackendKind::Knn => {
                let mut b = MlBackend::knn(5, self.opts.ml_confidence);
                b.learn_all(&self.buffered);
                Box::new(b)
            }
            BackendKind::GaussianNb => {
                let mut b = MlBackend::gaussian_nb(self.opts.ml_confidence);
                b.learn_all(&self.buffered);
                Box::new(b)
            }
        }
    }
}

impl Learn for ScenarioBackend {
    fn learn(&mut self, obs: &LabeledObservation) {
        // Invalidate a built backend: freeze-style backends rebuild from
        // the full buffer on the next recognition.
        self.built.take();
        self.buffered.push(obs.clone());
    }
}

impl Recognize for ScenarioBackend {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        self.built
            .get_or_init(|| self.build_backend())
            .recognize_into(query, scratch)
    }
}

/// A query over one run's per-node means; non-finite means (dropped
/// sensors) are skipped, preserving the node identity of the rest.
pub fn query_from_means(metric: MetricId, interval: Interval, means: &[f64]) -> Query {
    Query {
        points: means
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_finite())
            .map(|(n, &mean)| ObsPoint {
                metric,
                node: NodeId(n as u16),
                interval,
                mean,
            })
            .collect(),
    }
}

/// A fitted matrix harness: `backend` trained on the dataset's canonical
/// clean training split (run `i` trains iff `i % 5 != 0` — the same split
/// every scenario's test sequence is built against), via
/// [`EngineClassifier`], the adapter every engine backend shares.
pub fn fit_backend(
    backend: BackendKind,
    dataset: &Dataset,
    metric: MetricId,
    interval: Interval,
    opts: CellOptions,
) -> EngineClassifier<ScenarioBackend, impl Fn() -> ScenarioBackend> {
    let catalog = dataset.catalog().clone();
    let mut clf = EngineClassifier::with_interval(backend.name(), metric, interval, move || {
        ScenarioBackend::new(backend, metric, catalog.clone(), opts)
    });
    let (train_idx, _) = split(dataset.len());
    crate::classifier::ExecutionClassifier::fit(&mut clf, dataset, &train_idx);
    clf
}

/// Score one matrix cell: every test run of `data` recognized by the
/// fitted backend, abstention-quality metrics over the verdicts.
pub fn run_cell<F>(
    clf: &EngineClassifier<ScenarioBackend, F>,
    data: &ScenarioData,
    metric: MetricId,
    interval: Interval,
) -> AbstentionReport
where
    F: Fn() -> ScenarioBackend,
{
    let engine = clf.engine().expect("fit_backend() fits before scoring");
    let mut scratch = VoteScratch::default();
    let scored: Vec<ScoredQuery> = data
        .test
        .iter()
        .map(|run| {
            let q = query_from_means(metric, interval, &run.means);
            let r = engine.recognize_into(&q, &mut scratch);
            ScoredQuery::from_recognition(run.truth.as_ref().map(|l| l.app.as_str()), &r)
        })
        .collect();
    score(&scored)
}

/// The online-relearning arm of `concept-drift`.
///
/// Serves the drifted test sequence the way a live deployment would:
/// each run streams its samples into an [`OnlineSession`] against the
/// current [`Snapshot`] publication (swapping to the newest publication
/// mid-stream, at the fingerprint window's open), is scored, and is then
/// learned — labeled with its ground truth — into an [`AgingDictionary`].
/// Every [`CellOptions::drift_chunk`] runs the dictionary advances an
/// epoch (evicting keys not refreshed for
/// [`CellOptions::drift_max_age`] epochs) and republishes.
///
/// Returns the arm's report; compare against the static cell from
/// [`run_cell`] to see what relearning buys under drift.
pub fn drift_relearn(
    data: &ScenarioData,
    metric: MetricId,
    interval: Interval,
    opts: &CellOptions,
) -> AbstentionReport {
    let mut aging = AgingDictionary::new(RoundingDepth::new(opts.depth), opts.drift_max_age);
    for run in &data.train {
        let label = run.truth.clone().expect("training runs are labeled");
        aging.learn(&LabeledObservation {
            label,
            query: query_from_means(metric, interval, &run.means),
        });
    }
    let mut current = Arc::new(Snapshot::freeze(aging.dictionary(), opts.shards));
    let mut previous = Arc::clone(&current);

    let mut scored = Vec::with_capacity(data.test.len());
    for chunk in data.test.chunks(opts.drift_chunk.max(1)) {
        for run in chunk {
            let nodes: Vec<NodeId> = run
                .means
                .iter()
                .enumerate()
                .filter(|(_, m)| m.is_finite())
                .map(|(n, _)| NodeId(n as u16))
                .collect();
            // The session opens against the previous publication and
            // swaps to the newest one mid-stream, exactly when the
            // fingerprint window opens — the learn-while-serve handoff.
            let mut session =
                OnlineSession::new(Arc::clone(&previous), &[metric], &nodes, vec![interval]);
            for t in 0..=interval.end {
                if t == interval.start {
                    session.swap(Arc::clone(&current));
                }
                for &n in &nodes {
                    session.push(n, metric, t, run.means[n.0 as usize]);
                }
            }
            let r = session.finish();
            scored.push(ScoredQuery::from_recognition(
                run.truth.as_ref().map(|l| l.app.as_str()),
                &r,
            ));
            if run.relearn {
                if let Some(label) = &run.truth {
                    aging.learn(&LabeledObservation {
                        label: label.clone(),
                        query: query_from_means(metric, interval, &run.means),
                    });
                }
            }
        }
        // Age, evict, republish: live sessions pick the new publication
        // up at their next swap point.
        aging.advance();
        previous = current;
        current = Arc::new(Snapshot::freeze(aging.dictionary(), opts.shards));
    }
    score(&scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_telemetry::catalog::small_catalog;
    use efd_workload::scenario::{build, CleanRuns, ScenarioKind, ScenarioSpec};
    use efd_workload::{Dataset, DatasetSpec};

    fn fixture() -> (Dataset, MetricId, CleanRuns) {
        let d = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
        let metric = d.catalog().id("nr_mapped_vmstat").unwrap();
        let clean = CleanRuns::from_dataset(&d, metric, Interval::PAPER_DEFAULT);
        (d, metric, clean)
    }

    fn spec(kind: ScenarioKind, intensity: f64) -> ScenarioSpec {
        ScenarioSpec {
            kind,
            intensity,
            seed: 0x5EED,
        }
    }

    #[test]
    fn backend_names_round_trip() {
        for b in BackendKind::ALL {
            assert_eq!(BackendKind::parse(b.name()), Some(b));
        }
        assert_eq!(BackendKind::parse("nope"), None);
    }

    #[test]
    fn query_from_means_skips_lost_sensors() {
        let q = query_from_means(
            MetricId(0),
            Interval::PAPER_DEFAULT,
            &[1.0, f64::NAN, 3.0],
        );
        assert_eq!(q.points.len(), 2);
        assert_eq!(q.points[1].node, NodeId(2), "node identity preserved");
    }

    #[test]
    fn clean_baseline_recognizes_well_on_every_dictionary_backend() {
        let (d, metric, clean) = fixture();
        let data = build(&clean, &spec(ScenarioKind::MetricDropout, 0.0));
        for kind in [BackendKind::Dict, BackendKind::Efdb, BackendKind::Wal] {
            let clf = fit_backend(kind, &d, metric, Interval::PAPER_DEFAULT, CellOptions::default());
            let r = run_cell(&clf, &data, metric, Interval::PAPER_DEFAULT);
            assert!(
                r.macro_f1 > 0.6,
                "{kind}: clean macro-F1 {:.3} too low",
                r.macro_f1
            );
            assert_eq!(r.n, data.test.len());
        }
    }

    #[test]
    fn masquerade_degrades_unknown_recall_with_intensity() {
        let (d, metric, clean) = fixture();
        let clf = fit_backend(
            BackendKind::Dict,
            &d,
            metric,
            Interval::PAPER_DEFAULT,
            CellOptions::default(),
        );
        let faint = build(&clean, &spec(ScenarioKind::CryptominingMasquerade, 0.25));
        let perfect = build(&clean, &spec(ScenarioKind::CryptominingMasquerade, 1.0));
        let r_faint = run_cell(&clf, &faint, metric, Interval::PAPER_DEFAULT);
        let r_perfect = run_cell(&clf, &perfect, metric, Interval::PAPER_DEFAULT);
        // A faint masquerade sits far from its victim's keys: abstention
        // catches most of it (a miner can still collide with some *other*
        // app's higher level — that is the realistic false-accept).
        assert!(
            r_faint.unknown_recall >= 0.7,
            "faint miners must mostly be caught: {:?}",
            r_faint
        );
        // A perfect masquerade reproduces the victim's keys bit-exactly:
        // it *cannot* be caught, and unknown-recall collapses.
        assert!(
            r_perfect.unknown_recall <= 0.25,
            "perfect miners must mostly get through: {:?}",
            r_perfect.unknown_recall
        );
        assert!(r_perfect.unknown_recall < r_faint.unknown_recall);
    }

    #[test]
    fn drift_relearn_beats_static_dictionary_at_high_intensity() {
        let (d, metric, clean) = fixture();
        let data = build(&clean, &spec(ScenarioKind::ConceptDrift, 1.0));
        let opts = CellOptions::default();
        let clf = fit_backend(BackendKind::Snapshot, &d, metric, Interval::PAPER_DEFAULT, opts);
        let static_arm = run_cell(&clf, &data, metric, Interval::PAPER_DEFAULT);
        let relearn_arm = drift_relearn(&data, metric, Interval::PAPER_DEFAULT, &opts);
        assert!(
            relearn_arm.macro_f1 > static_arm.macro_f1 + 0.2,
            "relearn {:.3} must clearly beat static {:.3}",
            relearn_arm.macro_f1,
            static_arm.macro_f1
        );
    }
}
