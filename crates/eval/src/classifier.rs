//! One interface over both recognition systems.
//!
//! The experiments only need two operations — *fit on a training subset*
//! and *predict an application name (or unknown) for a test run* — so both
//! the EFD and the Taxonomist baseline implement [`ExecutionClassifier`].
//!
//! Both implementations cache their per-run reductions (window means for
//! the EFD; whole-window feature rows for the baseline) on first use:
//! the five experiments refit dozens of times on subsets of the same runs,
//! and telemetry regeneration — not model fitting — would otherwise
//! dominate. A classifier instance is therefore tied to the dataset it
//! first saw (asserted).

use std::sync::OnceLock;

use efd_core::observation::{LabeledObservation, Query};
use efd_core::training::{Efd, EfdConfig};
use efd_ml::features::FeatureMatrix;
use efd_ml::metrics::UNKNOWN_LABEL;
use efd_ml::taxonomist::{Taxonomist, TaxonomistConfig};
use efd_telemetry::trace::MetricSelection;
use efd_telemetry::{Interval, MetricId};
use efd_util::parallel_map;
use efd_workload::Dataset;

/// A system that learns from labeled runs and predicts application names.
pub trait ExecutionClassifier {
    /// Display name for reports.
    fn name(&self) -> &str;

    /// Learn from the given run indices of `dataset`.
    fn fit(&mut self, dataset: &Dataset, train_idx: &[usize]);

    /// Predict application names (or [`UNKNOWN_LABEL`]) for test runs.
    fn predict_batch(&self, dataset: &Dataset, test_idx: &[usize]) -> Vec<String>;
}

/// The EFD under test: one metric, the `[60:120]` window, auto depth.
pub struct EfdClassifier {
    metric: MetricId,
    interval: Interval,
    /// Cached per-run node means: `means[run][node]`.
    means: OnceLock<Vec<Vec<f64>>>,
    dataset_fingerprint: OnceLock<u64>,
    model: Option<Efd>,
    display_name: String,
}

impl EfdClassifier {
    /// EFD over `metric` with the paper's `[60:120]` window.
    pub fn new(metric: MetricId) -> Self {
        Self::with_interval(metric, Interval::PAPER_DEFAULT)
    }

    /// EFD over `metric` with a custom window (interval ablations).
    pub fn with_interval(metric: MetricId, interval: Interval) -> Self {
        Self {
            metric,
            interval,
            means: OnceLock::new(),
            dataset_fingerprint: OnceLock::new(),
            model: None,
            display_name: "EFD".to_string(),
        }
    }

    /// The trained model of the most recent [`ExecutionClassifier::fit`].
    pub fn model(&self) -> Option<&Efd> {
        self.model.as_ref()
    }

    fn means_for(&self, dataset: &Dataset) -> &Vec<Vec<f64>> {
        let fp = self
            .dataset_fingerprint
            .get_or_init(|| dataset.spec().master_seed ^ dataset.len() as u64);
        assert_eq!(
            *fp,
            dataset.spec().master_seed ^ dataset.len() as u64,
            "classifier reused across datasets"
        );
        self.means.get_or_init(|| {
            let sel = MetricSelection::single(self.metric);
            dataset
                .window_means_all(&sel, self.interval)
                .into_iter()
                .map(|per_node| per_node.into_iter().map(|m| m[0]).collect())
                .collect()
        })
    }

    fn query_for(&self, dataset: &Dataset, run: usize) -> Query {
        let means = self.means_for(dataset);
        Query::from_node_means(self.metric, self.interval, &means[run])
    }
}

impl ExecutionClassifier for EfdClassifier {
    fn name(&self) -> &str {
        &self.display_name
    }

    fn fit(&mut self, dataset: &Dataset, train_idx: &[usize]) {
        let means = self.means_for(dataset);
        let labels = dataset.labels();
        let observations: Vec<LabeledObservation> = train_idx
            .iter()
            .map(|&i| LabeledObservation {
                label: labels[i].clone(),
                query: Query::from_node_means(self.metric, self.interval, &means[i]),
            })
            .collect();
        self.model = Some(Efd::fit(EfdConfig {
            metrics: vec![self.metric],
            intervals: vec![self.interval],
            depth: efd_core::training::DepthPolicy::default(),
        }, &observations));
    }

    fn predict_batch(&self, dataset: &Dataset, test_idx: &[usize]) -> Vec<String> {
        let model = self.model.as_ref().expect("fit() before predict");
        test_idx
            .iter()
            .map(|&i| {
                let q = self.query_for(dataset, i);
                model
                    .recognize(&q)
                    .best()
                    .map(str::to_string)
                    .unwrap_or_else(|| UNKNOWN_LABEL.to_string())
            })
            .collect()
    }
}

/// The Taxonomist baseline: all catalog metrics × whole-execution features
/// × random forest with confidence thresholding.
pub struct TaxonomistClassifier {
    cfg: TaxonomistConfig,
    /// Cached node-feature matrix over the whole dataset.
    features: OnceLock<FeatureMatrix>,
    model: Option<Taxonomist>,
    display_name: String,
}

impl TaxonomistClassifier {
    /// Baseline with the given configuration.
    pub fn new(cfg: TaxonomistConfig) -> Self {
        Self {
            cfg,
            features: OnceLock::new(),
            model: None,
            display_name: "Taxonomist".to_string(),
        }
    }

    fn features_for(&self, dataset: &Dataset) -> &FeatureMatrix {
        self.features.get_or_init(|| {
            let selection = MetricSelection::new(dataset.catalog().ids().collect());
            let idx: Vec<usize> = (0..dataset.len()).collect();
            // Extract per-run in parallel (each run materializes its own
            // trace and drops it immediately), then merge.
            let parts = parallel_map(&idx, |&i| {
                let trace = dataset.materialize(i, &selection);
                let mut fm = FeatureMatrix::default();
                fm.push_trace(&trace, i, None);
                fm
            });
            let mut merged = FeatureMatrix::default();
            for p in parts {
                merged.rows.extend(p.rows);
                merged.labels.extend(p.labels);
                merged.exec_of_row.extend(p.exec_of_row);
            }
            merged
        })
    }
}

impl ExecutionClassifier for TaxonomistClassifier {
    fn name(&self) -> &str {
        &self.display_name
    }

    fn fit(&mut self, dataset: &Dataset, train_idx: &[usize]) {
        let all = self.features_for(dataset);
        let train_set: efd_util::FxHashSet<usize> = train_idx.iter().copied().collect();
        let mut subset = FeatureMatrix::default();
        for (row, (label, &exec)) in all
            .rows
            .iter()
            .zip(all.labels.iter().zip(&all.exec_of_row))
        {
            if train_set.contains(&exec) {
                subset.rows.push(row.clone());
                subset.labels.push(label.clone());
                subset.exec_of_row.push(exec);
            }
        }
        self.model = Some(Taxonomist::fit(self.cfg, &subset));
    }

    fn predict_batch(&self, dataset: &Dataset, test_idx: &[usize]) -> Vec<String> {
        let model = self.model.as_ref().expect("fit() before predict");
        let all = self.features_for(dataset);
        test_idx
            .iter()
            .map(|&i| {
                let rows: Vec<Vec<f64>> = all
                    .rows_of_exec(i)
                    .into_iter()
                    .map(|r| all.rows[r].clone())
                    .collect();
                model.predict_execution(&rows)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_telemetry::catalog::small_catalog;
    use efd_workload::{DatasetSpec, SubsetKind};

    fn tiny_dataset() -> Dataset {
        // Public subset but with the 9-metric catalog: fast.
        let spec = DatasetSpec {
            subset: SubsetKind::Public,
            ..DatasetSpec::default()
        };
        Dataset::with_catalog(spec, small_catalog())
    }

    #[test]
    fn efd_classifier_end_to_end() {
        let d = tiny_dataset();
        let metric = d.catalog().id("nr_mapped_vmstat").unwrap();
        let mut c = EfdClassifier::new(metric);
        let train: Vec<usize> = (0..d.len()).filter(|i| i % 5 != 0).collect();
        let test: Vec<usize> = (0..d.len()).filter(|i| i % 5 == 0).collect();
        c.fit(&d, &train);
        let preds = c.predict_batch(&d, &test);
        let labels = d.labels();
        let correct = test
            .iter()
            .zip(&preds)
            .filter(|(&i, p)| &labels[i].app == *p)
            .count();
        assert!(
            correct as f64 / test.len() as f64 > 0.9,
            "EFD accuracy {}/{}",
            correct,
            test.len()
        );
    }

    #[test]
    fn taxonomist_classifier_end_to_end() {
        let d = tiny_dataset();
        let mut c = TaxonomistClassifier::new(TaxonomistConfig {
            n_trees: 10,
            ..Default::default()
        });
        let train: Vec<usize> = (0..d.len()).filter(|i| i % 5 != 0).collect();
        let test: Vec<usize> = (0..d.len()).filter(|i| i % 5 == 0).collect();
        c.fit(&d, &train);
        let preds = c.predict_batch(&d, &test);
        let labels = d.labels();
        let correct = test
            .iter()
            .zip(&preds)
            .filter(|(&i, p)| &labels[i].app == *p)
            .count();
        assert!(
            correct as f64 / test.len() as f64 > 0.8,
            "baseline accuracy {}/{}",
            correct,
            test.len()
        );
    }

    #[test]
    fn efd_unknown_for_unseen_app() {
        let d = tiny_dataset();
        let metric = d.catalog().id("nr_mapped_vmstat").unwrap();
        let mut c = EfdClassifier::new(metric);
        let labels = d.labels();
        // Train without kripke.
        let train: Vec<usize> = (0..d.len()).filter(|&i| labels[i].app != "kripke").collect();
        let kripke: Vec<usize> = (0..d.len()).filter(|&i| labels[i].app == "kripke").collect();
        c.fit(&d, &train);
        let preds = c.predict_batch(&d, &kripke);
        let unknown = preds.iter().filter(|p| *p == UNKNOWN_LABEL).count();
        assert!(
            unknown as f64 / preds.len() as f64 > 0.7,
            "only {unknown}/{} kripke runs flagged unknown",
            preds.len()
        );
    }
}
