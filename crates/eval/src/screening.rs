//! Per-metric screening: which single metric recognizes best (Table 3).
//!
//! The paper's Table 3 reports normal-fold F-scores of *individual* system
//! metrics — the EFD is built once per metric and scored with the same
//! 5-fold protocol. Means for all metrics are generated in one pass
//! (`[run][node][metric]`), then metrics are screened in parallel.

use efd_core::observation::{LabeledObservation, Query};
use efd_core::training::{DepthPolicy, Efd, EfdConfig};
use efd_ml::metrics::{evaluate, UNKNOWN_LABEL};
use efd_telemetry::trace::MetricSelection;
use efd_telemetry::{Interval, MetricId};
use efd_util::parallel_map;
use efd_workload::splits::stratified_k_fold;
use efd_workload::Dataset;

use crate::experiments::EvalOptions;

/// Normal-fold score of one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricScore {
    /// The metric.
    pub metric: MetricId,
    /// Its catalog name.
    pub name: String,
    /// Mean macro F1 over the outer folds.
    pub f1: f64,
}

/// Screen `metrics` (default: the whole catalog) with the normal-fold
/// experiment; returns scores sorted descending (ties alphabetical).
pub fn screen_metrics(
    dataset: &Dataset,
    opts: &EvalOptions,
    metrics: Option<&[MetricId]>,
) -> Vec<MetricScore> {
    let all_ids: Vec<MetricId> = match metrics {
        Some(m) => m.to_vec(),
        None => dataset.catalog().ids().collect(),
    };
    let selection = MetricSelection::new(all_ids.clone());
    // One generation pass for every metric: means[run][node][metric_pos].
    let means = dataset.window_means_all(&selection, Interval::PAPER_DEFAULT);
    let labels = dataset.labels();
    let folds = stratified_k_fold(&labels, opts.folds, opts.seed);

    let positions: Vec<usize> = (0..all_ids.len()).collect();
    let mut scores: Vec<MetricScore> = parallel_map(&positions, |&pos| {
        let metric = all_ids[pos];
        let node_means = |run: usize| -> Vec<f64> {
            means[run].iter().map(|per_metric| per_metric[pos]).collect()
        };
        let mut fold_f1 = Vec::with_capacity(folds.len());
        for fold in &folds {
            let train: Vec<LabeledObservation> = fold
                .train
                .iter()
                .map(|&i| LabeledObservation {
                    label: labels[i].clone(),
                    query: Query::from_node_means(
                        metric,
                        Interval::PAPER_DEFAULT,
                        &node_means(i),
                    ),
                })
                .collect();
            let efd = Efd::fit(
                EfdConfig {
                    metrics: vec![metric],
                    intervals: vec![Interval::PAPER_DEFAULT],
                    depth: DepthPolicy::default(),
                },
                &train,
            );
            let truth: Vec<&str> = fold.test.iter().map(|&i| labels[i].app.as_str()).collect();
            let preds: Vec<String> = fold
                .test
                .iter()
                .map(|&i| {
                    let q =
                        Query::from_node_means(metric, Interval::PAPER_DEFAULT, &node_means(i));
                    efd.recognize(&q)
                        .best()
                        .map(str::to_string)
                        .unwrap_or_else(|| UNKNOWN_LABEL.to_string())
                })
                .collect();
            fold_f1.push(evaluate(&truth, &preds).macro_f1());
        }
        MetricScore {
            metric,
            name: dataset.catalog().name(metric).to_string(),
            f1: fold_f1.iter().sum::<f64>() / fold_f1.len() as f64,
        }
    });

    scores.sort_by(|a, b| b.f1.partial_cmp(&a.f1).unwrap().then(a.name.cmp(&b.name)));
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_telemetry::catalog::small_catalog;
    use efd_workload::DatasetSpec;

    #[test]
    fn headline_metric_tops_small_catalog() {
        let d = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
        let scores = screen_metrics(&d, &EvalOptions::default(), None);
        assert_eq!(scores.len(), d.catalog().len());
        // Sorted descending.
        for w in scores.windows(2) {
            assert!(w[0].f1 >= w[1].f1);
        }
        // The curated metric must score essentially perfectly…
        let nr_mapped = scores.iter().find(|s| s.name == "nr_mapped_vmstat").unwrap();
        assert!(nr_mapped.f1 > 0.95, "nr_mapped F1 {}", nr_mapped.f1);
        // …and clearly beat the weak-tier load average.
        let load = scores.iter().find(|s| s.name == "load1_loadavg").unwrap();
        assert!(
            nr_mapped.f1 > load.f1 + 0.1,
            "nr_mapped {} vs load1 {}",
            nr_mapped.f1,
            load.f1
        );
    }

    #[test]
    fn subset_screening() {
        let d = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
        let ids = [d.catalog().id("nr_mapped_vmstat").unwrap()];
        let scores = screen_metrics(&d, &EvalOptions::default(), Some(&ids));
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].name, "nr_mapped_vmstat");
    }
}
