//! Rendering paper artifacts (Tables 1–4, Figure 2) and EXPERIMENTS.md.
//!
//! Every renderer prints *paper vs measured* side by side so the benches'
//! output is self-judging: a reader sees immediately whether the shape
//! holds.

use efd_core::dictionary::EfdDictionary;
use efd_core::observation::{LabeledObservation, Query};
use efd_core::rounding::{round_to_depth, RoundingDepth};
use efd_telemetry::trace::MetricSelection;
use efd_telemetry::Interval;
use efd_util::table::{fmt_score, TextTable};
use efd_util::Align;
use efd_workload::{AppId, Dataset, InputSize};

use crate::experiments::{ExperimentKind, ExperimentResult};
use crate::paper;
use crate::screening::MetricScore;

/// Table 1: the rounding-depth mechanism, paper values vs our
/// implementation (they must agree exactly; the table shows both).
pub fn render_table1() -> TextTable {
    let mut t = TextTable::new(vec![
        "Original Value",
        "depth 5",
        "depth 4",
        "depth 3",
        "depth 2",
        "depth 1",
    ])
    .with_title("Table 1: Rounding Depth for Measurements (ours = paper)")
    .with_aligns(vec![Align::Right; 6]);
    for (value, expected) in paper::TABLE1 {
        let mut row = vec![efd_core::fingerprint::fmt_mean(value)];
        for (i, exp) in expected.iter().enumerate() {
            let depth = (5 - i) as u8;
            let ours = round_to_depth(value, depth);
            let cell = match exp {
                Some(_) => efd_core::fingerprint::fmt_mean(ours),
                None => "-".to_string(),
            };
            row.push(cell);
        }
        t.add_row(row);
    }
    t
}

/// Figure 2: EFD vs Taxonomist across the five experiments, paper vs
/// measured. `results` may contain any subset of
/// (classifier, experiment) pairs.
pub fn render_figure2(results: &[ExperimentResult]) -> TextTable {
    let mut t = TextTable::new(vec![
        "Experiment",
        "Taxonomist (paper)",
        "EFD (paper)",
        "Taxonomist (ours)",
        "EFD (ours)",
    ])
    .with_title(
        "Figure 2: F-scores — Taxonomist (721 metrics, full window) vs \
         EFD (1 metric, first 2 minutes)",
    )
    .with_aligns(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let lookup = |kind: ExperimentKind, who: &str| -> String {
        results
            .iter()
            .find(|r| r.kind == kind && r.classifier == who)
            .map(|r| fmt_score(r.mean_f1))
            .unwrap_or_else(|| "n/a".to_string())
    };
    for kind in ExperimentKind::ALL {
        t.add_row(vec![
            kind.label().to_string(),
            paper::taxonomist_figure2(kind)
                .map(fmt_score)
                .unwrap_or_else(|| "not conducted".to_string()),
            fmt_score(paper::efd_figure2(kind)),
            lookup(kind, "Taxonomist"),
            lookup(kind, "EFD"),
        ]);
    }
    t
}

/// Table 3: paper's excerpt vs our measured per-metric F-scores.
pub fn render_table3(scores: &[MetricScore]) -> TextTable {
    let mut t = TextTable::new(vec![
        "System Metric Name",
        "F-score (paper)",
        "F-score (ours)",
        "rank (ours)",
    ])
    .with_title("Table 3: Excerpt of Individual System Metric Results (normal fold)")
    .with_aligns(vec![Align::Left, Align::Right, Align::Right, Align::Right]);
    for (name, paper_f1) in paper::TABLE3 {
        let (ours, rank) = scores
            .iter()
            .position(|s| s.name == name)
            .map(|i| (fmt_score(scores[i].f1), (i + 1).to_string()))
            .unwrap_or(("n/a".into(), "n/a".into()));
        t.add_row(vec![name.to_string(), fmt_score(paper_f1), ours, rank]);
    }
    t
}

/// Top-k measured metrics (the "…" the paper's excerpt elides).
pub fn render_table3_top(scores: &[MetricScore], k: usize) -> TextTable {
    let mut t = TextTable::new(vec!["rank", "System Metric Name", "F-score (ours)"])
        .with_title(format!("Top {k} metrics by measured normal-fold F-score"))
        .with_aligns(vec![Align::Right, Align::Left, Align::Right]);
    for (i, s) in scores.iter().take(k).enumerate() {
        t.add_row(vec![(i + 1).to_string(), s.name.clone(), fmt_score(s.f1)]);
    }
    t
}

/// Build the paper's Table 4 example dictionary: the Table 4 subset of
/// apps (ft, mg, sp, bt, lu, miniGhost, miniAMR) with inputs X/Y/Z, the
/// headline metric, fixed rounding depth 2.
pub fn build_table4_dictionary(dataset: &Dataset) -> EfdDictionary {
    let metric = dataset
        .catalog()
        .id(paper::HEADLINE_METRIC)
        .expect("headline metric in catalog");
    let selection = MetricSelection::single(metric);
    // Paper Table 4 order: ft, mg, sp (+bt merged), lu, miniGhost, miniAMR.
    let apps = [
        AppId::Ft,
        AppId::Mg,
        AppId::Sp,
        AppId::Bt,
        AppId::Lu,
        AppId::MiniGhost,
        AppId::MiniAmr,
    ];
    let mut dict = EfdDictionary::new(RoundingDepth::TABLE4);
    let labels = dataset.labels();
    for app in apps {
        for input in [InputSize::X, InputSize::Y, InputSize::Z] {
            for (i, run) in dataset.runs().iter().enumerate() {
                if run.app != app || run.input != input {
                    continue;
                }
                let means = dataset.window_means(i, &selection, Interval::PAPER_DEFAULT);
                let node_means: Vec<f64> = means.iter().map(|m| m[0]).collect();
                dict.learn(&LabeledObservation {
                    label: labels[i].clone(),
                    query: Query::from_node_means(metric, Interval::PAPER_DEFAULT, &node_means),
                });
            }
        }
    }
    dict
}

/// Render Table 4 from the dataset (builds the example dictionary).
pub fn render_table4(dataset: &Dataset) -> TextTable {
    build_table4_dictionary(dataset).render_table4(dataset.catalog())
}

/// Render a confusion matrix as a compact table (rows = truth, columns =
/// predictions; zero cells blank).
pub fn render_confusion(report: &efd_ml::ClassificationReport) -> TextTable {
    let mut headers = vec!["truth \\ pred".to_string()];
    headers.extend(report.classes.iter().cloned());
    let mut t = TextTable::new(headers).with_title("Confusion matrix");
    for (r, class) in report.classes.iter().enumerate() {
        let mut row = vec![class.clone()];
        for c in 0..report.classes.len() {
            let n = report.confusion[r][c];
            row.push(if n == 0 { String::new() } else { n.to_string() });
        }
        t.add_row(row);
    }
    t
}

/// The most-confused application pairs (off-diagonal mass, both
/// directions summed), descending — on this dataset the SP/BT twins top
/// the list, as the paper's §5 discussion predicts.
pub fn confused_pairs(report: &efd_ml::ClassificationReport) -> Vec<(String, String, usize)> {
    let k = report.classes.len();
    let mut pairs = Vec::new();
    for a in 0..k {
        for b in (a + 1)..k {
            let n = report.confusion[a][b] + report.confusion[b][a];
            if n > 0 {
                pairs.push((report.classes[a].clone(), report.classes[b].clone(), n));
            }
        }
    }
    pairs.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)));
    pairs
}

/// Generate EXPERIMENTS.md content from measured results.
pub fn experiments_markdown(
    figure2: &[ExperimentResult],
    table3: &[MetricScore],
    dataset: &Dataset,
) -> String {
    let mut md = String::new();
    md.push_str("# EXPERIMENTS — paper vs measured\n\n");
    md.push_str(
        "Reproduction of *An Execution Fingerprint Dictionary for HPC \
         Application Recognition* (CLUSTER 2021) on the synthetic \
         Taxonomist-style dataset (see DESIGN.md §2 for the substitution). \
         Regenerate any artifact with the bench named in its section.\n\n",
    );

    md.push_str("## Table 1 — rounding depth (`cargo bench -p efd-bench --bench table1`)\n\n");
    md.push_str(&render_table1().render_markdown());
    md.push_str("\nOur implementation reproduces every cell exactly (unit + property tests in `efd-core::rounding`).\n\n");

    md.push_str("## Table 2 — dataset (`cargo bench -p efd-bench --bench table2`)\n\n");
    md.push_str(&dataset.table2().render_markdown());
    md.push('\n');

    md.push_str("## Figure 2 — the five experiments (`cargo bench -p efd-bench --bench figure2`)\n\n");
    md.push_str(&render_figure2(figure2).render_markdown());
    md.push_str(
        "\nPaper bars are digitized (±0.02). Shape criteria: normal fold ≈ 1.0; \
         soft experiments ≥ 0.9; hard experiments clearly lower (the paper's \
         \"room for improvement\"); EFD comparable to Taxonomist while using \
         1/562 of the metrics and only the first two minutes.\n\n",
    );

    md.push_str("## Table 3 — per-metric F-scores (`cargo bench -p efd-bench --bench table3`)\n\n");
    md.push_str(&render_table3(table3).render_markdown());
    md.push('\n');
    md.push_str(&render_table3_top(table3, 15).render_markdown());
    md.push('\n');

    md.push_str("## Table 4 — example dictionary (`cargo bench -p efd-bench --bench table4`)\n\n");
    md.push_str("Built from the Table 4 subset (ft, mg, sp, bt, lu, miniGhost, miniAMR × X/Y/Z) at fixed depth 2:\n\n");
    md.push_str(&render_table4(dataset).render_markdown());
    md.push_str(
        "\nExpected structure (paper §5): SP and BT share every key (collision, \
         resolved at depth 3); miniAMR's fingerprints differ per input size; \
         the other apps repeat across inputs.\n",
    );
    md
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_telemetry::catalog::small_catalog;
    use efd_workload::DatasetSpec;

    fn dataset() -> Dataset {
        Dataset::with_catalog(DatasetSpec::default(), small_catalog())
    }

    #[test]
    fn table1_renders_paper_cells() {
        let s = render_table1().render();
        assert!(s.contains("1360"), "{s}");
        assert!(s.contains("0.04"), "{s}");
        assert!(s.contains('-'), "{s}");
    }

    #[test]
    fn figure2_renders_all_rows() {
        let results = vec![ExperimentResult {
            kind: ExperimentKind::NormalFold,
            classifier: "EFD".into(),
            mean_f1: 0.99,
            per_variant: vec![("fold 1".into(), 0.99)],
        }];
        let s = render_figure2(&results).render();
        assert!(s.contains("normal fold"));
        assert!(s.contains("hard unknown"));
        assert!(s.contains("not conducted"));
        assert!(s.contains("0.99"));
        assert!(s.contains("n/a")); // Taxonomist(ours) missing
    }

    #[test]
    fn table4_shows_collision_and_input_dependence() {
        let d = dataset();
        let dict = build_table4_dictionary(&d);
        let rendered = dict.render_table4(d.catalog()).render();
        // SP/BT collision on shared keys:
        assert!(
            rendered.contains("sp X") && rendered.contains("bt X"),
            "{rendered}"
        );
        // miniAMR Z at a clearly different level than X:
        assert!(rendered.contains("miniAMR Z"), "{rendered}");
        let stats = dict.stats();
        assert!(stats.colliding_entries > 0, "expected SP/BT collisions");
    }

    #[test]
    fn confusion_rendering_and_pairs() {
        let truth = ["sp", "sp", "bt", "bt", "ft"];
        let pred = ["sp", "bt", "sp", "bt", "ft"];
        let rep = efd_ml::evaluate(&truth, &pred);
        let table = render_confusion(&rep).render();
        assert!(table.contains("truth \\ pred"));
        let pairs = confused_pairs(&rep);
        assert_eq!(pairs[0].2, 2);
        let (a, b) = (pairs[0].0.as_str(), pairs[0].1.as_str());
        assert!((a == "bt" && b == "sp") || (a == "sp" && b == "bt"));
        // ft never confused.
        assert!(pairs.iter().all(|(a, b, _)| a != "ft" && b != "ft"));
    }

    #[test]
    fn markdown_generation_smoke() {
        let d = dataset();
        let md = experiments_markdown(&[], &[], &d);
        assert!(md.contains("# EXPERIMENTS"));
        assert!(md.contains("Table 4"));
        assert!(md.contains("| normal fold |"));
    }
}
