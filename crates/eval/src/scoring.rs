//! Abstention-quality scoring for scenario evaluation.
//!
//! Plain accuracy/F1 hides the verdicts that matter most in deployment:
//! the EFD's whole safety story is that out-of-dictionary executions come
//! back [`efd_core::Verdict::Unknown`] and contested keys come back
//! [`efd_core::Verdict::Ambiguous`]. This module scores those explicitly,
//! per scenario × backend cell:
//!
//! * **Unknown detection** — treating "should abstain" as the positive
//!   class: precision (`of the Unknowns we emitted, how many were truly
//!   out-of-dictionary?`) and recall (`of the truly out-of-dictionary
//!   queries, how many did we abstain on?`). Zero-division conventions
//!   are explicit and NaN-free (see [`score`]).
//! * **Ambiguity calibration** — expected calibration error over the
//!   per-query confidence (`matched_points / total_points`), binned into
//!   five equal-width bins: a well-calibrated recognizer's confidence
//!   should track its empirical correctness.
//! * **Tie coverage** — among `Ambiguous` verdicts with a known truth,
//!   how often the truth is *inside* the tie array (the paper prints the
//!   array precisely so an operator can inspect it).
//!
//! All of it folds into one [`AbstentionReport`] per cell, next to the
//! usual macro-F1/accuracy, plus the verdict histogram the conformance
//! suite pins across backends.

use efd_core::{Recognition, Verdict};
use efd_ml::metrics::{evaluate, UNKNOWN_LABEL};

/// Which verdict variant a query produced (the histogram dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictKind {
    /// Exactly one application won.
    Recognized,
    /// Several applications tied.
    Ambiguous,
    /// Abstained: no fingerprint matched (or every point abstained).
    Unknown,
}

/// One scored query: ground truth vs what the backend answered.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredQuery {
    /// Ground-truth application, or [`UNKNOWN_LABEL`] when the correct
    /// behavior is to abstain (out-of-dictionary execution).
    pub truth: String,
    /// Scored prediction: [`Recognition::best`], or [`UNKNOWN_LABEL`].
    pub predicted: String,
    /// Which verdict variant was produced.
    pub verdict: VerdictKind,
    /// Matched-point fraction in `[0, 1]` (`matched / total`; `0` for an
    /// empty query) — the confidence signal calibration is scored on.
    pub confidence: f64,
    /// The tie array of an `Ambiguous` verdict (empty otherwise).
    pub tie: Vec<String>,
}

impl ScoredQuery {
    /// Score one recognition against its ground truth (`None` = the
    /// backend should have abstained).
    pub fn from_recognition(truth: Option<&str>, r: &Recognition) -> ScoredQuery {
        let (verdict, tie) = match &r.verdict {
            Verdict::Recognized(_) => (VerdictKind::Recognized, Vec::new()),
            Verdict::Ambiguous(tie) => (VerdictKind::Ambiguous, tie.clone()),
            _ => (VerdictKind::Unknown, Vec::new()),
        };
        let confidence = if r.total_points == 0 {
            0.0
        } else {
            r.matched_points as f64 / r.total_points as f64
        };
        ScoredQuery {
            truth: truth.unwrap_or(UNKNOWN_LABEL).to_string(),
            predicted: r.best().unwrap_or(UNKNOWN_LABEL).to_string(),
            verdict,
            confidence,
            tie,
        }
    }
}

/// Verdict counts over a cell (the conformance suite pins these across
/// every dictionary-family backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerdictHistogram {
    /// `Recognized` verdicts.
    pub recognized: usize,
    /// `Ambiguous` verdicts.
    pub ambiguous: usize,
    /// `Unknown` verdicts.
    pub unknown: usize,
}

impl std::fmt::Display for VerdictHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recognized={} ambiguous={} unknown={}",
            self.recognized, self.ambiguous, self.unknown
        )
    }
}

/// Number of equal-width confidence bins in the calibration error.
pub const CALIBRATION_BINS: usize = 5;

/// Per-cell scores: classification quality plus abstention quality.
///
/// Every field is a finite number for every input, including the
/// all-Unknown and zero-Unknown edge cases — the zero-division
/// conventions are spelled out on [`score`].
#[derive(Debug, Clone, PartialEq)]
pub struct AbstentionReport {
    /// Queries scored.
    pub n: usize,
    /// Macro F1 over classes present in the truth (sklearn-compatible,
    /// [`UNKNOWN_LABEL`] participates as its own class).
    pub macro_f1: f64,
    /// Plain accuracy: `predicted == truth`.
    pub accuracy: f64,
    /// Of the emitted Unknowns, the fraction that truly required
    /// abstention.
    pub unknown_precision: f64,
    /// Of the queries requiring abstention, the fraction that got it.
    pub unknown_recall: f64,
    /// Harmonic mean of the two (0 when both are 0).
    pub unknown_f1: f64,
    /// Expected calibration error over [`CALIBRATION_BINS`] confidence
    /// bins (0 = perfectly calibrated; empty bins contribute nothing).
    pub calibration_error: f64,
    /// Among `Ambiguous` verdicts with a known truth, the fraction whose
    /// tie array contains the truth (1.0 when there are none).
    pub tie_coverage: f64,
    /// Verdict counts.
    pub verdicts: VerdictHistogram,
}

/// Score a cell of queries.
///
/// Zero-division conventions (all chosen so a report never contains NaN):
///
/// * `unknown_precision` with zero emitted Unknowns: `1.0` if nothing
///   required abstention (vacuously precise), else `0.0` (it missed all
///   of them and claimed nothing).
/// * `unknown_recall` with zero truth-Unknowns: `1.0` (vacuous recall).
/// * `unknown_f1` when precision + recall is `0`: `0.0`.
/// * `tie_coverage` with no qualifying `Ambiguous` verdicts: `1.0`.
/// * Empty input: `n = 0`, every rate `1.0` except `macro_f1`,
///   `accuracy`, and `calibration_error`, which are `0.0`.
pub fn score(queries: &[ScoredQuery]) -> AbstentionReport {
    let n = queries.len();
    let mut verdicts = VerdictHistogram::default();
    for q in queries {
        match q.verdict {
            VerdictKind::Recognized => verdicts.recognized += 1,
            VerdictKind::Ambiguous => verdicts.ambiguous += 1,
            VerdictKind::Unknown => verdicts.unknown += 1,
        }
    }

    let truth: Vec<String> = queries.iter().map(|q| q.truth.clone()).collect();
    let predicted: Vec<String> = queries.iter().map(|q| q.predicted.clone()).collect();
    let macro_f1 = if n == 0 {
        0.0
    } else {
        evaluate(&truth, &predicted).macro_f1_present()
    };
    let correct = queries.iter().filter(|q| q.predicted == q.truth).count();
    let accuracy = if n == 0 { 0.0 } else { correct as f64 / n as f64 };

    // Unknown detection: "should abstain" is the positive class.
    let truth_unknown = queries.iter().filter(|q| q.truth == UNKNOWN_LABEL).count();
    let pred_unknown = queries
        .iter()
        .filter(|q| q.predicted == UNKNOWN_LABEL)
        .count();
    let hit_unknown = queries
        .iter()
        .filter(|q| q.truth == UNKNOWN_LABEL && q.predicted == UNKNOWN_LABEL)
        .count();
    let unknown_precision = if pred_unknown > 0 {
        hit_unknown as f64 / pred_unknown as f64
    } else if truth_unknown == 0 {
        1.0
    } else {
        0.0
    };
    let unknown_recall = if truth_unknown > 0 {
        hit_unknown as f64 / truth_unknown as f64
    } else {
        1.0
    };
    let unknown_f1 = if unknown_precision + unknown_recall > 0.0 {
        2.0 * unknown_precision * unknown_recall / (unknown_precision + unknown_recall)
    } else {
        0.0
    };

    // Expected calibration error over equal-width confidence bins.
    let mut bin_conf = [0.0f64; CALIBRATION_BINS];
    let mut bin_hits = [0usize; CALIBRATION_BINS];
    let mut bin_n = [0usize; CALIBRATION_BINS];
    for q in queries {
        let c = q.confidence.clamp(0.0, 1.0);
        let b = ((c * CALIBRATION_BINS as f64) as usize).min(CALIBRATION_BINS - 1);
        bin_conf[b] += c;
        bin_n[b] += 1;
        if q.predicted == q.truth {
            bin_hits[b] += 1;
        }
    }
    let calibration_error = if n == 0 {
        0.0
    } else {
        (0..CALIBRATION_BINS)
            .filter(|&b| bin_n[b] > 0)
            .map(|b| {
                let avg_conf = bin_conf[b] / bin_n[b] as f64;
                let avg_acc = bin_hits[b] as f64 / bin_n[b] as f64;
                (avg_conf - avg_acc).abs() * bin_n[b] as f64 / n as f64
            })
            .sum()
    };

    // Tie coverage over Ambiguous verdicts with a known truth.
    let mut tied = 0usize;
    let mut covered = 0usize;
    for q in queries {
        if q.verdict == VerdictKind::Ambiguous && q.truth != UNKNOWN_LABEL {
            tied += 1;
            if q.tie.iter().any(|a| a == &q.truth) {
                covered += 1;
            }
        }
    }
    let tie_coverage = if tied > 0 {
        covered as f64 / tied as f64
    } else {
        1.0
    };

    let report = AbstentionReport {
        n,
        macro_f1,
        accuracy,
        unknown_precision,
        unknown_recall,
        unknown_f1,
        calibration_error,
        tie_coverage,
        verdicts,
    };
    debug_assert!(
        [
            report.macro_f1,
            report.accuracy,
            report.unknown_precision,
            report.unknown_recall,
            report.unknown_f1,
            report.calibration_error,
            report.tie_coverage,
        ]
        .iter()
        .all(|v| v.is_finite()),
        "abstention report contains a non-finite value: {report:?}"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(truth: &str, predicted: &str, verdict: VerdictKind, confidence: f64) -> ScoredQuery {
        ScoredQuery {
            truth: truth.into(),
            predicted: predicted.into(),
            verdict,
            confidence,
            tie: Vec::new(),
        }
    }

    // ---- hand-computed golden fixtures on a tiny 3-app dictionary ----
    //
    // 8 queries over apps {ft, cg, lu} plus two out-of-dictionary runs:
    //
    //   # truth    predicted  verdict     conf
    //   1 ft       ft         Recognized  1.00   correct
    //   2 ft       cg         Recognized  0.75   wrong
    //   3 cg       cg         Recognized  1.00   correct
    //   4 lu       unknown    Unknown     0.00   missed (false abstain)
    //   5 lu       lu         Ambiguous   0.50   correct via tie-break
    //   6 unknown  unknown    Unknown     0.00   true abstain
    //   7 unknown  ft         Recognized  0.25   masquerade fooled it
    //   8 cg       cg         Recognized  0.80   correct
    fn golden() -> Vec<ScoredQuery> {
        let mut v = vec![
            q("ft", "ft", VerdictKind::Recognized, 1.0),
            q("ft", "cg", VerdictKind::Recognized, 0.75),
            q("cg", "cg", VerdictKind::Recognized, 1.0),
            q("lu", UNKNOWN_LABEL, VerdictKind::Unknown, 0.0),
            q("lu", "lu", VerdictKind::Ambiguous, 0.5),
            q(UNKNOWN_LABEL, UNKNOWN_LABEL, VerdictKind::Unknown, 0.0),
            q(UNKNOWN_LABEL, "ft", VerdictKind::Recognized, 0.25),
            q("cg", "cg", VerdictKind::Recognized, 0.8),
        ];
        v[4].tie = vec!["lu".into(), "sp".into()];
        v
    }

    #[test]
    fn golden_unknown_detection() {
        let r = score(&golden());
        // Emitted Unknowns: #4 and #6 → precision 1/2. Truth-unknowns:
        // #6 and #7 → recall 1/2. F1 = 0.5.
        assert_eq!(r.unknown_precision, 0.5);
        assert_eq!(r.unknown_recall, 0.5);
        assert_eq!(r.unknown_f1, 0.5);
    }

    #[test]
    fn golden_accuracy_and_histogram() {
        let r = score(&golden());
        // Correct: #1 #3 #5 #6 #8 → 5/8.
        assert_eq!(r.accuracy, 5.0 / 8.0);
        assert_eq!(
            r.verdicts,
            VerdictHistogram {
                recognized: 5,
                ambiguous: 1,
                unknown: 2,
            }
        );
        assert_eq!(r.n, 8);
    }

    #[test]
    fn golden_macro_f1() {
        // Per-class F1 (classes present in truth: cg, ft, lu, unknown):
        //   cg: P=2/3, R=1   → 0.8
        //   ft: P=1/2, R=1/2 → 0.5
        //   lu: P=1,   R=1/2 → 2/3
        //   unknown: P=1/2, R=1/2 → 0.5
        // macro = (0.8 + 0.5 + 2/3 + 0.5) / 4 = 37/60
        let r = score(&golden());
        assert!((r.macro_f1 - 37.0 / 60.0).abs() < 1e-12, "{}", r.macro_f1);
    }

    #[test]
    fn golden_calibration_error() {
        // Bins of width 0.2 over (conf, correct):
        //   bin0 [0,.2):   #4(0,✓ as unknown? no: predicted=unknown, truth=lu ✗)
        //                  #6(0,✓) → conf̄=0, acc=1/2 → |0-0.5|·2/8
        //   bin1 [.2,.4):  #7(.25,✗) → |0.25-0|·1/8
        //   bin2 [.4,.6):  #5(.5,✓)  → |0.5-1|·1/8
        //   bin3 [.6,.8):  #2(.75,✗) → |0.75-0|·1/8
        //   bin4 [.8,1]:   #1(1,✓) #3(1,✓) #8(.8,✓) → |2.8/3-1|·3/8
        // ECE = (1 + 0.25 + 0.5 + 0.75)/8 + (0.2/3)·(3/8) = 0.3375
        let r = score(&golden());
        assert!((r.calibration_error - 0.3375).abs() < 1e-12, "{}", r.calibration_error);
    }

    #[test]
    fn golden_tie_coverage() {
        let mut queries = golden();
        let r = score(&queries);
        assert_eq!(r.tie_coverage, 1.0, "the one tie contains its truth");
        // Break the tie array: coverage drops to 0.
        queries[4].tie = vec!["sp".into(), "bt".into()];
        let r = score(&queries);
        assert_eq!(r.tie_coverage, 0.0);
    }

    #[test]
    fn all_unknown_edge_case_has_no_nan() {
        // Every query abstained, and every truth required it.
        let queries: Vec<ScoredQuery> = (0..4)
            .map(|_| q(UNKNOWN_LABEL, UNKNOWN_LABEL, VerdictKind::Unknown, 0.0))
            .collect();
        let r = score(&queries);
        assert_eq!(r.unknown_precision, 1.0);
        assert_eq!(r.unknown_recall, 1.0);
        assert_eq!(r.unknown_f1, 1.0);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.tie_coverage, 1.0);
        // Every abstain was right but carried confidence 0: maximally
        // miscalibrated, and still a finite, meaningful number.
        assert_eq!(r.calibration_error, 1.0);
    }

    #[test]
    fn zero_unknown_edge_case_has_no_nan() {
        // Nothing abstained and nothing needed to.
        let queries = vec![
            q("ft", "ft", VerdictKind::Recognized, 1.0),
            q("cg", "cg", VerdictKind::Recognized, 1.0),
        ];
        let r = score(&queries);
        assert_eq!(r.unknown_precision, 1.0, "vacuously precise");
        assert_eq!(r.unknown_recall, 1.0, "vacuous recall");
        assert_eq!(r.unknown_f1, 1.0);
        assert_eq!(r.macro_f1, 1.0);
        assert_eq!(r.calibration_error, 0.0);
    }

    #[test]
    fn abstains_emitted_but_never_required() {
        // Unknowns emitted on in-dictionary queries only: precision 0,
        // vacuous recall 1, f1 well-defined.
        let queries = vec![
            q("ft", UNKNOWN_LABEL, VerdictKind::Unknown, 0.0),
            q("cg", "cg", VerdictKind::Recognized, 1.0),
        ];
        let r = score(&queries);
        assert_eq!(r.unknown_precision, 0.0);
        assert_eq!(r.unknown_recall, 1.0);
        assert_eq!(r.unknown_f1, 0.0);
    }

    #[test]
    fn required_but_never_emitted() {
        let queries = vec![
            q(UNKNOWN_LABEL, "ft", VerdictKind::Recognized, 1.0),
            q("cg", "cg", VerdictKind::Recognized, 1.0),
        ];
        let r = score(&queries);
        assert_eq!(r.unknown_precision, 0.0, "abstention existed but was never claimed");
        assert_eq!(r.unknown_recall, 0.0);
        assert_eq!(r.unknown_f1, 0.0);
    }

    #[test]
    fn empty_input_is_all_finite() {
        let r = score(&[]);
        assert_eq!(r.n, 0);
        assert_eq!(r.macro_f1, 0.0);
        assert_eq!(r.accuracy, 0.0);
        assert_eq!(r.unknown_precision, 1.0);
        assert_eq!(r.unknown_recall, 1.0);
        assert_eq!(r.calibration_error, 0.0);
    }

    #[test]
    fn from_recognition_maps_verdicts_and_confidence() {
        use efd_core::Verdict;
        let r = Recognition {
            verdict: Verdict::Ambiguous(vec!["bt".into(), "sp".into()]),
            app_votes: vec![("bt".into(), 2), ("sp".into(), 2)],
            label_votes: vec![],
            matched_points: 2,
            total_points: 4,
        };
        let s = ScoredQuery::from_recognition(Some("sp"), &r);
        assert_eq!(s.verdict, VerdictKind::Ambiguous);
        assert_eq!(s.predicted, "bt", "best() tie-break is lexicographic");
        assert_eq!(s.confidence, 0.5);
        assert_eq!(s.tie, vec!["bt".to_string(), "sp".to_string()]);
        assert_eq!(s.truth, "sp");

        let r = Recognition {
            verdict: Verdict::Unknown,
            app_votes: vec![],
            label_votes: vec![],
            matched_points: 0,
            total_points: 0,
        };
        let s = ScoredQuery::from_recognition(None, &r);
        assert_eq!(s.truth, UNKNOWN_LABEL);
        assert_eq!(s.predicted, UNKNOWN_LABEL);
        assert_eq!(s.confidence, 0.0, "empty query must not divide by zero");
    }
}
