//! Engine ↔ classifier adapters: one harness over every recognizer.
//!
//! The malware-detection companion paper (Jakobsche & Ciorba, 2024) swaps
//! classifiers over the *same* telemetry; SIREN argues a recognition
//! pipeline should treat identification methods as interchangeable. This
//! module provides the two adapters that make that real here:
//!
//! * [`MlBackend`] — runs the ml baseline families (random forest à la
//!   Taxonomist, kNN, Gaussian naive Bayes) as engine backends: it
//!   implements [`Learn`]/[`Recognize`], so a feature classifier can be
//!   dropped anywhere a dictionary backend goes (conformance harness,
//!   `BatchRecognizer`, a `Box<dyn Recognize>` behind the CLI).
//! * [`EngineClassifier`] — the reverse direction: wraps **any**
//!   `Learn + Recognize` engine as an [`ExecutionClassifier`], so engine
//!   backends run under the paper's five-experiment evaluation harness
//!   next to [`crate::EfdClassifier`] and
//!   [`crate::TaxonomistClassifier`].
//!
//! Together: the EFD, Taxonomist-style forests, kNN, and GaussianNb all
//! answer through one `Recognize` interface *and* all score under one
//! evaluation harness.

use std::sync::{Arc, Mutex, OnceLock};

use efd_core::dictionary::AppNameId;
use efd_core::engine::{Learn, Recognize, VoteScratch};
use efd_core::observation::{LabeledObservation, Query};
use efd_core::Recognition;
use efd_ml::metrics::UNKNOWN_LABEL;
use efd_ml::taxonomist::TaxonomistConfig;
use efd_ml::{Classifier, GaussianNb, KNearestNeighbors, RandomForest, RandomForestParams};
use efd_telemetry::trace::MetricSelection;
use efd_telemetry::{Interval, MetricId};
use efd_workload::Dataset;

use crate::classifier::ExecutionClassifier;

/// Which ml family an [`MlBackend`] trains.
#[derive(Debug, Clone, Copy)]
pub enum MlFamily {
    /// Bagged random forest with Taxonomist's tree/threshold settings.
    Forest(TaxonomistConfig),
    /// Brute-force k-nearest-neighbors with `k` neighbors.
    Knn {
        /// Neighbor count.
        k: usize,
    },
    /// Gaussian naive Bayes.
    GaussianNb,
}

impl MlFamily {
    fn name(&self) -> &'static str {
        match self {
            MlFamily::Forest(_) => "forest",
            MlFamily::Knn { .. } => "knn",
            MlFamily::GaussianNb => "gaussian-nb",
        }
    }
}

/// A model fitted over everything learned so far.
struct Fitted {
    /// Sorted application names; class `c` is `classes[c]`.
    classes: Vec<String>,
    model: Box<dyn Classifier + Send + Sync>,
}

/// An ml classifier family behind the engine API.
///
/// [`Learn`] buffers each observation point as one single-feature row
/// (`[window mean]`) labeled with the observation's application;
/// [`Recognize`] classifies every query point and lets confident
/// predictions vote, Taxonomist-style — a prediction whose probability
/// falls below the confidence threshold abstains (the unknown-application
/// safeguard), and a query where every point abstains is
/// [`efd_core::Verdict::Unknown`].
///
/// Fitting is lazy: the model is (re)trained on first recognition after a
/// learn, so `learn_all` over a large corpus costs one fit, not N.
///
/// ```
/// use efd_core::engine::{Learn, Recognize};
/// use efd_core::{LabeledObservation, Query};
/// use efd_eval::engine::MlBackend;
/// use efd_telemetry::{AppLabel, Interval, MetricId};
///
/// let mut knn = MlBackend::knn(3, 0.5);
/// for (app, mean) in [("ft", 6020.0), ("cg", 8110.0)] {
///     knn.learn(&LabeledObservation {
///         label: AppLabel::new(app, "X"),
///         query: Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT,
///                                       &[mean; 4]),
///     });
/// }
/// let q = Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[8100.0; 4]);
/// assert_eq!(Recognize::recognize(&knn, &q).best(), Some("cg"));
/// ```
pub struct MlBackend {
    family: MlFamily,
    /// Below this per-point confidence a prediction abstains.
    confidence_threshold: f64,
    rows: Vec<Vec<f64>>,
    apps: Vec<String>,
    /// Fitted-model cache, invalidated by learning (interior mutability:
    /// `Recognize` takes `&self`).
    fitted: Mutex<Option<Arc<Fitted>>>,
}

impl std::fmt::Debug for MlBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MlBackend")
            .field("family", &self.family)
            .field("rows", &self.rows.len())
            .finish_non_exhaustive()
    }
}

impl MlBackend {
    /// A backend training `family`, abstaining below
    /// `confidence_threshold`.
    pub fn new(family: MlFamily, confidence_threshold: f64) -> Self {
        Self {
            family,
            confidence_threshold,
            rows: Vec::new(),
            apps: Vec::new(),
            fitted: Mutex::new(None),
        }
    }

    /// Random-forest backend with Taxonomist's configuration (the
    /// threshold comes from `cfg.confidence_threshold`).
    pub fn forest(cfg: TaxonomistConfig) -> Self {
        Self::new(MlFamily::Forest(cfg), cfg.confidence_threshold)
    }

    /// kNN backend (`k` neighbors, abstain below `confidence_threshold`).
    pub fn knn(k: usize, confidence_threshold: f64) -> Self {
        Self::new(MlFamily::Knn { k }, confidence_threshold)
    }

    /// Gaussian-naive-Bayes backend.
    pub fn gaussian_nb(confidence_threshold: f64) -> Self {
        Self::new(MlFamily::GaussianNb, confidence_threshold)
    }

    /// Family display name (`forest` / `knn` / `gaussian-nb`).
    pub fn family_name(&self) -> &'static str {
        self.family.name()
    }

    /// Training rows buffered so far.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Fit (or reuse) the model over everything learned so far.
    fn fitted(&self) -> Option<Arc<Fitted>> {
        if self.rows.is_empty() {
            return None;
        }
        let mut guard = self.fitted.lock().expect("fitted cache poisoned");
        if let Some(f) = guard.as_ref() {
            return Some(Arc::clone(f));
        }
        let mut classes = self.apps.clone();
        classes.sort();
        classes.dedup();
        let y: Vec<usize> = self
            .apps
            .iter()
            .map(|a| classes.binary_search(a).expect("class interned"))
            .collect();
        let model: Box<dyn Classifier + Send + Sync> = match self.family {
            MlFamily::Forest(cfg) => Box::new(RandomForest::fit(
                RandomForestParams {
                    n_trees: cfg.n_trees,
                    tree: efd_ml::TreeParams {
                        max_depth: cfg.max_depth,
                        ..efd_ml::TreeParams::default()
                    },
                    seed: cfg.seed,
                    bootstrap: true,
                },
                &self.rows,
                &y,
                classes.len(),
            )),
            MlFamily::Knn { k } => Box::new(KNearestNeighbors::fit(
                k,
                self.rows.clone(),
                y,
                classes.len(),
            )),
            MlFamily::GaussianNb => Box::new(GaussianNb::fit(&self.rows, &y, classes.len())),
        };
        let fitted = Arc::new(Fitted { classes, model });
        *guard = Some(Arc::clone(&fitted));
        Some(fitted)
    }
}

impl Learn for MlBackend {
    fn learn(&mut self, obs: &LabeledObservation) {
        for p in &obs.query.points {
            if !p.mean.is_finite() {
                continue;
            }
            self.rows.push(vec![p.mean]);
            self.apps.push(obs.label.app.clone());
        }
        // Invalidate the fitted model; the next recognition refits.
        *self.fitted.get_mut().expect("fitted cache poisoned") = None;
    }
}

impl Recognize for MlBackend {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        let total = query.points.len();
        let Some(fitted) = self.fitted() else {
            return scratch.finish(&[], &[], 0, total);
        };
        scratch.ensure(0, fitted.classes.len());
        let mut matched = 0usize;
        for p in &query.points {
            if !p.mean.is_finite() {
                continue;
            }
            let proba = fitted.model.predict_proba(&[p.mean]);
            let (best, conf) = proba
                .iter()
                .enumerate()
                .fold((0usize, 0.0f64), |acc, (i, &v)| {
                    if v > acc.1 {
                        (i, v)
                    } else {
                        acc
                    }
                });
            if conf < self.confidence_threshold {
                continue; // abstain: the unknown-application safeguard
            }
            matched += 1;
            scratch.vote_app(AppNameId::from_index(best));
        }
        scratch.finish(&[], &fitted.classes, matched, total)
    }
}

/// Any engine behind the evaluation harness.
///
/// Adapts a `Learn + Recognize` backend into an [`ExecutionClassifier`]:
/// `fit` rebuilds a fresh engine (via the factory) and feeds it the
/// training runs' window means over one metric/interval — the same data
/// diet as [`crate::EfdClassifier`] — and `predict_batch` recognizes each
/// test run, scoring [`Recognition::best`] (or [`UNKNOWN_LABEL`]).
/// Per-run means are cached, since experiments refit dozens of times on
/// subsets of the same runs.
///
/// ```no_run
/// use efd_core::{EfdDictionary, RoundingDepth};
/// use efd_eval::engine::{EngineClassifier, MlBackend};
/// use efd_eval::{run_experiment, EvalOptions, ExperimentKind};
/// use efd_telemetry::MetricId;
/// # let dataset: efd_workload::Dataset = unimplemented!();
///
/// // The EFD and a kNN classifier under the *same* experiment harness:
/// let mut efd = EngineClassifier::new("EFD(engine)", MetricId(0), || {
///     EfdDictionary::new(RoundingDepth::new(2))
/// });
/// let mut knn = EngineClassifier::new("kNN(engine)", MetricId(0), || {
///     MlBackend::knn(5, 0.5)
/// });
/// for c in [&mut efd as &mut dyn efd_eval::ExecutionClassifier, &mut knn] {
///     let r = run_experiment(ExperimentKind::NormalFold, c, &dataset,
///                            &EvalOptions::default());
///     println!("{}: {:.3}", r.classifier, r.mean_f1);
/// }
/// ```
pub struct EngineClassifier<E, F> {
    display_name: String,
    metric: MetricId,
    interval: Interval,
    factory: F,
    engine: Option<E>,
    /// Cached per-run node means: `means[run][node]`.
    means: OnceLock<Vec<Vec<f64>>>,
    dataset_fingerprint: OnceLock<u64>,
}

impl<E, F> EngineClassifier<E, F>
where
    E: Learn + Recognize,
    F: Fn() -> E,
{
    /// Classifier over `metric` with the paper's `[60:120]` window; each
    /// `fit` builds a fresh engine from `factory`.
    pub fn new(name: impl Into<String>, metric: MetricId, factory: F) -> Self {
        Self::with_interval(name, metric, Interval::PAPER_DEFAULT, factory)
    }

    /// [`EngineClassifier::new`] with a custom window.
    pub fn with_interval(
        name: impl Into<String>,
        metric: MetricId,
        interval: Interval,
        factory: F,
    ) -> Self {
        Self {
            display_name: name.into(),
            metric,
            interval,
            factory,
            engine: None,
            means: OnceLock::new(),
            dataset_fingerprint: OnceLock::new(),
        }
    }

    /// The engine of the most recent [`ExecutionClassifier::fit`].
    pub fn engine(&self) -> Option<&E> {
        self.engine.as_ref()
    }

    fn means_for(&self, dataset: &Dataset) -> &Vec<Vec<f64>> {
        let fp = self
            .dataset_fingerprint
            .get_or_init(|| dataset.spec().master_seed ^ dataset.len() as u64);
        assert_eq!(
            *fp,
            dataset.spec().master_seed ^ dataset.len() as u64,
            "classifier reused across datasets"
        );
        self.means.get_or_init(|| {
            let sel = MetricSelection::single(self.metric);
            dataset
                .window_means_all(&sel, self.interval)
                .into_iter()
                .map(|per_node| per_node.into_iter().map(|m| m[0]).collect())
                .collect()
        })
    }
}

impl<E, F> ExecutionClassifier for EngineClassifier<E, F>
where
    E: Learn + Recognize,
    F: Fn() -> E,
{
    fn name(&self) -> &str {
        &self.display_name
    }

    fn fit(&mut self, dataset: &Dataset, train_idx: &[usize]) {
        let means = self.means_for(dataset);
        let labels = dataset.labels();
        let observations: Vec<LabeledObservation> = train_idx
            .iter()
            .map(|&i| LabeledObservation {
                label: labels[i].clone(),
                query: Query::from_node_means(self.metric, self.interval, &means[i]),
            })
            .collect();
        let mut engine = (self.factory)();
        engine.learn_all(&observations);
        self.engine = Some(engine);
    }

    fn predict_batch(&self, dataset: &Dataset, test_idx: &[usize]) -> Vec<String> {
        let engine = self.engine.as_ref().expect("fit() before predict");
        let means = self.means_for(dataset);
        let mut scratch = VoteScratch::default();
        test_idx
            .iter()
            .map(|&i| {
                let q = Query::from_node_means(self.metric, self.interval, &means[i]);
                engine
                    .recognize_into(&q, &mut scratch)
                    .best()
                    .map(str::to_string)
                    .unwrap_or_else(|| UNKNOWN_LABEL.to_string())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_core::{EfdDictionary, RoundingDepth, Verdict};
    use efd_telemetry::catalog::small_catalog;
    use efd_telemetry::AppLabel;
    use efd_workload::{DatasetSpec, SubsetKind};

    const M: MetricId = MetricId(0);
    const W: Interval = Interval::PAPER_DEFAULT;

    fn obs(app: &str, mean: f64) -> LabeledObservation {
        LabeledObservation {
            label: AppLabel::new(app, "X"),
            query: Query::from_node_means(M, W, &[mean; 4]),
        }
    }

    fn backends() -> Vec<MlBackend> {
        vec![
            MlBackend::forest(TaxonomistConfig {
                n_trees: 10,
                ..Default::default()
            }),
            MlBackend::knn(3, 0.5),
            MlBackend::gaussian_nb(0.5),
        ]
    }

    #[test]
    fn every_family_learns_and_recognizes() {
        for mut b in backends() {
            for (app, mean) in [("ft", 6020.0), ("cg", 8110.0), ("lu", 4320.0)] {
                b.learn(&obs(app, mean));
            }
            for (app, mean) in [("ft", 6015.0), ("cg", 8100.0), ("lu", 4310.0)] {
                let q = Query::from_node_means(M, W, &[mean; 4]);
                let r = Recognize::recognize(&b, &q);
                assert_eq!(r.best(), Some(app), "{}", b.family_name());
                assert_eq!(r.total_points, 4);
                assert_eq!(r.matched_points, 4, "{}", b.family_name());
            }
        }
    }

    #[test]
    fn unfitted_backend_answers_unknown() {
        let b = MlBackend::knn(1, 0.5);
        let r = Recognize::recognize(&b, &Query::from_node_means(M, W, &[1.0; 2]));
        assert_eq!(r.verdict, Verdict::Unknown);
        assert_eq!(r.total_points, 2);
    }

    #[test]
    fn learning_invalidates_the_fitted_model() {
        let mut b = MlBackend::knn(1, 0.5);
        b.learn(&obs("ft", 6020.0));
        let q = Query::from_node_means(M, W, &[9000.0; 4]);
        assert_eq!(Recognize::recognize(&b, &q).best(), Some("ft"));
        b.learn(&obs("hpcg", 9000.0));
        assert_eq!(Recognize::recognize(&b, &q).best(), Some("hpcg"));
    }

    #[test]
    fn low_confidence_abstains_into_unknown() {
        // Gaussian NB halfway between two symmetric classes is ~50/50 —
        // below the 90% threshold every point abstains (the Taxonomist
        // unknown-application safeguard, ported to the engine API).
        let mut b = MlBackend::gaussian_nb(0.9);
        b.learn(&obs("ft", 6000.0));
        b.learn(&obs("ft", 6040.0));
        b.learn(&obs("cg", 8100.0));
        b.learn(&obs("cg", 8140.0));
        let r = Recognize::recognize(&b, &Query::from_node_means(M, W, &[7070.0; 4]));
        assert_eq!(r.verdict, Verdict::Unknown, "votes: {:?}", r.app_votes);
        assert_eq!(r.matched_points, 0);
        // Near a learned level the same backend stays confident.
        let r = Recognize::recognize(&b, &Query::from_node_means(M, W, &[6010.0; 4]));
        assert_eq!(r.best(), Some("ft"));
    }

    #[test]
    fn engine_classifier_runs_efd_and_ml_under_eval_harness() {
        let spec = DatasetSpec {
            subset: SubsetKind::Public,
            ..DatasetSpec::default()
        };
        let d = Dataset::with_catalog(spec, small_catalog());
        let metric = d.catalog().id("nr_mapped_vmstat").unwrap();
        let train: Vec<usize> = (0..d.len()).filter(|i| i % 5 != 0).collect();
        let test: Vec<usize> = (0..d.len()).filter(|i| i % 5 == 0).collect();
        let labels = d.labels();

        let mut efd = EngineClassifier::new("EFD(engine)", metric, || {
            EfdDictionary::new(RoundingDepth::new(3))
        });
        let mut knn = EngineClassifier::new("kNN(engine)", metric, || MlBackend::knn(5, 0.5));
        let classifiers: [&mut dyn ExecutionClassifier; 2] = [&mut efd, &mut knn];
        for c in classifiers {
            c.fit(&d, &train);
            let preds = c.predict_batch(&d, &test);
            let correct = test
                .iter()
                .zip(&preds)
                .filter(|(&i, p)| &labels[i].app == *p)
                .count();
            assert!(
                correct * 10 >= test.len() * 8,
                "{}: {correct}/{}",
                c.name(),
                test.len()
            );
        }
    }
}
