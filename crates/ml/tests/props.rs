//! Property-based tests for classification metrics and models.

use proptest::prelude::*;

use efd_ml::metrics::evaluate;
use efd_ml::tree::{DecisionTree, TreeParams};
use efd_ml::Classifier;

fn arb_labels() -> impl Strategy<Value = (Vec<String>, Vec<String>)> {
    let class = prop::sample::select(vec!["a", "b", "c", "unknown"]);
    prop::collection::vec((class.clone(), class), 1..100).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(t, p)| (t.to_string(), p.to_string()))
            .unzip()
    })
}

proptest! {
    /// All scores live in [0, 1]; accuracy equals micro F1.
    #[test]
    fn scores_bounded((truth, pred) in arb_labels()) {
        let r = evaluate(&truth, &pred);
        for x in [r.macro_f1(), r.macro_f1_present(), r.weighted_f1(), r.accuracy] {
            prop_assert!((0.0..=1.0).contains(&x), "{x}");
        }
        prop_assert_eq!(r.micro_f1(), r.accuracy);
        for c in 0..r.classes.len() {
            prop_assert!((0.0..=1.0).contains(&r.precision[c]));
            prop_assert!((0.0..=1.0).contains(&r.recall[c]));
            prop_assert!((0.0..=1.0).contains(&r.f1[c]));
        }
    }

    /// Perfect predictions score 1.0 everywhere.
    #[test]
    fn perfect_is_one(truth in prop::collection::vec("[abc]", 1..50)) {
        let r = evaluate(&truth, &truth);
        prop_assert_eq!(r.accuracy, 1.0);
        prop_assert_eq!(r.macro_f1(), 1.0);
        prop_assert_eq!(r.macro_f1_present(), 1.0);
        prop_assert_eq!(r.weighted_f1(), 1.0);
    }

    /// Evaluation is invariant to sample order.
    #[test]
    fn order_invariant((truth, pred) in arb_labels(), seed in any::<u64>()) {
        let r1 = evaluate(&truth, &pred);
        // Deterministic shuffle.
        let mut idx: Vec<usize> = (0..truth.len()).collect();
        let mut rng = efd_util::SplitMix64::new(seed);
        for i in (1..idx.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            idx.swap(i, j);
        }
        let truth2: Vec<String> = idx.iter().map(|&i| truth[i].clone()).collect();
        let pred2: Vec<String> = idx.iter().map(|&i| pred[i].clone()).collect();
        let r2 = evaluate(&truth2, &pred2);
        prop_assert_eq!(r1.accuracy, r2.accuracy);
        prop_assert!((r1.macro_f1() - r2.macro_f1()).abs() < 1e-12);
        prop_assert!((r1.weighted_f1() - r2.weighted_f1()).abs() < 1e-12);
    }

    /// Confusion-matrix row sums equal class supports; total equals n.
    #[test]
    fn confusion_sums((truth, pred) in arb_labels()) {
        let r = evaluate(&truth, &pred);
        let total: usize = r.confusion.iter().flatten().sum();
        prop_assert_eq!(total, truth.len());
        for (row, &support) in r.confusion.iter().zip(&r.support) {
            prop_assert_eq!(row.iter().sum::<usize>(), support);
        }
    }

    /// macro over present classes ≥ macro over the union (predicted-only
    /// classes can only drag the union average down).
    #[test]
    fn present_macro_dominates_union((truth, pred) in arb_labels()) {
        let r = evaluate(&truth, &pred);
        prop_assert!(r.macro_f1_present() >= r.macro_f1() - 1e-12);
    }

    /// A tree trained on data predicts in-range class indices with a
    /// proper probability distribution.
    #[test]
    fn tree_probabilities_are_distributions(
        rows in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 3..=3), 4..60),
        seed in any::<u64>(),
    ) {
        let y: Vec<usize> = rows.iter().map(|r| (r[0] > 0.0) as usize).collect();
        prop_assume!(y.contains(&0) && y.contains(&1));
        let tree = DecisionTree::fit(
            TreeParams { seed, ..TreeParams::default() },
            &rows,
            &y,
            2,
        );
        for row in &rows {
            let p = tree.predict_proba(row);
            prop_assert_eq!(p.len(), 2);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(tree.predict(row) < 2);
        }
    }

    /// Trees are deterministic functions of (data, params).
    #[test]
    fn tree_deterministic(
        rows in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 2..=2), 6..30),
        seed in any::<u64>(),
    ) {
        let y: Vec<usize> = rows.iter().map(|r| (r[1] > 0.0) as usize).collect();
        let params = TreeParams { max_features: Some(1), seed, ..TreeParams::default() };
        let a = DecisionTree::fit(params, &rows, &y, 2);
        let b = DecisionTree::fit(params, &rows, &y, 2);
        for row in &rows {
            prop_assert_eq!(a.predict(row), b.predict(row));
        }
    }
}
