//! Bagged random forests (the Taxonomist's reported best classifier).
//!
//! Standard Breiman recipe: `n_trees` CART trees, each on a bootstrap
//! sample with √width feature subsampling per split, probabilities
//! averaged. Training parallelizes over trees via
//! [`efd_util::parallel_map`] with per-tree derived seeds, so results are
//! identical regardless of thread count.

use efd_util::parallel_map;
use efd_util::rng::{derive_seed, SplitMix64};

use crate::tree::{DecisionTree, TreeParams};
use crate::Classifier;

/// Forest parameters.
#[derive(Debug, Clone, Copy)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters; `max_features: None` here means √width.
    pub tree: TreeParams,
    /// Master seed (trees derive their own).
    pub seed: u64,
    /// Draw bootstrap samples (true) or train every tree on all rows.
    pub bootstrap: bool,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        Self {
            n_trees: 100,
            tree: TreeParams::default(),
            seed: 0,
            bootstrap: true,
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Train the forest (parallel over trees).
    pub fn fit(params: RandomForestParams, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Self {
        assert!(params.n_trees >= 1);
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let width = x[0].len();
        // Breiman default: sqrt(d) features per split.
        let max_features = params
            .tree
            .max_features
            .unwrap_or_else(|| (width as f64).sqrt().ceil() as usize)
            .clamp(1, width);

        let tree_ids: Vec<usize> = (0..params.n_trees).collect();
        let trees = parallel_map(&tree_ids, |&t| {
            let seed = derive_seed(params.seed, &[t as u64, 0xF0_4E57]);
            let indices: Vec<usize> = if params.bootstrap {
                let mut rng = SplitMix64::new(seed);
                (0..x.len())
                    .map(|_| rng.next_below(x.len() as u64) as usize)
                    .collect()
            } else {
                (0..x.len()).collect()
            };
            let tp = TreeParams {
                max_features: Some(max_features),
                seed: derive_seed(seed, &[1]),
                ..params.tree
            };
            DecisionTree::fit_on(tp, x, y, n_classes, indices)
        });
        Self { trees, n_classes }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

impl Classifier for RandomForest {
    fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict_proba(row)) {
                *a += p;
            }
        }
        let n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_util::rng::SplitMix64;

    fn blobs(n_per: usize, seed: u64, spread: f64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [(0.0, 0.0, 5.0), (6.0, 0.0, -5.0), (0.0, 6.0, 0.0)];
        let mut rng = SplitMix64::new(seed);
        let (mut x, mut y) = (Vec::new(), Vec::new());
        for (c, &(cx, cy, cz)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                x.push(vec![
                    cx + rng.next_gaussian() * spread,
                    cy + rng.next_gaussian() * spread,
                    cz + rng.next_gaussian() * spread,
                ]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn forest_beats_chance_on_noisy_blobs() {
        let (x, y) = blobs(60, 1, 2.0);
        let forest = RandomForest::fit(
            RandomForestParams {
                n_trees: 30,
                ..Default::default()
            },
            &x,
            &y,
            3,
        );
        let (xt, yt) = blobs(40, 2, 2.0);
        let acc = xt
            .iter()
            .zip(&yt)
            .filter(|(xi, &yi)| forest.predict(xi) == yi)
            .count() as f64
            / xt.len() as f64;
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn proba_is_a_distribution() {
        let (x, y) = blobs(20, 3, 1.0);
        let forest = RandomForest::fit(
            RandomForestParams {
                n_trees: 10,
                ..Default::default()
            },
            &x,
            &y,
            3,
        );
        let p = forest.predict_proba(&x[0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_regardless_of_threads() {
        let (x, y) = blobs(30, 4, 1.5);
        let params = RandomForestParams {
            n_trees: 16,
            seed: 99,
            ..Default::default()
        };
        let a = RandomForest::fit(params, &x, &y, 3);
        // Force single-threaded training for the second fit.
        std::env::set_var("EFD_THREADS", "1");
        let b = RandomForest::fit(params, &x, &y, 3);
        std::env::remove_var("EFD_THREADS");
        for xi in &x {
            assert_eq!(a.predict_proba(xi), b.predict_proba(xi));
        }
    }

    #[test]
    fn confidence_reflects_ambiguity() {
        let (x, y) = blobs(60, 5, 1.0);
        let forest = RandomForest::fit(
            RandomForestParams {
                n_trees: 40,
                ..Default::default()
            },
            &x,
            &y,
            3,
        );
        // Deep inside blob 0: highly confident.
        let p_in = forest.predict_proba(&[0.0, 0.0, 5.0]);
        assert!(p_in[0] > 0.9, "{p_in:?}");
        // Far outside every blob: the forest extrapolates to *some* leaf —
        // but between two blob centers confidence must drop.
        let p_mid = forest.predict_proba(&[3.0, 0.0, 0.0]);
        let max_mid = p_mid.iter().cloned().fold(0.0, f64::max);
        assert!(max_mid < 0.95, "{p_mid:?}");
    }

    #[test]
    fn no_bootstrap_mode() {
        let (x, y) = blobs(20, 6, 0.5);
        let forest = RandomForest::fit(
            RandomForestParams {
                n_trees: 5,
                bootstrap: false,
                ..Default::default()
            },
            &x,
            &y,
            3,
        );
        assert_eq!(forest.n_trees(), 5);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| forest.predict(xi) == yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.95);
    }
}
