//! Brute-force k-nearest-neighbors.
//!
//! One of the classifier families Taxonomist evaluated. Distances are
//! Euclidean; callers should z-score features first ([`crate::Scaler`]) —
//! raw telemetry magnitudes span nine orders of magnitude and would let a
//! single meminfo column dominate.

use crate::Classifier;

/// A fitted kNN model (stores the training set).
#[derive(Debug, Clone)]
pub struct KNearestNeighbors {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
    n_classes: usize,
}

impl KNearestNeighbors {
    /// "Fit" = store the training data.
    pub fn fit(k: usize, x: Vec<Vec<f64>>, y: Vec<usize>, n_classes: usize) -> Self {
        assert!(k >= 1);
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        Self { k, x, y, n_classes }
    }

    fn neighbors(&self, row: &[f64]) -> Vec<(f64, usize)> {
        let mut d: Vec<(f64, usize)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(xi, &yi)| {
                let dist: f64 = xi
                    .iter()
                    .zip(row)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (dist, yi)
            })
            .collect();
        let k = self.k.min(d.len());
        d.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).unwrap());
        d.truncate(k);
        d
    }
}

impl Classifier for KNearestNeighbors {
    fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut votes = vec![0.0; self.n_classes];
        let nn = self.neighbors(row);
        for &(_, c) in &nn {
            votes[c] += 1.0;
        }
        let total: f64 = votes.iter().sum();
        for v in &mut votes {
            *v /= total;
        }
        votes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> (Vec<Vec<f64>>, Vec<usize>) {
        // class 0 near origin, class 1 near (10, 10)
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..5 {
            x.push(vec![i as f64 * 0.1, i as f64 * 0.1]);
            y.push(0);
            x.push(vec![10.0 + i as f64 * 0.1, 10.0]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn nearest_blob_wins() {
        let (x, y) = grid();
        let knn = KNearestNeighbors::fit(3, x, y, 2);
        assert_eq!(knn.predict(&[0.2, 0.0]), 0);
        assert_eq!(knn.predict(&[9.8, 10.1]), 1);
    }

    #[test]
    fn proba_counts_votes() {
        let (x, y) = grid();
        let knn = KNearestNeighbors::fit(4, x, y, 2);
        let p = knn.predict_proba(&[0.0, 0.0]);
        assert_eq!(p, vec![1.0, 0.0]);
        let p = knn.predict_proba(&[5.0, 5.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let knn = KNearestNeighbors::fit(10, x, y, 2);
        let p = knn.predict_proba(&[0.1]);
        assert_eq!(p, vec![0.5, 0.5]);
    }

    #[test]
    fn exact_match_dominates_k1() {
        let (x, y) = grid();
        let knn = KNearestNeighbors::fit(1, x.clone(), y.clone(), 2);
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(knn.predict(xi), yi);
        }
    }
}
