//! From-scratch ML baseline (Taxonomist-style) and classification metrics.
//!
//! The paper compares the EFD against **Taxonomist** (Ates et al.,
//! Euro-Par 2018): statistical features over *all* 562 metrics and the
//! *whole* execution window, fed to supervised classifiers, with a
//! confidence threshold for unknown-application detection. No ML crate in
//! our vetted set provides this, so it is built here from scratch:
//!
//! * [`metrics`] — confusion matrix, precision/recall/F1 (macro / micro /
//!   weighted, scikit-learn `zero_division=0` semantics). These implement
//!   the F-scores of the paper's Figure 2 and Table 3.
//! * [`features`] — streaming statistical feature extraction (11 stats per
//!   metric per node) and z-score scaling.
//! * [`tree`] — CART decision trees (Gini), with optional random-threshold
//!   ("extra trees") splitting.
//! * [`forest`] — bagged random forests with parallel training.
//! * [`knn`] — brute-force k-nearest-neighbors.
//! * [`naive_bayes`] — Gaussian naive Bayes.
//! * [`taxonomist`] — the assembled baseline: per-node classification with
//!   confidence thresholding, aggregated to per-execution verdicts.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod features;
pub mod forest;
pub mod knn;
pub mod metrics;
pub mod naive_bayes;
pub mod taxonomist;
pub mod tree;

pub use features::{FeatureMatrix, Scaler, STAT_NAMES};
pub use forest::{RandomForest, RandomForestParams};
pub use knn::KNearestNeighbors;
pub use metrics::{evaluate, ClassificationReport, UNKNOWN_LABEL};
pub use naive_bayes::GaussianNb;
pub use taxonomist::{Taxonomist, TaxonomistConfig};
pub use tree::{DecisionTree, TreeParams};

/// A trained multi-class classifier over dense f64 feature rows.
pub trait Classifier {
    /// Class-probability estimates for one row (sums to 1 unless the model
    /// is degenerate).
    fn predict_proba(&self, row: &[f64]) -> Vec<f64>;

    /// Hard prediction: argmax of probabilities (lowest index wins ties).
    fn predict(&self, row: &[f64]) -> usize {
        let p = self.predict_proba(row);
        let mut best = 0usize;
        for i in 1..p.len() {
            if p[i] > p[best] {
                best = i;
            }
        }
        best
    }
}
