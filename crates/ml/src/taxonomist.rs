//! The assembled Taxonomist-style baseline.
//!
//! Pipeline per the paper's comparator (Ates et al. 2018): statistical
//! features of **all** metrics over the **whole** execution, per node; a
//! supervised classifier (random forest, their best performer); per-node
//! confidence thresholding for unknown detection ("Taxonomist evaluates
//! and labels individual nodes, whereas the EFD evaluates the entire
//! execution" — paper §5); and a majority vote to lift node labels to an
//! execution verdict, so both systems can be scored on the same
//! per-execution ground truth.

use crate::features::FeatureMatrix;
use crate::forest::{RandomForest, RandomForestParams};
use crate::metrics::UNKNOWN_LABEL;
use crate::tree::TreeParams;
use crate::Classifier;

/// Baseline configuration.
#[derive(Debug, Clone, Copy)]
pub struct TaxonomistConfig {
    /// Trees in the forest.
    pub n_trees: usize,
    /// Max tree depth.
    pub max_depth: usize,
    /// A node prediction below this confidence becomes
    /// [`UNKNOWN_LABEL`] (Taxonomist's unknown-application detection).
    pub confidence_threshold: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TaxonomistConfig {
    fn default() -> Self {
        Self {
            n_trees: 100,
            max_depth: 24,
            confidence_threshold: 0.55,
            seed: 0x7A40,
        }
    }
}

/// A trained Taxonomist baseline.
#[derive(Debug, Clone)]
pub struct Taxonomist {
    cfg: TaxonomistConfig,
    classes: Vec<String>,
    forest: RandomForest,
}

impl Taxonomist {
    /// Train on node-labeled features.
    pub fn fit(cfg: TaxonomistConfig, features: &FeatureMatrix) -> Self {
        assert!(!features.is_empty(), "empty training set");
        let mut classes: Vec<String> = features.labels.clone();
        classes.sort();
        classes.dedup();
        let y: Vec<usize> = features
            .labels
            .iter()
            .map(|l| classes.iter().position(|c| c == l).unwrap())
            .collect();
        let forest = RandomForest::fit(
            RandomForestParams {
                n_trees: cfg.n_trees,
                tree: TreeParams {
                    max_depth: cfg.max_depth,
                    ..TreeParams::default()
                },
                seed: cfg.seed,
                bootstrap: true,
            },
            &features.rows,
            &y,
            classes.len(),
        );
        Self {
            cfg,
            classes,
            forest,
        }
    }

    /// Known class names (sorted).
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Classify one node sample: `(label-or-unknown, confidence)`.
    pub fn predict_node(&self, row: &[f64]) -> (String, f64) {
        let p = self.forest.predict_proba(row);
        let (best, conf) = p
            .iter()
            .enumerate()
            .fold((0usize, 0.0f64), |acc, (i, &v)| {
                if v > acc.1 {
                    (i, v)
                } else {
                    acc
                }
            });
        if conf < self.cfg.confidence_threshold {
            (UNKNOWN_LABEL.to_string(), conf)
        } else {
            (self.classes[best].clone(), conf)
        }
    }

    /// Lift node predictions to an execution verdict: majority vote over
    /// node labels; ties broken by total confidence.
    pub fn predict_execution(&self, rows: &[Vec<f64>]) -> String {
        assert!(!rows.is_empty(), "execution with no node rows");
        let mut tally: Vec<(String, usize, f64)> = Vec::new();
        for row in rows {
            let (label, conf) = self.predict_node(row);
            match tally.iter_mut().find(|(l, _, _)| *l == label) {
                Some((_, n, c)) => {
                    *n += 1;
                    *c += conf;
                }
                None => tally.push((label, 1, conf)),
            }
        }
        tally
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(a.2.partial_cmp(&b.2).unwrap()))
            .map(|(l, _, _)| l)
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_util::rng::SplitMix64;

    /// Synthetic node features: 3 apps with distinct feature centers,
    /// 4 nodes per execution.
    fn node_features(execs_per_app: usize, seed: u64) -> FeatureMatrix {
        let mut rng = SplitMix64::new(seed);
        let mut fm = FeatureMatrix::default();
        let mut exec = 0usize;
        for (app, center) in [("ft", 0.0), ("sp", 8.0), ("lu", -8.0)] {
            for _ in 0..execs_per_app {
                for _node in 0..4 {
                    fm.rows.push(vec![
                        center + rng.next_gaussian(),
                        center * 2.0 + rng.next_gaussian(),
                        rng.next_gaussian(),
                    ]);
                    fm.labels.push(app.to_string());
                    fm.exec_of_row.push(exec);
                }
                exec += 1;
            }
        }
        fm
    }

    fn quick_cfg() -> TaxonomistConfig {
        TaxonomistConfig {
            n_trees: 15,
            ..Default::default()
        }
    }

    #[test]
    fn recognizes_known_apps() {
        let train = node_features(10, 1);
        let model = Taxonomist::fit(quick_cfg(), &train);
        assert_eq!(model.classes(), &["ft", "lu", "sp"]);

        let test = node_features(3, 2);
        let mut correct = 0;
        let mut total = 0;
        for exec in 0..9 {
            let rows: Vec<Vec<f64>> = test
                .rows_of_exec(exec)
                .into_iter()
                .map(|i| test.rows[i].clone())
                .collect();
            if rows.is_empty() {
                continue;
            }
            let truth = &test.labels[test.rows_of_exec(exec)[0]];
            if &model.predict_execution(&rows) == truth {
                correct += 1;
            }
            total += 1;
        }
        assert!(correct as f64 / total as f64 > 0.9, "{correct}/{total}");
    }

    #[test]
    fn low_confidence_becomes_unknown() {
        let train = node_features(10, 3);
        let model = Taxonomist::fit(
            TaxonomistConfig {
                n_trees: 25,
                confidence_threshold: 0.9,
                ..Default::default()
            },
            &train,
        );
        // A point between ft (0) and sp (8) centers: low confidence.
        let (label, conf) = model.predict_node(&[4.0, 8.0, 0.0]);
        assert_eq!(label, UNKNOWN_LABEL, "confidence was {conf}");
    }

    #[test]
    fn execution_majority_overrides_one_bad_node() {
        let train = node_features(10, 4);
        let model = Taxonomist::fit(quick_cfg(), &train);
        let rows = vec![
            vec![0.1, 0.0, 0.0],  // ft-ish
            vec![-0.2, 0.1, 0.0], // ft-ish
            vec![0.0, -0.1, 0.0], // ft-ish
            vec![8.0, 16.0, 0.0], // sp-ish straggler
        ];
        assert_eq!(model.predict_execution(&rows), "ft");
    }

    #[test]
    fn deterministic_per_seed() {
        let train = node_features(5, 5);
        let a = Taxonomist::fit(quick_cfg(), &train);
        let b = Taxonomist::fit(quick_cfg(), &train);
        let probe = vec![0.0, 0.0, 0.0];
        assert_eq!(a.predict_node(&probe), b.predict_node(&probe));
    }
}
