//! Classification metrics with scikit-learn semantics.
//!
//! The paper: "F-score and cross-fold validation are implemented using the
//! sci-kit learn library." This module reproduces `sklearn.metrics`
//! definitions exactly (verified against hand-computed sklearn outputs in
//! the tests):
//!
//! * class set = sorted union of truth and prediction labels,
//! * per-class precision/recall/F1 with `zero_division=0`,
//! * `macro` = unweighted class mean, `weighted` = support-weighted,
//!   `micro` = global counts,
//! * "unknown" ([`UNKNOWN_LABEL`]) is an ordinary class label, which is
//!   how the soft/hard-unknown experiments score "no matching fingerprints"
//!   as correct for removed applications.

use efd_util::FxHashMap;

/// The pseudo-class for "no matching fingerprints" / "below confidence
/// threshold".
pub const UNKNOWN_LABEL: &str = "unknown";

/// Per-class and aggregate classification scores.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationReport {
    /// Sorted class names (union of truth and predictions).
    pub classes: Vec<String>,
    /// `confusion[t][p]` = #samples of true class `t` predicted as `p`
    /// (indices into [`ClassificationReport::classes`]).
    pub confusion: Vec<Vec<usize>>,
    /// Per-class precision.
    pub precision: Vec<f64>,
    /// Per-class recall.
    pub recall: Vec<f64>,
    /// Per-class F1.
    pub f1: Vec<f64>,
    /// Per-class support (#true samples).
    pub support: Vec<usize>,
    /// Overall accuracy.
    pub accuracy: f64,
}

impl ClassificationReport {
    /// Unweighted mean F1 over all classes in the truth∪prediction union
    /// (sklearn `average='macro'` with `labels=None`).
    pub fn macro_f1(&self) -> f64 {
        mean(&self.f1)
    }

    /// Unweighted mean F1 over classes *present in the ground truth*
    /// (sklearn `average='macro'` with `labels=<the known label set>`,
    /// which is how the paper's evaluation fixes its class list to the
    /// applications under test). Spurious predicted-only labels still
    /// cost precision of the real classes but do not enter the average
    /// as zero-F pseudo-classes.
    pub fn macro_f1_present(&self) -> f64 {
        let scores: Vec<f64> = self
            .f1
            .iter()
            .zip(&self.support)
            .filter(|(_, &s)| s > 0)
            .map(|(f, _)| *f)
            .collect();
        mean(&scores)
    }

    /// Support-weighted mean F1 (sklearn `average='weighted'`).
    pub fn weighted_f1(&self) -> f64 {
        let total: usize = self.support.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.f1
            .iter()
            .zip(&self.support)
            .map(|(f, &s)| f * s as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Micro-averaged F1 (= accuracy for single-label classification).
    pub fn micro_f1(&self) -> f64 {
        self.accuracy
    }

    /// Unweighted mean precision over classes.
    pub fn macro_precision(&self) -> f64 {
        mean(&self.precision)
    }

    /// Unweighted mean recall over classes.
    pub fn macro_recall(&self) -> f64 {
        mean(&self.recall)
    }

    /// F1 of one class by name.
    pub fn class_f1(&self, class: &str) -> Option<f64> {
        self.classes
            .iter()
            .position(|c| c == class)
            .map(|i| self.f1[i])
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Score predictions against ground truth (both as label strings; use
/// [`UNKNOWN_LABEL`] for unknown predictions/expectations).
///
/// Panics if lengths differ or inputs are empty.
pub fn evaluate<T: AsRef<str>, P: AsRef<str>>(truth: &[T], pred: &[P]) -> ClassificationReport {
    assert_eq!(truth.len(), pred.len(), "truth/pred length mismatch");
    assert!(!truth.is_empty(), "nothing to evaluate");

    let mut classes: Vec<String> = truth
        .iter()
        .map(|t| t.as_ref().to_string())
        .chain(pred.iter().map(|p| p.as_ref().to_string()))
        .collect();
    classes.sort();
    classes.dedup();
    let index: FxHashMap<&str, usize> = classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_str(), i))
        .collect();

    let k = classes.len();
    let mut confusion = vec![vec![0usize; k]; k];
    let mut correct = 0usize;
    for (t, p) in truth.iter().zip(pred) {
        let ti = index[t.as_ref()];
        let pi = index[p.as_ref()];
        confusion[ti][pi] += 1;
        if ti == pi {
            correct += 1;
        }
    }

    let mut precision = vec![0.0; k];
    let mut recall = vec![0.0; k];
    let mut f1 = vec![0.0; k];
    let mut support = vec![0usize; k];
    for c in 0..k {
        let tp = confusion[c][c];
        let pred_c: usize = (0..k).map(|t| confusion[t][c]).sum();
        let true_c: usize = confusion[c].iter().sum();
        support[c] = true_c;
        precision[c] = if pred_c == 0 { 0.0 } else { tp as f64 / pred_c as f64 };
        recall[c] = if true_c == 0 { 0.0 } else { tp as f64 / true_c as f64 };
        f1[c] = if precision[c] + recall[c] == 0.0 {
            0.0
        } else {
            2.0 * precision[c] * recall[c] / (precision[c] + recall[c])
        };
    }

    ClassificationReport {
        classes,
        confusion,
        precision,
        recall,
        f1,
        support,
        accuracy: correct as f64 / truth.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn perfect_predictions() {
        let truth = ["a", "b", "c", "a"];
        let r = evaluate(&truth, &truth);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.macro_f1(), 1.0);
        assert_eq!(r.weighted_f1(), 1.0);
        assert_eq!(r.micro_f1(), 1.0);
    }

    #[test]
    fn sklearn_reference_binary() {
        // sklearn: y_true = [0,1,0,1,0], y_pred = [0,1,1,1,0]
        // precision = [1.0, 0.6666...], recall = [0.6666..., 1.0]
        // f1 = [0.8, 0.8], macro = 0.8, accuracy = 0.8
        let truth = ["0", "1", "0", "1", "0"];
        let pred = ["0", "1", "1", "1", "0"];
        let r = evaluate(&truth, &pred);
        assert!(close(r.precision[0], 1.0));
        assert!(close(r.precision[1], 2.0 / 3.0));
        assert!(close(r.recall[0], 2.0 / 3.0));
        assert!(close(r.recall[1], 1.0));
        assert!(close(r.f1[0], 0.8));
        assert!(close(r.f1[1], 0.8));
        assert!(close(r.macro_f1(), 0.8));
        assert!(close(r.accuracy, 0.8));
    }

    #[test]
    fn sklearn_reference_multiclass_with_absent_prediction() {
        // sklearn: y_true = [a,a,b,b,c,c], y_pred = [a,a,a,b,b,c]
        // per class: a: P=2/3 R=1 F=0.8 ; b: P=1/2 R=1/2 F=0.5 ;
        //            c: P=1 R=1/2 F=2/3
        // macro = (0.8+0.5+2/3)/3 = 0.6555..., weighted same (equal support)
        let truth = ["a", "a", "b", "b", "c", "c"];
        let pred = ["a", "a", "a", "b", "b", "c"];
        let r = evaluate(&truth, &pred);
        assert!(close(r.f1[0], 0.8));
        assert!(close(r.f1[1], 0.5));
        assert!(close(r.f1[2], 2.0 / 3.0));
        assert!(close(r.macro_f1(), (0.8 + 0.5 + 2.0 / 3.0) / 3.0));
        assert!(close(r.weighted_f1(), (0.8 + 0.5 + 2.0 / 3.0) / 3.0));
        assert!(close(r.accuracy, 4.0 / 6.0));
    }

    #[test]
    fn predicted_only_class_drags_macro_down() {
        // A class that appears only in predictions gets P=0 (it has
        // predictions but no TPs), R=0 (support 0, zero_division=0) → F=0,
        // and is still averaged into macro — sklearn behavior with the
        // union label set.
        let truth = ["a", "a", "a", "a"];
        let pred = ["a", "a", "a", "b"];
        let r = evaluate(&truth, &pred);
        assert_eq!(r.classes, vec!["a".to_string(), "b".to_string()]);
        // a: P=1, R=3/4, F=6/7 ; b: F=0
        assert!(close(r.f1[0], 6.0 / 7.0));
        assert!(close(r.f1[1], 0.0));
        assert!(close(r.macro_f1(), 3.0 / 7.0));
        // weighted ignores the support-0 class entirely.
        assert!(close(r.weighted_f1(), 6.0 / 7.0));
    }

    #[test]
    fn unknown_as_correct_class() {
        // The hard-unknown experiment: all truth is "unknown"; predicting
        // unknown is correct, predicting an app is wrong.
        let truth = [UNKNOWN_LABEL; 4];
        let pred = [UNKNOWN_LABEL, UNKNOWN_LABEL, UNKNOWN_LABEL, "sp"];
        let r = evaluate(&truth, &pred);
        let unknown_f1 = r.class_f1(UNKNOWN_LABEL).unwrap();
        // P=1, R=3/4 → F = 6/7.
        assert!(close(unknown_f1, 6.0 / 7.0));
        assert!(close(r.accuracy, 0.75));
    }

    #[test]
    fn all_wrong_is_zero() {
        let truth = ["a", "a"];
        let pred = ["b", "b"];
        let r = evaluate(&truth, &pred);
        assert_eq!(r.accuracy, 0.0);
        assert_eq!(r.macro_f1(), 0.0);
    }

    #[test]
    fn confusion_matrix_layout() {
        let truth = ["a", "b", "a"];
        let pred = ["b", "b", "a"];
        let r = evaluate(&truth, &pred);
        // classes = [a, b]; confusion[true][pred]
        assert_eq!(r.confusion[0][0], 1); // a→a
        assert_eq!(r.confusion[0][1], 1); // a→b
        assert_eq!(r.confusion[1][1], 1); // b→b
        assert_eq!(r.confusion[1][0], 0);
        assert_eq!(r.support, vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        evaluate(&["a"], &["a", "b"]);
    }
}
