//! Gaussian naive Bayes.
//!
//! The cheapest baseline family: per-class feature Gaussians with variance
//! smoothing (sklearn's `var_smoothing` scheme), log-likelihood scoring,
//! and softmax-normalized probabilities.

use crate::Classifier;

/// A fitted Gaussian naive Bayes model.
#[derive(Debug, Clone)]
pub struct GaussianNb {
    /// `theta[c][f]` — per-class feature means.
    theta: Vec<Vec<f64>>,
    /// `var[c][f]` — smoothed per-class feature variances.
    var: Vec<Vec<f64>>,
    /// Log class priors.
    log_prior: Vec<f64>,
}

impl GaussianNb {
    /// Fit per-class Gaussians.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty());
        let width = x[0].len();

        let mut count = vec![0usize; n_classes];
        let mut sum = vec![vec![0.0; width]; n_classes];
        for (xi, &yi) in x.iter().zip(y) {
            count[yi] += 1;
            for (s, &v) in sum[yi].iter_mut().zip(xi) {
                *s += v;
            }
        }
        let theta: Vec<Vec<f64>> = sum
            .iter()
            .zip(&count)
            .map(|(s, &c)| {
                s.iter()
                    .map(|&v| if c > 0 { v / c as f64 } else { 0.0 })
                    .collect()
            })
            .collect();

        let mut var = vec![vec![0.0; width]; n_classes];
        for (xi, &yi) in x.iter().zip(y) {
            for f in 0..width {
                let d = xi[f] - theta[yi][f];
                var[yi][f] += d * d;
            }
        }
        // Global max feature variance for smoothing (sklearn: 1e-9 × max).
        let mut global = vec![0.0f64; width];
        {
            // Compute global per-feature variance.
            let n = x.len() as f64;
            let mut mean = vec![0.0; width];
            for xi in x {
                for (m, &v) in mean.iter_mut().zip(xi) {
                    *m += v / n;
                }
            }
            for xi in x {
                for f in 0..width {
                    let d = xi[f] - mean[f];
                    global[f] += d * d / n;
                }
            }
        }
        let eps = 1e-9 * global.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
        for (class_var, &c) in var.iter_mut().zip(&count) {
            for v in class_var.iter_mut() {
                *v = if c > 0 { *v / c as f64 + eps } else { 1.0 };
            }
        }

        let n = x.len() as f64;
        let log_prior = count
            .iter()
            .map(|&c| {
                if c == 0 {
                    f64::NEG_INFINITY
                } else {
                    (c as f64 / n).ln()
                }
            })
            .collect();

        Self {
            theta,
            var,
            log_prior,
        }
    }
}

impl Classifier for GaussianNb {
    fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let log_joint: Vec<f64> = self
            .theta
            .iter()
            .zip(&self.var)
            .zip(&self.log_prior)
            .map(|((t, v), &lp)| {
                if lp == f64::NEG_INFINITY {
                    return f64::NEG_INFINITY;
                }
                let mut ll = lp;
                for f in 0..row.len() {
                    let d = row[f] - t[f];
                    ll += -0.5 * ((2.0 * std::f64::consts::PI * v[f]).ln() + d * d / v[f]);
                }
                ll
            })
            .collect();
        // Softmax with log-sum-exp stabilization.
        let max = log_joint.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exp: Vec<f64> = log_joint.iter().map(|&l| (l - max).exp()).collect();
        let z: f64 = exp.iter().sum();
        exp.into_iter().map(|e| e / z).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_util::rng::SplitMix64;

    fn blobs(n_per: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = SplitMix64::new(seed);
        let (mut x, mut y) = (Vec::new(), Vec::new());
        for (c, center) in [(0usize, -5.0), (1, 5.0)] {
            for _ in 0..n_per {
                x.push(vec![center + rng.next_gaussian(), rng.next_gaussian()]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn separable_classes() {
        let (x, y) = blobs(100, 1);
        let nb = GaussianNb::fit(&x, &y, 2);
        let (xt, yt) = blobs(50, 2);
        let acc = xt
            .iter()
            .zip(&yt)
            .filter(|(xi, &yi)| nb.predict(xi) == yi)
            .count() as f64
            / xt.len() as f64;
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn proba_normalized_and_confident() {
        let (x, y) = blobs(100, 3);
        let nb = GaussianNb::fit(&x, &y, 2);
        let p = nb.predict_proba(&[-5.0, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[0] > 0.99);
        let mid = nb.predict_proba(&[0.0, 0.0]);
        assert!(mid[0] < 0.9 && mid[1] < 0.9, "{mid:?}");
    }

    #[test]
    fn empty_class_gets_zero_probability() {
        let (x, y) = blobs(20, 4);
        let nb = GaussianNb::fit(&x, &y, 3); // class 2 never observed
        let p = nb.predict_proba(&[0.0, 0.0]);
        assert_eq!(p[2], 0.0);
    }

    #[test]
    fn constant_features_do_not_nan() {
        let x = vec![vec![1.0, 5.0], vec![1.0, 5.0], vec![2.0, 5.0], vec![2.0, 5.0]];
        let y = vec![0, 0, 1, 1];
        let nb = GaussianNb::fit(&x, &y, 2);
        let p = nb.predict_proba(&[1.0, 5.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[0] > 0.5);
    }
}
