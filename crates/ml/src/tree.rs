//! CART decision trees (Gini impurity).
//!
//! Supports the classic exhaustive-threshold search and the randomized
//! "extra trees" variant (one random threshold per candidate feature),
//! plus per-node feature subsampling — the building blocks
//! [`crate::forest`] composes into the Taxonomist baseline's classifier.

use efd_util::rng::{derive_seed, SplitMix64};

use crate::Classifier;

/// Tree construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split (`None` = all).
    pub max_features: Option<usize>,
    /// Extra-trees mode: one uniform-random threshold per feature instead
    /// of the exhaustive scan.
    pub random_thresholds: bool,
    /// Seed for feature subsampling / random thresholds.
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 24,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            random_thresholds: false,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        dist: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A trained CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Fit on all rows of `x`.
    pub fn fit(params: TreeParams, x: &[Vec<f64>], y: &[usize], n_classes: usize) -> Self {
        let indices: Vec<usize> = (0..x.len()).collect();
        Self::fit_on(params, x, y, n_classes, indices)
    }

    /// Fit on a subset (possibly with repetition — bootstrap samples).
    pub fn fit_on(
        params: TreeParams,
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        indices: Vec<usize>,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!indices.is_empty(), "cannot fit on zero samples");
        assert!(n_classes >= 1);
        let width = x[0].len();
        let mut tree = Self {
            nodes: Vec::new(),
            n_classes,
        };
        let mut rng = SplitMix64::new(derive_seed(params.seed, &[0x7EE5]));
        tree.build(&params, x, y, indices, 0, width, &mut rng);
        tree
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (diagnostics).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    fn class_counts(&self, y: &[usize], indices: &[usize]) -> Vec<f64> {
        let mut counts = vec![0.0; self.n_classes];
        for &i in indices {
            counts[y[i]] += 1.0;
        }
        counts
    }

    fn make_leaf(&mut self, counts: Vec<f64>) -> usize {
        let total: f64 = counts.iter().sum();
        let dist = counts.iter().map(|c| c / total).collect();
        self.nodes.push(Node::Leaf { dist });
        self.nodes.len() - 1
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        params: &TreeParams,
        x: &[Vec<f64>],
        y: &[usize],
        indices: Vec<usize>,
        depth: usize,
        width: usize,
        rng: &mut SplitMix64,
    ) -> usize {
        let counts = self.class_counts(y, &indices);
        let n = indices.len();
        let pure = counts.iter().filter(|&&c| c > 0.0).count() <= 1;
        if pure || depth >= params.max_depth || n < params.min_samples_split {
            return self.make_leaf(counts);
        }

        // Candidate features (subsampled without replacement).
        let k = params.max_features.unwrap_or(width).min(width).max(1);
        let features: Vec<usize> = if k == width {
            (0..width).collect()
        } else {
            let mut pool: Vec<usize> = (0..width).collect();
            for i in 0..k {
                let j = i + rng.next_below((width - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(k);
            pool
        };

        let parent_gini = gini(&counts, n as f64);
        let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
        let mut scratch: Vec<(f64, usize)> = Vec::with_capacity(n);

        for &f in &features {
            scratch.clear();
            scratch.extend(indices.iter().map(|&i| (x[i][f], y[i])));
            scratch.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            if scratch[0].0 == scratch[n - 1].0 {
                continue; // constant feature
            }

            if params.random_thresholds {
                let (lo, hi) = (scratch[0].0, scratch[n - 1].0);
                let t = lo + rng.next_f64() * (hi - lo);
                if let Some(imp) =
                    split_impurity_at(&scratch, t, self.n_classes, params.min_samples_leaf)
                {
                    if best.is_none_or(|b| imp < b.0) {
                        best = Some((imp, f, t));
                    }
                }
            } else {
                // Exhaustive scan over midpoints of distinct neighbors.
                let mut left = vec![0.0f64; self.n_classes];
                let mut right = counts.clone();
                for s in 0..n - 1 {
                    left[scratch[s].1] += 1.0;
                    right[scratch[s].1] -= 1.0;
                    if scratch[s].0 == scratch[s + 1].0 {
                        continue;
                    }
                    let nl = (s + 1) as f64;
                    let nr = (n - s - 1) as f64;
                    if (nl as usize) < params.min_samples_leaf
                        || (nr as usize) < params.min_samples_leaf
                    {
                        continue;
                    }
                    let imp = (nl * gini(&left, nl) + nr * gini(&right, nr)) / n as f64;
                    if best.is_none_or(|b| imp < b.0) {
                        let t = 0.5 * (scratch[s].0 + scratch[s + 1].0);
                        best = Some((imp, f, t));
                    }
                }
            }
        }

        let Some((imp, feature, threshold)) = best else {
            return self.make_leaf(counts);
        };
        if imp >= parent_gini {
            return self.make_leaf(counts); // no impurity improvement
        }

        let (li, ri): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[i][feature] <= threshold);
        if li.is_empty() || ri.is_empty() {
            return self.make_leaf(counts);
        }

        let node = self.nodes.len();
        self.nodes.push(Node::Split {
            feature,
            threshold,
            left: 0,
            right: 0,
        });
        let left = self.build(params, x, y, li, depth + 1, width, rng);
        let right = self.build(params, x, y, ri, depth + 1, width, rng);
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node]
        {
            *l = left;
            *r = right;
        }
        node
    }
}

impl Classifier for DecisionTree {
    fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { dist } => return dist.clone(),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Gini impurity of class counts summing to `total`.
fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c / total;
            p * p
        })
        .sum::<f64>()
}

/// Weighted impurity of a fixed-threshold split over sorted (value, class)
/// pairs; None if a side violates `min_leaf`.
fn split_impurity_at(
    sorted: &[(f64, usize)],
    threshold: f64,
    n_classes: usize,
    min_leaf: usize,
) -> Option<f64> {
    let mut left = vec![0.0f64; n_classes];
    let mut right = vec![0.0f64; n_classes];
    let mut nl = 0.0f64;
    for &(v, c) in sorted {
        if v <= threshold {
            left[c] += 1.0;
            nl += 1.0;
        } else {
            right[c] += 1.0;
        }
    }
    let n = sorted.len() as f64;
    let nr = n - nl;
    if (nl as usize) < min_leaf || (nr as usize) < min_leaf {
        return None;
    }
    Some((nl * gini(&left, nl) + nr * gini(&right, nr)) / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_util::rng::SplitMix64;

    /// Three Gaussian blobs in 2-D.
    fn blobs(n_per: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let mut rng = SplitMix64::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                x.push(vec![
                    cx + rng.next_gaussian(),
                    cy + rng.next_gaussian(),
                ]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn separable_blobs_are_learned() {
        let (x, y) = blobs(50, 1);
        let tree = DecisionTree::fit(TreeParams::default(), &x, &y, 3);
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| tree.predict(xi) == yi)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.98);

        let (xt, yt) = blobs(30, 2);
        let correct = xt
            .iter()
            .zip(&yt)
            .filter(|(xi, &yi)| tree.predict(xi) == yi)
            .count();
        assert!(
            correct as f64 / xt.len() as f64 > 0.95,
            "test accuracy {}",
            correct as f64 / xt.len() as f64
        );
    }

    #[test]
    fn proba_sums_to_one() {
        let (x, y) = blobs(20, 3);
        let tree = DecisionTree::fit(TreeParams::default(), &x, &y, 3);
        for xi in &x {
            let p = tree.predict_proba(xi);
            assert_eq!(p.len(), 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn max_depth_limits_tree() {
        let (x, y) = blobs(100, 4);
        let stump = DecisionTree::fit(
            TreeParams {
                max_depth: 1,
                ..TreeParams::default()
            },
            &x,
            &y,
            3,
        );
        assert!(stump.depth() <= 2);
        assert!(stump.node_count() <= 3);
    }

    #[test]
    fn constant_features_become_leaf() {
        let x = vec![vec![1.0, 2.0]; 10];
        let y: Vec<usize> = (0..10).map(|i| i % 2).collect();
        let tree = DecisionTree::fit(TreeParams::default(), &x, &y, 2);
        assert_eq!(tree.node_count(), 1);
        let p = tree.predict_proba(&[1.0, 2.0]);
        assert!((p[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pure_node_short_circuits() {
        let (x, y) = blobs(10, 5);
        let y_const = vec![1usize; y.len()];
        let tree = DecisionTree::fit(TreeParams::default(), &x, &y_const, 3);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&x[0]), 1);
    }

    #[test]
    fn extra_trees_mode_still_learns() {
        let (x, y) = blobs(50, 6);
        let tree = DecisionTree::fit(
            TreeParams {
                random_thresholds: true,
                seed: 9,
                ..TreeParams::default()
            },
            &x,
            &y,
            3,
        );
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| tree.predict(xi) == yi)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.9);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = blobs(30, 7);
        let p = TreeParams {
            max_features: Some(1),
            seed: 11,
            ..TreeParams::default()
        };
        let a = DecisionTree::fit(p, &x, &y, 3);
        let b = DecisionTree::fit(p, &x, &y, 3);
        for xi in &x {
            assert_eq!(a.predict(xi), b.predict(xi));
        }
    }

    #[test]
    fn bootstrap_subset_fit() {
        let (x, y) = blobs(30, 8);
        let idx: Vec<usize> = (0..30).collect(); // first blob only
        let tree = DecisionTree::fit_on(TreeParams::default(), &x, &y, 3, idx);
        assert_eq!(tree.predict(&x[0]), 0);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = blobs(10, 9);
        let tree = DecisionTree::fit(
            TreeParams {
                min_samples_leaf: 10,
                ..TreeParams::default()
            },
            &x,
            &y,
            3,
        );
        // 30 samples, leaves >= 10 → at most 3 leaves.
        assert!(tree.node_count() <= 5);
    }

    #[test]
    fn gini_basics() {
        assert_eq!(gini(&[10.0, 0.0], 10.0), 0.0);
        assert!((gini(&[5.0, 5.0], 10.0) - 0.5).abs() < 1e-12);
    }
}
