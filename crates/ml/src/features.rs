//! Statistical feature extraction (the Taxonomist's data diet).
//!
//! Taxonomist computes statistical features of every metric's time series
//! on every node over the whole execution. We extract eleven statistics per
//! (node, metric): mean, std, min, max, the 5th/25th/50th/75th/95th
//! percentiles, skewness and kurtosis — **streamed** through
//! [`efd_util::OnlineStats`] and [`efd_util::P2Quantile`] so a 562-metric ×
//! full-window extraction never buffers raw series (contrast with the EFD's
//! single 60-sample mean; the `perf_learning` bench quantifies the gap).

use efd_telemetry::trace::ExecutionTrace;
use efd_telemetry::Interval;
use efd_util::stats::{OnlineStats, P2Quantile};

/// Names of the extracted statistics, in row order.
pub const STAT_NAMES: [&str; 11] = [
    "mean", "std", "min", "max", "p05", "p25", "p50", "p75", "p95", "skew", "kurt",
];

/// Number of statistics per metric.
pub const STATS_PER_METRIC: usize = STAT_NAMES.len();

/// A dense labeled feature matrix: one row per node sample.
#[derive(Debug, Clone, Default)]
pub struct FeatureMatrix {
    /// Feature rows.
    pub rows: Vec<Vec<f64>>,
    /// Ground-truth application name per row (Taxonomist labels nodes, not
    /// executions — paper §5 "the impact of node configuration").
    pub labels: Vec<String>,
    /// Execution index each row came from (for per-execution aggregation).
    pub exec_of_row: Vec<usize>,
}

impl FeatureMatrix {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features per row (0 when empty).
    pub fn width(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Append all node rows of one execution trace (`exec_idx` is the
    /// caller's identifier for the execution). Features cover `window`
    /// (or the whole series when `None`).
    pub fn push_trace(&mut self, trace: &ExecutionTrace, exec_idx: usize, window: Option<Interval>) {
        for node in &trace.nodes {
            let mut row = Vec::with_capacity(node.series.len() * STATS_PER_METRIC);
            for series in &node.series {
                let values = match window {
                    Some(w) => series.window(w),
                    None => series.values(),
                };
                extract_into(values.iter().copied(), &mut row);
            }
            self.rows.push(row);
            self.labels.push(trace.label.app.clone());
            self.exec_of_row.push(exec_idx);
        }
    }

    /// Row indices belonging to execution `exec_idx`.
    pub fn rows_of_exec(&self, exec_idx: usize) -> Vec<usize> {
        self.exec_of_row
            .iter()
            .enumerate()
            .filter_map(|(i, &e)| (e == exec_idx).then_some(i))
            .collect()
    }
}

/// Stream one value sequence into eleven statistics, appended to `row`.
/// Non-finite samples are skipped; an all-missing stream contributes zeros
/// (classifiers cannot digest NaN).
pub fn extract_into(values: impl Iterator<Item = f64>, row: &mut Vec<f64>) {
    let mut stats = OnlineStats::new();
    let mut quantiles = [
        P2Quantile::new(0.05),
        P2Quantile::new(0.25),
        P2Quantile::new(0.50),
        P2Quantile::new(0.75),
        P2Quantile::new(0.95),
    ];
    for v in values {
        if v.is_finite() {
            stats.push(v);
            for q in &mut quantiles {
                q.push(v);
            }
        }
    }
    if stats.is_empty() {
        row.extend(std::iter::repeat_n(0.0, STATS_PER_METRIC));
        return;
    }
    row.push(stats.mean());
    row.push(stats.stddev());
    row.push(stats.min());
    row.push(stats.max());
    for q in &quantiles {
        row.push(q.estimate());
    }
    row.push(finite_or_zero(stats.skewness()));
    row.push(finite_or_zero(stats.kurtosis()));
}

fn finite_or_zero(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Feature names for a metric list: `<metric>.<stat>` per column.
pub fn feature_names(metric_names: &[&str]) -> Vec<String> {
    let mut out = Vec::with_capacity(metric_names.len() * STATS_PER_METRIC);
    for m in metric_names {
        for s in STAT_NAMES {
            out.push(format!("{m}.{s}"));
        }
    }
    out
}

/// Per-column z-score normalization fitted on training rows.
#[derive(Debug, Clone)]
pub struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    /// Fit column means/stds on training rows.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit scaler on empty data");
        let width = rows[0].len();
        let mut cols = vec![OnlineStats::new(); width];
        for row in rows {
            for (c, &v) in row.iter().enumerate() {
                cols[c].push(v);
            }
        }
        Self {
            mean: cols.iter().map(|s| s.mean()).collect(),
            std: cols
                .iter()
                .map(|s| {
                    let sd = s.stddev();
                    if sd > 0.0 {
                        sd
                    } else {
                        1.0 // constant column: leave centered values at 0
                    }
                })
                .collect(),
        }
    }

    /// Transform one row in place.
    pub fn transform(&self, row: &mut [f64]) {
        for (c, v) in row.iter_mut().enumerate() {
            *v = (*v - self.mean[c]) / self.std[c];
        }
    }

    /// Transform many rows, returning new storage.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|r| {
                let mut r = r.clone();
                self.transform(&mut r);
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_telemetry::series::TimeSeries;
    use efd_telemetry::trace::{MetricSelection, NodeTrace};
    use efd_telemetry::{AppLabel, MetricId, NodeId};

    fn toy_trace(app: &str, level: f64, nodes: u16) -> ExecutionTrace {
        ExecutionTrace {
            exec_id: 0,
            label: AppLabel::new(app, "X"),
            selection: MetricSelection::new(vec![MetricId(0), MetricId(1)]),
            nodes: (0..nodes)
                .map(|n| NodeTrace {
                    node: NodeId(n),
                    series: vec![
                        TimeSeries::from_values((0..100).map(|i| level + (i % 10) as f64).collect()),
                        TimeSeries::from_values(vec![level * 2.0; 100]),
                    ],
                })
                .collect(),
            duration_s: 100,
        }
    }

    #[test]
    fn row_layout() {
        let mut fm = FeatureMatrix::default();
        fm.push_trace(&toy_trace("ft", 100.0, 3), 7, None);
        assert_eq!(fm.len(), 3);
        assert_eq!(fm.width(), 2 * STATS_PER_METRIC);
        assert_eq!(fm.labels, vec!["ft"; 3]);
        assert_eq!(fm.exec_of_row, vec![7; 3]);
        assert_eq!(fm.rows_of_exec(7), vec![0, 1, 2]);
        assert!(fm.rows_of_exec(8).is_empty());
    }

    #[test]
    fn stats_are_plausible() {
        let mut row = Vec::new();
        extract_into((0..=100).map(|i| i as f64), &mut row);
        assert_eq!(row.len(), STATS_PER_METRIC);
        let (mean, std, min, max) = (row[0], row[1], row[2], row[3]);
        assert!((mean - 50.0).abs() < 1e-9);
        assert!((std - 29.15).abs() < 0.05);
        assert_eq!(min, 0.0);
        assert_eq!(max, 100.0);
        let p50 = row[6];
        assert!((p50 - 50.0).abs() < 2.0);
        // uniform: skew ≈ 0, kurtosis ≈ -1.2
        assert!(row[9].abs() < 0.05, "skew {}", row[9]);
        assert!((row[10] + 1.2).abs() < 0.1, "kurt {}", row[10]);
    }

    #[test]
    fn constant_series_has_zero_spread_features() {
        let mut row = Vec::new();
        extract_into(std::iter::repeat_n(7.0, 50), &mut row);
        assert_eq!(row[0], 7.0); // mean
        assert_eq!(row[1], 0.0); // std
        assert_eq!(row[9], 0.0); // skew
        assert_eq!(row[10], 0.0); // kurt
    }

    #[test]
    fn empty_and_nan_streams_yield_zeros() {
        let mut row = Vec::new();
        extract_into(std::iter::empty(), &mut row);
        assert_eq!(row, vec![0.0; STATS_PER_METRIC]);
        row.clear();
        extract_into([f64::NAN, f64::NAN].into_iter(), &mut row);
        assert_eq!(row, vec![0.0; STATS_PER_METRIC]);
    }

    #[test]
    fn windowed_extraction_restricts_range() {
        let mut fm = FeatureMatrix::default();
        let t = toy_trace("mg", 0.0, 1);
        fm.push_trace(&t, 0, Some(Interval::new(0, 10)));
        // window covers exactly one 0..9 ramp: max = 9.
        assert_eq!(fm.rows[0][3], 9.0);
    }

    #[test]
    fn feature_names_layout() {
        let names = feature_names(&["a", "b"]);
        assert_eq!(names.len(), 22);
        assert_eq!(names[0], "a.mean");
        assert_eq!(names[10], "a.kurt");
        assert_eq!(names[11], "b.mean");
    }

    #[test]
    fn scaler_zero_mean_unit_var() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let s = Scaler::fit(&rows);
        let t = s.transform_all(&rows);
        let col0: Vec<f64> = t.iter().map(|r| r[0]).collect();
        let mean: f64 = col0.iter().sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        // constant column stays at 0, no NaN.
        assert!(t.iter().all(|r| r[1] == 0.0));
    }
}
