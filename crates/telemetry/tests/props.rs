//! Property-based tests for the telemetry substrate.

use proptest::prelude::*;

use efd_telemetry::series::TimeSeries;
use efd_telemetry::storage;
use efd_telemetry::trace::{AppLabel, ExecutionTrace, MetricSelection, NodeId, NodeTrace};
use efd_telemetry::{Interval, MetricId};

/// Strategy: an arbitrary (small) execution trace, including NaN gaps.
fn arb_trace() -> impl Strategy<Value = ExecutionTrace> {
    let sample = prop_oneof![
        8 => (-1e9f64..1e9).prop_map(Some),
        1 => Just(None), // missing sample
    ];
    let series = prop::collection::vec(sample, 1..40)
        .prop_map(|v| TimeSeries::from_values(
            v.into_iter().map(|x| x.unwrap_or(f64::NAN)).collect(),
        ));
    (
        1u16..4,                       // nodes
        1usize..4,                     // metrics
        "[a-z]{1,8}",                  // app
        "[A-Z]{1}",                    // input
        any::<u64>(),                  // exec id
    )
        .prop_flat_map(move |(nodes, metrics, app, input, exec_id)| {
            prop::collection::vec(
                prop::collection::vec(series.clone(), metrics..=metrics),
                nodes as usize..=nodes as usize,
            )
            .prop_map(move |node_series| {
                let selection =
                    MetricSelection::new((0..metrics as u32).map(MetricId).collect());
                let duration = node_series[0][0].len() as u32;
                ExecutionTrace {
                    exec_id,
                    label: AppLabel::new(app.clone(), input.clone()),
                    selection,
                    nodes: node_series
                        .into_iter()
                        .enumerate()
                        .map(|(n, series)| NodeTrace {
                            node: NodeId(n as u16),
                            series,
                        })
                        .collect(),
                    duration_s: duration,
                }
            })
        })
}

fn series_eq(a: &TimeSeries, b: &TimeSeries) -> bool {
    a.len() == b.len()
        && a.values()
            .iter()
            .zip(b.values())
            .all(|(x, y)| (x == y) || (x.is_nan() && y.is_nan()))
}

proptest! {
    /// Binary storage round-trips arbitrary traces exactly (incl. NaN).
    #[test]
    fn binary_roundtrip(trace in arb_trace()) {
        let bytes = storage::to_bytes(&trace);
        let back = storage::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back.label, &trace.label);
        prop_assert_eq!(back.exec_id, trace.exec_id);
        prop_assert_eq!(&back.selection, &trace.selection);
        prop_assert_eq!(back.nodes.len(), trace.nodes.len());
        for (na, nb) in trace.nodes.iter().zip(&back.nodes) {
            prop_assert_eq!(na.node, nb.node);
            for (sa, sb) in na.series.iter().zip(&nb.series) {
                prop_assert!(series_eq(sa, sb));
            }
        }
    }

    /// JSON storage also round-trips (NaN via null).
    #[test]
    fn json_roundtrip(trace in arb_trace()) {
        let json = storage::to_json(&trace).unwrap();
        let back = storage::from_json(&json).unwrap();
        for (na, nb) in trace.nodes.iter().zip(&back.nodes) {
            for (sa, sb) in na.series.iter().zip(&nb.series) {
                prop_assert!(series_eq(sa, sb));
            }
        }
    }

    /// Truncating a binary blob never round-trips successfully.
    #[test]
    fn truncation_always_detected(trace in arb_trace(), frac in 0.0f64..1.0) {
        let bytes = storage::to_bytes(&trace);
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(storage::from_bytes(&bytes[..cut]).is_err());
    }

    /// Window means over a split window combine to the full-window mean.
    #[test]
    fn window_means_compose(
        values in prop::collection::vec(-1e6f64..1e6, 10..200),
        cut in 1u32..9,
    ) {
        let s = TimeSeries::from_values(values.clone());
        let n = values.len() as u32;
        let mid = n * cut / 10;
        prop_assume!(mid > 0 && mid < n);
        let left = s.window_stats(Interval::new(0, mid));
        let right = s.window_stats(Interval::new(mid, n));
        let full = s.window_stats(Interval::new(0, n));
        let combined_mean = (left.mean() * left.count() as f64
            + right.mean() * right.count() as f64)
            / (left.count() + right.count()) as f64;
        prop_assert!((combined_mean - full.mean()).abs() <= 1e-9 * full.mean().abs().max(1.0));
    }

    /// A tiling never overlaps and never exceeds the horizon.
    #[test]
    fn tiling_invariants(len in 1u32..120, horizon in 1u32..2000) {
        let tiles = Interval::tiling(len, horizon);
        for w in &tiles {
            prop_assert_eq!(w.duration(), len);
            prop_assert!(w.end <= horizon);
        }
        for pair in tiles.windows(2) {
            prop_assert!(!pair[0].overlaps(&pair[1]));
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
    }

    /// CSV round-trips window means for arbitrary (finite) data.
    #[test]
    fn csv_roundtrip_preserves_means(
        values in prop::collection::vec(-1e6f64..1e6, 2..30),
    ) {
        use efd_telemetry::catalog::small_catalog;
        use efd_telemetry::csv;
        let catalog = small_catalog();
        let id = catalog.ids().next().unwrap();
        let trace = ExecutionTrace {
            exec_id: 1,
            label: AppLabel::new("ft", "X"),
            selection: MetricSelection::single(id),
            nodes: vec![NodeTrace {
                node: NodeId(0),
                series: vec![TimeSeries::from_values(values.clone())],
            }],
            duration_s: values.len() as u32,
        };
        let mut buf = Vec::new();
        csv::write_node_csv(&trace, NodeId(0), &catalog, &mut buf).unwrap();
        let parsed = csv::read_node_csv(&buf[..]).unwrap();
        let back = csv::assemble_trace(vec![parsed], &catalog).unwrap();
        let w = Interval::new(0, values.len() as u32);
        let a = trace.nodes[0].series[0].window_mean(w);
        let b = back.nodes[0].series[0].window_mean(w);
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }
}
