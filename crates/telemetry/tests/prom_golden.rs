//! Golden exposition fixture: the Prometheus text format is a *scrape
//! contract*, not an implementation detail — dashboards, alert rules,
//! and the daemon's CI smoke all parse it. This test renders a registry
//! populated with fully deterministic values and compares byte-for-byte
//! against a checked-in fixture. Re-bless after an intentional format
//! change with
//!
//! ```sh
//! EFD_BLESS=1 cargo test -p efd-telemetry --test prom_golden
//! ```

use efd_telemetry::prom::Registry;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/exposition.prom"
);

/// A registry shaped like the daemon's, fed a deterministic mix.
fn golden_registry() -> Registry {
    let reg = Registry::new();
    for (command, n) in [("recognize", 7u64), ("ping", 2), ("stats", 1)] {
        reg.counter(
            "efd_requests_total",
            "Requests answered, by protocol command.",
            &[("command", command)],
        )
        .add(n);
    }
    for (verdict, n) in [("recognized", 4u64), ("ambiguous", 1), ("unknown", 2)] {
        reg.counter(
            "efd_verdicts_total",
            "Recognition verdicts returned.",
            &[("verdict", verdict)],
        )
        .add(n);
    }
    reg.gauge("efd_queue_depth", "Connections awaiting a worker.", &[])
        .set(3);
    let lat = reg.histogram(
        "efd_request_duration_seconds",
        "End-to-end request latency.",
        &[],
        &[0.001, 0.01, 0.1, 1.0],
    );
    for v in [0.0005, 0.001, 0.004, 0.05, 2.5] {
        lat.observe(v);
    }
    reg
}

fn golden_text() -> String {
    golden_registry().render()
}

fn fixture_text() -> String {
    if std::env::var_os("EFD_BLESS").is_some() {
        std::fs::write(FIXTURE, golden_text()).expect("bless fixture");
    }
    std::fs::read_to_string(FIXTURE).expect(
        "fixture missing — generate with \
         EFD_BLESS=1 cargo test -p efd-telemetry --test prom_golden",
    )
}

#[test]
fn exposition_matches_the_checked_in_fixture() {
    assert_eq!(
        golden_text(),
        fixture_text(),
        "Prometheus exposition format changed: if intentional, update \
         docs/METRICS.md and re-bless the fixture"
    );
}

#[test]
fn fixture_carries_the_structural_landmarks() {
    // Belt-and-braces over the byte comparison: the properties scrapers
    // actually rely on, asserted explicitly so a bad bless can't slip a
    // malformed fixture in.
    let text = fixture_text();
    for needle in [
        "# TYPE efd_requests_total counter",
        "# TYPE efd_queue_depth gauge",
        "# TYPE efd_request_duration_seconds histogram",
        "efd_request_duration_seconds_bucket{le=\"+Inf\"} 5",
        "efd_request_duration_seconds_count 5",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // Cumulative bucket counts are monotone.
    let counts: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with("efd_request_duration_seconds_bucket"))
        .map(|l| l.rsplit(' ').next().expect("value").parse().expect("count"))
        .collect();
    assert_eq!(counts.len(), 5);
    assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
}
