//! Measurement-noise processes.
//!
//! The paper's central obstacle is that "computing the mean produces precise
//! floating point values that are unlikely to repeat due to system
//! perturbations and noise" — rounding exists to absorb exactly this. The
//! generator therefore needs realistic perturbation structure, not just
//! white noise:
//!
//! * [`Gaussian`] — per-sample sensor/measurement white noise.
//! * [`OrnsteinUhlenbeck`] — slowly wandering system-level drift (daemons,
//!   page cache, neighbors on the network) that shifts a whole window's mean
//!   and is the main source of *fingerprint variation across runs*.
//! * [`Spikes`] — Poisson-arriving transient perturbations (cron jobs,
//!   kernel housekeeping) with exponentially decaying tails.
//! * [`Composite`] — sum of the above, the standard stack used by the
//!   workload models.
//!
//! All processes are deterministic functions of their seed and are sampled
//! on the 1 Hz grid.

use efd_util::rng::SplitMix64;

/// A seeded, stateful noise process sampled once per second.
pub trait NoiseProcess {
    /// Noise value at second `t`; must be called with strictly increasing
    /// `t` (processes may integrate internal state).
    fn sample(&mut self, t: f64) -> f64;
}

/// IID Gaussian white noise with standard deviation `sigma`.
#[derive(Debug, Clone)]
pub struct Gaussian {
    sigma: f64,
    rng: SplitMix64,
}

impl Gaussian {
    /// White noise with the given standard deviation.
    pub fn new(sigma: f64, seed: u64) -> Self {
        Self {
            sigma,
            rng: SplitMix64::new(seed),
        }
    }
}

impl NoiseProcess for Gaussian {
    fn sample(&mut self, _t: f64) -> f64 {
        self.rng.next_gaussian() * self.sigma
    }
}

/// Ornstein–Uhlenbeck mean-reverting drift: `dx = -theta·x·dt + sigma·dW`.
///
/// `theta` controls how fast drift decays (1/seconds); `sigma` the
/// excitation. Stationary standard deviation is `sigma / sqrt(2·theta)`.
#[derive(Debug, Clone)]
pub struct OrnsteinUhlenbeck {
    theta: f64,
    sigma: f64,
    x: f64,
    rng: SplitMix64,
}

impl OrnsteinUhlenbeck {
    /// New process started from its stationary distribution.
    pub fn new(theta: f64, sigma: f64, seed: u64) -> Self {
        assert!(theta > 0.0, "theta must be positive");
        let mut rng = SplitMix64::new(seed);
        // Draw x0 from the stationary distribution so early windows are not
        // systematically quieter than late ones.
        let stationary_sd = sigma / (2.0 * theta).sqrt();
        let x = rng.next_gaussian() * stationary_sd;
        Self {
            theta,
            sigma,
            x,
            rng,
        }
    }

    /// Stationary standard deviation of the process.
    pub fn stationary_sd(&self) -> f64 {
        self.sigma / (2.0 * self.theta).sqrt()
    }
}

impl NoiseProcess for OrnsteinUhlenbeck {
    fn sample(&mut self, _t: f64) -> f64 {
        // Exact discretization for dt = 1 s.
        let a = (-self.theta).exp();
        let noise_sd = self.sigma * ((1.0 - a * a) / (2.0 * self.theta)).sqrt();
        self.x = a * self.x + noise_sd * self.rng.next_gaussian();
        self.x
    }
}

/// Poisson-arriving spikes with exponentially decaying tails: at rate
/// `rate_per_s`, a spike of height ~ `Exp(mean_height)` lands and then
/// decays with time constant `decay_s`.
#[derive(Debug, Clone)]
pub struct Spikes {
    rate_per_s: f64,
    mean_height: f64,
    decay: f64,
    level: f64,
    rng: SplitMix64,
}

impl Spikes {
    /// New spike process.
    pub fn new(rate_per_s: f64, mean_height: f64, decay_s: f64, seed: u64) -> Self {
        assert!(decay_s > 0.0);
        Self {
            rate_per_s,
            mean_height,
            decay: (-1.0 / decay_s).exp(),
            level: 0.0,
            rng: SplitMix64::new(seed),
        }
    }
}

impl NoiseProcess for Spikes {
    fn sample(&mut self, _t: f64) -> f64 {
        self.level *= self.decay;
        if self.rng.next_f64() < self.rate_per_s {
            // Exponential height.
            let u = self.rng.next_f64().max(f64::MIN_POSITIVE);
            self.level += -self.mean_height * u.ln();
        }
        self.level
    }
}

/// Sum of independent noise processes.
pub struct Composite {
    parts: Vec<Box<dyn NoiseProcess + Send>>,
}

impl Composite {
    /// Combine processes; their outputs are summed.
    pub fn new(parts: Vec<Box<dyn NoiseProcess + Send>>) -> Self {
        Self { parts }
    }

    /// The standard perturbation stack used by the workload models:
    /// white noise + OU drift + sparse spikes, each with its own substream.
    pub fn standard(white_sd: f64, drift_sd: f64, spike_height: f64, seed: u64) -> Self {
        let mut parts: Vec<Box<dyn NoiseProcess + Send>> = Vec::new();
        if white_sd > 0.0 {
            parts.push(Box::new(Gaussian::new(white_sd, seed ^ 0x1)));
        }
        if drift_sd > 0.0 {
            // theta = 1/120 s: drift correlated on the window timescale, the
            // regime where rounding depth actually matters.
            let theta: f64 = 1.0 / 120.0;
            let sigma = drift_sd * (2.0 * theta).sqrt();
            parts.push(Box::new(OrnsteinUhlenbeck::new(theta, sigma, seed ^ 0x2)));
        }
        if spike_height > 0.0 {
            parts.push(Box::new(Spikes::new(0.01, spike_height, 5.0, seed ^ 0x3)));
        }
        Self { parts }
    }
}

impl NoiseProcess for Composite {
    fn sample(&mut self, t: f64) -> f64 {
        self.parts.iter_mut().map(|p| p.sample(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<P: NoiseProcess>(p: &mut P, n: usize) -> Vec<f64> {
        (0..n).map(|t| p.sample(t as f64)).collect()
    }

    #[test]
    fn gaussian_moments() {
        let xs = run(&mut Gaussian::new(2.0, 42), 100_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn gaussian_deterministic_per_seed() {
        let a = run(&mut Gaussian::new(1.0, 7), 100);
        let b = run(&mut Gaussian::new(1.0, 7), 100);
        let c = run(&mut Gaussian::new(1.0, 8), 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ou_is_mean_reverting_and_correlated() {
        let mut p = OrnsteinUhlenbeck::new(1.0 / 60.0, 1.0, 3);
        let xs = run(&mut p, 200_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let sd = (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt();
        let expect_sd = p.stationary_sd();
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((sd - expect_sd).abs() / expect_sd < 0.1, "sd {sd} vs {expect_sd}");

        // Lag-1 autocorrelation should be ≈ exp(-theta) ≈ 0.9835.
        let lag1: f64 = xs.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f64>()
            / ((xs.len() - 1) as f64 * sd * sd);
        assert!(lag1 > 0.95, "lag-1 autocorrelation {lag1}");
    }

    #[test]
    fn spikes_are_nonnegative_and_sparse() {
        let xs = run(&mut Spikes::new(0.01, 100.0, 5.0, 9), 50_000);
        assert!(xs.iter().all(|&x| x >= 0.0));
        let quiet = xs.iter().filter(|&&x| x < 1e-3).count() as f64 / xs.len() as f64;
        assert!(quiet > 0.5, "quiet fraction {quiet}");
        assert!(xs.iter().any(|&x| x > 10.0), "no spikes landed");
    }

    #[test]
    fn composite_sums_parts() {
        let mut c = Composite::new(vec![
            Box::new(Gaussian::new(0.0, 1)), // zero-sigma: contributes 0
            Box::new(Spikes::new(0.0, 1.0, 5.0, 2)), // zero-rate: contributes 0
        ]);
        for t in 0..100 {
            assert_eq!(c.sample(t as f64), 0.0);
        }
    }

    #[test]
    fn standard_stack_deterministic() {
        let a = run(&mut Composite::standard(1.0, 5.0, 20.0, 77), 300);
        let b = run(&mut Composite::standard(1.0, 5.0, 20.0, 77), 300);
        assert_eq!(a, b);
    }
}
