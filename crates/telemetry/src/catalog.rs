//! The 562-metric LDMS namespace of the paper's dataset.
//!
//! The public Taxonomist artifact exposes 562 of the original 721 metrics,
//! drawn from the LDMS sampler plugins running on a Cray XC: `/proc/vmstat`,
//! `/proc/meminfo`, `/proc/stat` (per-core), Cray Aries NIC and router-tile
//! counters, `/proc/net/dev`, load averages, and node power sensors. The
//! paper's Tables 3–4 name metrics in `<field>_<sampler>` form
//! (`nr_mapped_vmstat`, `Committed_AS_meminfo`, `AMO_PKTS_metric_set_nic`);
//! this module reconstructs that namespace with realistic field names and
//! per-category magnitude scales, filling the tail of the router-tile
//! counters programmatically so the total is exactly [`CATALOG_SIZE`].

use crate::metric::{MetricCatalog, MetricCategory};

/// Number of metrics in the public Taxonomist dataset (and in
/// [`taxonomist_catalog`]).
pub const CATALOG_SIZE: usize = 562;

/// `/proc/vmstat` counter fields (suffix `_vmstat`).
pub const VMSTAT_FIELDS: &[&str] = &[
    "nr_free_pages",
    "nr_alloc_batch",
    "nr_inactive_anon",
    "nr_active_anon",
    "nr_inactive_file",
    "nr_active_file",
    "nr_unevictable",
    "nr_mlock",
    "nr_anon_pages",
    "nr_mapped",
    "nr_file_pages",
    "nr_dirty",
    "nr_writeback",
    "nr_slab_reclaimable",
    "nr_slab_unreclaimable",
    "nr_page_table_pages",
    "nr_kernel_stack",
    "nr_unstable",
    "nr_bounce",
    "nr_vmscan_write",
    "nr_vmscan_immediate_reclaim",
    "nr_writeback_temp",
    "nr_isolated_anon",
    "nr_isolated_file",
    "nr_shmem",
    "nr_dirtied",
    "nr_written",
    "numa_hit",
    "numa_miss",
    "numa_foreign",
    "numa_interleave",
    "numa_local",
    "numa_other",
    "workingset_refault",
    "workingset_activate",
    "workingset_nodereclaim",
    "nr_anon_transparent_hugepages",
    "nr_free_cma",
    "nr_dirty_threshold",
    "nr_dirty_background_threshold",
    "pgpgin",
    "pgpgout",
    "pswpin",
    "pswpout",
    "pgalloc_dma",
    "pgalloc_dma32",
    "pgalloc_normal",
    "pgalloc_movable",
    "pgfree",
    "pgactivate",
    "pgdeactivate",
    "pgfault",
    "pgmajfault",
    "pgrefill_normal",
    "pgsteal_kswapd_normal",
    "pgscan_kswapd_normal",
];

/// `/proc/meminfo` gauge fields in kB (suffix `_meminfo`).
pub const MEMINFO_FIELDS: &[&str] = &[
    "MemTotal",
    "MemFree",
    "MemAvailable",
    "Buffers",
    "Cached",
    "SwapCached",
    "Active",
    "Inactive",
    "Active_anon",
    "Inactive_anon",
    "Active_file",
    "Inactive_file",
    "Unevictable",
    "Mlocked",
    "SwapTotal",
    "SwapFree",
    "Dirty",
    "Writeback",
    "AnonPages",
    "Mapped",
    "Shmem",
    "Slab",
    "SReclaimable",
    "SUnreclaim",
    "KernelStack",
    "PageTables",
    "NFS_Unstable",
    "Bounce",
    "WritebackTmp",
    "CommitLimit",
    "Committed_AS",
    "VmallocTotal",
    "VmallocUsed",
    "VmallocChunk",
    "HardwareCorrupted",
    "AnonHugePages",
    "HugePages_Total",
    "HugePages_Free",
    "HugePages_Rsvd",
    "HugePages_Surp",
    "Hugepagesize",
    "DirectMap4k",
    "DirectMap2M",
    "DirectMap1G",
];

/// Per-core `/proc/stat` jiffy fields (suffix `_procstat`, expanded per
/// core as `<field>_cpu<k>`).
pub const PROCSTAT_CORE_FIELDS: &[&str] =
    &["user", "nice", "sys", "idle", "iowait", "irq", "softirq"];

/// Aggregate `/proc/stat` fields.
pub const PROCSTAT_TOTAL_FIELDS: &[&str] = &[
    "cpu_user_total",
    "cpu_nice_total",
    "cpu_sys_total",
    "cpu_idle_total",
    "cpu_iowait_total",
    "intr",
    "ctxt",
    "procs_running",
    "procs_blocked",
    "softirq_total",
];

/// Cores per node on the simulated system (Haswell-era Cray XC node).
pub const CORES_PER_NODE: usize = 32;

/// Cray Aries NIC counters (suffix `_metric_set_nic`); the paper's Table 3
/// lists `AMO_PKTS`, `AMO_FLITS` and `PI_PKTS` among the top metrics.
pub const NIC_FIELDS: &[&str] = &[
    "AMO_PKTS",
    "AMO_FLITS",
    "BTE_RD_PKTS",
    "BTE_RD_FLITS",
    "BTE_WR_PKTS",
    "BTE_WR_FLITS",
    "FMA_PKTS",
    "FMA_FLITS",
    "PI_PKTS",
    "PI_FLITS",
    "NIC_RX_PKTS",
    "NIC_RX_FLITS",
    "NIC_TX_PKTS",
    "NIC_TX_FLITS",
    "ORB_PKTS",
    "ORB_FLITS",
    "RAT_PKTS",
    "RAT_FLITS",
    "WC_PKTS",
    "WC_FLITS",
];

/// `/proc/net/dev` fields, expanded per interface.
pub const NETDEV_FIELDS: &[&str] = &[
    "rx_bytes", "tx_bytes", "rx_packets", "tx_packets", "rx_errs", "tx_errs", "rx_drop",
    "tx_drop",
];

/// Monitored network interfaces.
pub const NETDEV_IFACES: &[&str] = &["eth0", "ipogif0"];

/// Load-average fields (suffix `_loadavg`).
pub const LOADAVG_FIELDS: &[&str] = &["load1", "load5", "load15", "runnable", "total_procs"];

/// Node power/thermal sensors (suffix `_power`).
pub const POWER_FIELDS: &[&str] = &["node_power_w", "node_energy_j", "cpu_temp_c", "mem_temp_c"];

/// Router-tile counter kinds used to fill the remainder of the catalog.
const RTR_COUNTERS: &[&str] = &["INQ_PKTS", "INQ_FLITS", "INQ_STALL"];

/// Build the full 562-metric catalog.
///
/// Deterministic: the same names in the same order every call, so
/// [`crate::metric::MetricId`]s are stable across processes.
pub fn taxonomist_catalog() -> MetricCatalog {
    let mut c = MetricCatalog::new();

    for f in VMSTAT_FIELDS {
        // vmstat counters live in the thousands-of-pages range.
        c.register(format!("{f}_vmstat"), MetricCategory::Vmstat, 8.0e3);
    }
    for f in MEMINFO_FIELDS {
        // meminfo gauges are kB on a 128 GB node.
        c.register(format!("{f}_meminfo"), MetricCategory::Meminfo, 2.0e6);
    }
    for f in PROCSTAT_TOTAL_FIELDS {
        c.register(format!("{f}_procstat"), MetricCategory::Procstat, 5.0e4);
    }
    for core in 0..CORES_PER_NODE {
        for f in PROCSTAT_CORE_FIELDS {
            c.register(
                format!("{f}_cpu{core}_procstat"),
                MetricCategory::Procstat,
                1.0e3,
            );
        }
    }
    for f in NIC_FIELDS {
        c.register(format!("{f}_metric_set_nic"), MetricCategory::Nic, 4.0e4);
    }
    for iface in NETDEV_IFACES {
        for f in NETDEV_FIELDS {
            c.register(
                format!("{f}_{iface}_procnetdev"),
                MetricCategory::Netdev,
                1.0e5,
            );
        }
    }
    for f in LOADAVG_FIELDS {
        c.register(format!("{f}_loadavg"), MetricCategory::Loadavg, 3.0e1);
    }
    for f in POWER_FIELDS {
        c.register(format!("{f}_power"), MetricCategory::Power, 3.0e2);
    }
    c.register("current_freemem", MetricCategory::Misc, 6.0e7);

    // Fill the remainder with Aries router-tile counters so the catalog
    // lands exactly on the dataset's 562 metrics.
    let mut tile = 0usize;
    'fill: loop {
        for counter in RTR_COUNTERS {
            if c.len() >= CATALOG_SIZE {
                break 'fill;
            }
            let row = tile / 8;
            let col = tile % 8;
            c.register(
                format!("{counter}_{row}_{col}_metric_set_rtr"),
                MetricCategory::Router,
                2.0e4,
            );
        }
        tile += 1;
    }

    debug_assert_eq!(c.len(), CATALOG_SIZE);
    c
}

/// A small catalog for unit tests and examples: one representative metric
/// per category (9 metrics, including `nr_mapped_vmstat`).
pub fn small_catalog() -> MetricCatalog {
    let mut c = MetricCatalog::new();
    c.register("nr_mapped_vmstat", MetricCategory::Vmstat, 8.0e3);
    c.register("Committed_AS_meminfo", MetricCategory::Meminfo, 2.0e6);
    c.register("cpu_user_total_procstat", MetricCategory::Procstat, 5.0e4);
    c.register("AMO_PKTS_metric_set_nic", MetricCategory::Nic, 4.0e4);
    c.register("INQ_PKTS_0_0_metric_set_rtr", MetricCategory::Router, 2.0e4);
    c.register("load1_loadavg", MetricCategory::Loadavg, 3.0e1);
    c.register("rx_bytes_ipogif0_procnetdev", MetricCategory::Netdev, 1.0e5);
    c.register("node_power_w_power", MetricCategory::Power, 3.0e2);
    c.register("current_freemem", MetricCategory::Misc, 6.0e7);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_util::FxHashSet;

    #[test]
    fn exactly_562_metrics() {
        let c = taxonomist_catalog();
        assert_eq!(c.len(), CATALOG_SIZE);
    }

    #[test]
    fn names_are_unique() {
        let c = taxonomist_catalog();
        let names: FxHashSet<&str> = c.ids().map(|id| c.name(id)).collect();
        assert_eq!(names.len(), c.len());
    }

    #[test]
    fn paper_table3_metrics_present() {
        let c = taxonomist_catalog();
        for name in [
            "nr_mapped_vmstat",
            "Committed_AS_meminfo",
            "nr_active_anon_vmstat",
            "nr_anon_pages_vmstat",
            "Active_meminfo",
            "Mapped_meminfo",
            "AnonPages_meminfo",
            "MemFree_meminfo",
            "PageTables_meminfo",
            "nr_page_table_pages_vmstat",
            "AMO_PKTS_metric_set_nic",
            "AMO_FLITS_metric_set_nic",
            "PI_PKTS_metric_set_nic",
        ] {
            assert!(c.id(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn deterministic_ids() {
        let a = taxonomist_catalog();
        let b = taxonomist_catalog();
        assert_eq!(a.id("nr_mapped_vmstat"), b.id("nr_mapped_vmstat"));
        assert_eq!(
            a.ids().map(|i| a.name(i).to_string()).collect::<Vec<_>>(),
            b.ids().map(|i| b.name(i).to_string()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn every_category_represented() {
        let c = taxonomist_catalog();
        for cat in MetricCategory::ALL {
            assert!(
                !c.ids_in(cat).is_empty(),
                "category {} missing",
                cat.name()
            );
        }
    }

    #[test]
    fn small_catalog_one_per_category() {
        let c = small_catalog();
        assert_eq!(c.len(), MetricCategory::ALL.len());
        for cat in MetricCategory::ALL {
            assert_eq!(c.ids_in(cat).len(), 1, "category {}", cat.name());
        }
    }
}
