//! Dense 1 Hz time series with NaN gaps.
//!
//! The LDMS collector samples every metric once per second; dropped samples
//! (collector hiccups, node jitter) are stored as NaN so window statistics
//! can skip them — the paper's fingerprints are means over whatever samples
//! actually landed in the window.

use serde::{Deserialize, Error, Serialize, Value};

use efd_util::stats::OnlineStats;

use crate::interval::Interval;

/// A dense, fixed-rate time series (default 1 Hz), starting at t = 0
/// relative to execution start. Element `k` is the sample for second `k`;
/// missing samples are NaN.
///
/// Serialized as a list of nullable numbers: JSON cannot represent NaN, so
/// gaps round-trip as `null`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    values: Vec<f64>,
}

// Serde representation: `Vec<Option<f64>>` (the vendored-serde equivalent
// of `#[serde(from/into = "Vec<Option<f64>>")]`).
impl Serialize for TimeSeries {
    fn to_value(&self) -> Value {
        Value::Arr(
            self.values
                .iter()
                .map(|&x| if x.is_finite() { Value::F64(x) } else { Value::Null })
                .collect(),
        )
    }
}

impl Deserialize for TimeSeries {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<Option<f64>>::from_value(v).map(TimeSeries::from)
    }
}

impl From<Vec<Option<f64>>> for TimeSeries {
    fn from(v: Vec<Option<f64>>) -> Self {
        Self {
            values: v.into_iter().map(|x| x.unwrap_or(f64::NAN)).collect(),
        }
    }
}

impl From<TimeSeries> for Vec<Option<f64>> {
    fn from(s: TimeSeries) -> Self {
        s.values
            .into_iter()
            .map(|x| if x.is_finite() { Some(x) } else { None })
            .collect()
    }
}

impl TimeSeries {
    /// Build from raw samples (one per second, NaN = missing).
    pub fn from_values(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// An all-missing series of `n` seconds.
    pub fn missing(n: usize) -> Self {
        Self {
            values: vec![f64::NAN; n],
        }
    }

    /// Number of seconds covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no samples at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw samples.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sample at second `t` (None out of range, NaN = missing).
    pub fn at(&self, t: u32) -> Option<f64> {
        self.values.get(t as usize).copied()
    }

    /// The samples inside `w`, truncated to the series length.
    pub fn window(&self, w: Interval) -> &[f64] {
        let start = (w.start as usize).min(self.values.len());
        let end = (w.end as usize).min(self.values.len());
        &self.values[start..end]
    }

    /// Statistics over the window, skipping missing (NaN) samples.
    pub fn window_stats(&self, w: Interval) -> OnlineStats {
        let mut s = OnlineStats::new();
        for &v in self.window(w) {
            if v.is_finite() {
                s.push(v);
            }
        }
        s
    }

    /// Mean over the window, skipping missing samples. NaN when the window
    /// holds no valid samples (e.g. the execution ended before the window).
    pub fn window_mean(&self, w: Interval) -> f64 {
        self.window_stats(w).mean()
    }

    /// Fraction of samples in the window that are present (non-NaN).
    pub fn window_coverage(&self, w: Interval) -> f64 {
        let slice = self.window(w);
        if w.duration() == 0 {
            return 0.0;
        }
        slice.iter().filter(|v| v.is_finite()).count() as f64 / w.duration() as f64
    }

    /// Statistics over the full series, skipping missing samples (used by
    /// the Taxonomist baseline's whole-execution features).
    pub fn full_stats(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        for &v in &self.values {
            if v.is_finite() {
                s.push(v);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> TimeSeries {
        TimeSeries::from_values((0..n).map(|i| i as f64).collect())
    }

    #[test]
    fn window_slicing() {
        let s = ramp(300);
        let w = s.window(Interval::new(60, 120));
        assert_eq!(w.len(), 60);
        assert_eq!(w[0], 60.0);
        assert_eq!(w[59], 119.0);
    }

    #[test]
    fn window_truncated_by_series_end() {
        let s = ramp(100);
        assert_eq!(s.window(Interval::new(60, 120)).len(), 40);
        assert_eq!(s.window(Interval::new(200, 300)).len(), 0);
        assert!(s.window_mean(Interval::new(200, 300)).is_nan());
    }

    #[test]
    fn window_mean_skips_missing() {
        let mut vals = vec![10.0; 100];
        vals[50] = f64::NAN;
        vals[51] = f64::NAN;
        let s = TimeSeries::from_values(vals);
        let w = Interval::new(40, 60);
        assert_eq!(s.window_mean(w), 10.0);
        assert!((s.window_coverage(w) - 18.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn mean_matches_arithmetic() {
        let s = ramp(300);
        // mean of 60..=119 is (60+119)/2
        assert!((s.window_mean(Interval::new(60, 120)) - 89.5).abs() < 1e-12);
    }

    #[test]
    fn all_missing_series() {
        let s = TimeSeries::missing(100);
        assert_eq!(s.len(), 100);
        assert!(s.window_mean(Interval::new(0, 50)).is_nan());
        assert_eq!(s.window_coverage(Interval::new(0, 50)), 0.0);
    }

    #[test]
    fn at_bounds() {
        let s = ramp(10);
        assert_eq!(s.at(0), Some(0.0));
        assert_eq!(s.at(9), Some(9.0));
        assert_eq!(s.at(10), None);
    }

    #[test]
    fn full_stats_cover_everything() {
        let s = ramp(100);
        let st = s.full_stats();
        assert_eq!(st.count(), 100);
        assert!((st.mean() - 49.5).abs() < 1e-12);
        assert_eq!(st.min(), 0.0);
        assert_eq!(st.max(), 99.0);
    }
}
