//! Time windows over an execution, in whole seconds.
//!
//! The paper fingerprints the interval between 60 and 120 seconds after the
//! start of an execution (written `[60:120]`) to skip the noisy
//! initialization phase while still reporting early. Intervals here are
//! half-open `[start, end)` in seconds, which at 1 Hz sampling yields exactly
//! `end - start` samples.

use std::fmt;

/// Half-open time window `[start, end)` in seconds since execution start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive start second.
    pub start: u32,
    /// Exclusive end second.
    pub end: u32,
}

serde::impl_serde_struct!(Interval { start, end });

impl Interval {
    /// The paper's default fingerprinting window, `[60:120]`.
    pub const PAPER_DEFAULT: Interval = Interval { start: 60, end: 120 };

    /// Construct a window; panics if `end <= start`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(end > start, "empty interval [{start}:{end}]");
        Self { start, end }
    }

    /// Window length in seconds (= number of 1 Hz samples).
    #[inline]
    pub fn duration(&self) -> u32 {
        self.end - self.start
    }

    /// Whether second `t` falls inside the window.
    #[inline]
    pub fn contains(&self, t: u32) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether two windows overlap.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Shift the window right by `offset` seconds.
    pub fn shifted(&self, offset: u32) -> Interval {
        Interval {
            start: self.start + offset,
            end: self.end + offset,
        }
    }

    /// Consecutive non-overlapping windows of length `len` covering
    /// `[0, horizon)`: `[0:len], [len:2len], …` (the paper's future-work
    /// "multiple time intervals" populate the dictionary with these).
    pub fn tiling(len: u32, horizon: u32) -> Vec<Interval> {
        assert!(len > 0, "window length must be positive");
        (0..horizon / len)
            .map(|k| Interval::new(k * len, (k + 1) * len))
            .collect()
    }
}

impl fmt::Display for Interval {
    /// Paper notation: `[60:120]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}:{}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default() {
        let w = Interval::PAPER_DEFAULT;
        assert_eq!(w.start, 60);
        assert_eq!(w.end, 120);
        assert_eq!(w.duration(), 60);
        assert_eq!(w.to_string(), "[60:120]");
    }

    #[test]
    fn containment_is_half_open() {
        let w = Interval::new(60, 120);
        assert!(!w.contains(59));
        assert!(w.contains(60));
        assert!(w.contains(119));
        assert!(!w.contains(120));
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn rejects_empty() {
        Interval::new(10, 10);
    }

    #[test]
    fn overlap() {
        let a = Interval::new(0, 60);
        let b = Interval::new(60, 120);
        let c = Interval::new(59, 61);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn shifting() {
        assert_eq!(Interval::new(0, 60).shifted(60), Interval::new(60, 120));
    }

    #[test]
    fn tiling_covers_horizon() {
        let t = Interval::tiling(60, 300);
        assert_eq!(t.len(), 5);
        assert_eq!(t[0], Interval::new(0, 60));
        assert_eq!(t[4], Interval::new(240, 300));
        for w in t.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn tiling_truncates_partial_window() {
        assert_eq!(Interval::tiling(60, 150).len(), 2);
    }
}
