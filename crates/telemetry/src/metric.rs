//! Metric identities and the metric catalog (interner).
//!
//! Metrics are referred to by dense [`MetricId`]s everywhere in the
//! workspace; the [`MetricCatalog`] owns the id ↔ name mapping plus the
//! per-metric metadata the workload models need (category, typical
//! magnitude, a stable salt for deterministic per-metric variation).

use serde::{Deserialize, Error, Serialize, Value};

use efd_util::rng::str_tag;
use efd_util::FxHashMap;

/// Dense identifier of a metric within a [`MetricCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricId(pub u32);

serde::impl_serde_newtype!(MetricId);

impl MetricId {
    /// Index into catalog-ordered storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Broad source category of a metric, mirroring the LDMS sampler plugins in
/// the Taxonomist dataset. The workload models key their behavior (scale,
/// app-separability, noise level) off this category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricCategory {
    /// `/proc/vmstat` counters (pages, faults, …), suffix `_vmstat`.
    Vmstat,
    /// `/proc/meminfo` gauges in kB, suffix `_meminfo`.
    Meminfo,
    /// `/proc/stat` CPU jiffies, per core and aggregate, suffix `_procstat`.
    Procstat,
    /// Cray Aries NIC counters, suffix `_metric_set_nic`.
    Nic,
    /// Cray Aries router-tile counters, suffix `_metric_set_rtr`.
    Router,
    /// Load averages and process counts, suffix `_loadavg`.
    Loadavg,
    /// `/proc/net/dev` interface counters, suffix `_procnetdev`.
    Netdev,
    /// Node energy/power/thermal sensors, suffix `_power`.
    Power,
    /// Miscellaneous singleton gauges (e.g. `current_freemem`).
    Misc,
}

impl MetricCategory {
    /// All categories, in catalog order.
    pub const ALL: [MetricCategory; 9] = [
        MetricCategory::Vmstat,
        MetricCategory::Meminfo,
        MetricCategory::Procstat,
        MetricCategory::Nic,
        MetricCategory::Router,
        MetricCategory::Loadavg,
        MetricCategory::Netdev,
        MetricCategory::Power,
        MetricCategory::Misc,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            MetricCategory::Vmstat => "vmstat",
            MetricCategory::Meminfo => "meminfo",
            MetricCategory::Procstat => "procstat",
            MetricCategory::Nic => "nic",
            MetricCategory::Router => "router",
            MetricCategory::Loadavg => "loadavg",
            MetricCategory::Netdev => "netdev",
            MetricCategory::Power => "power",
            MetricCategory::Misc => "misc",
        }
    }
}

serde::impl_serde_unit_enum!(MetricCategory {
    Vmstat,
    Meminfo,
    Procstat,
    Nic,
    Router,
    Loadavg,
    Netdev,
    Power,
    Misc,
});

/// Metadata for one metric.
#[derive(Debug, Clone)]
pub struct MetricInfo {
    /// Full metric name as it appears in the dataset,
    /// e.g. `nr_mapped_vmstat` or `AMO_PKTS_metric_set_nic`.
    pub name: String,
    /// Source category.
    pub category: MetricCategory,
    /// Typical magnitude of the metric's values (used by workload models to
    /// place app-specific levels on a realistic scale).
    pub base_scale: f64,
    /// Stable 64-bit salt derived from the name; workload models mix this
    /// into seeds so every metric gets its own deterministic behavior.
    pub salt: u64,
}

serde::impl_serde_struct!(MetricInfo {
    name,
    category,
    base_scale,
    salt,
});

/// Owning interner for metric names and metadata.
///
/// Ids are assigned densely in insertion order, so `Vec`s indexed by
/// [`MetricId::index`] are the canonical per-metric storage.
#[derive(Debug, Clone, Default)]
pub struct MetricCatalog {
    infos: Vec<MetricInfo>,
    by_name: FxHashMap<String, MetricId>,
}

// The name index is skipped on the wire (serde's `#[serde(skip)]`):
// deserialized catalogs start with an empty index until
// [`MetricCatalog::rebuild_index`] runs.
impl Serialize for MetricCatalog {
    fn to_value(&self) -> Value {
        Value::Obj(vec![("infos".to_string(), self.infos.to_value())])
    }
}

impl Deserialize for MetricCatalog {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let infos = v
            .get("infos")
            .ok_or_else(|| Error::msg("missing field `infos`"))?;
        Ok(MetricCatalog {
            infos: Vec::<MetricInfo>::from_value(infos)?,
            by_name: FxHashMap::default(),
        })
    }
}

impl MetricCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a metric; returns the existing id if the name is already
    /// present (metadata of the first registration wins).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        category: MetricCategory,
        base_scale: f64,
    ) -> MetricId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = MetricId(self.infos.len() as u32);
        let salt = str_tag(&name);
        self.by_name.insert(name.clone(), id);
        self.infos.push(MetricInfo {
            name,
            category,
            base_scale,
            salt,
        });
        id
    }

    /// Look up a metric by its full name.
    pub fn id(&self, name: &str) -> Option<MetricId> {
        self.by_name.get(name).copied()
    }

    /// Metadata for an id. Panics on a foreign id (ids are only minted by
    /// this catalog).
    pub fn info(&self, id: MetricId) -> &MetricInfo {
        &self.infos[id.index()]
    }

    /// Name for an id.
    pub fn name(&self, id: MetricId) -> &str {
        &self.info(id).name
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// All ids, in catalog order.
    pub fn ids(&self) -> impl Iterator<Item = MetricId> + '_ {
        (0..self.infos.len() as u32).map(MetricId)
    }

    /// All ids in a category.
    pub fn ids_in(&self, category: MetricCategory) -> Vec<MetricId> {
        self.ids()
            .filter(|&id| self.info(id).category == category)
            .collect()
    }

    /// Rebuild the name index (needed after deserialization, where the map
    /// is skipped).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .infos
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.clone(), MetricId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut c = MetricCatalog::new();
        let a = c.register("nr_mapped_vmstat", MetricCategory::Vmstat, 7000.0);
        let b = c.register("MemFree_meminfo", MetricCategory::Meminfo, 6.0e7);
        assert_eq!(c.len(), 2);
        assert_eq!(c.id("nr_mapped_vmstat"), Some(a));
        assert_eq!(c.id("MemFree_meminfo"), Some(b));
        assert_eq!(c.id("nonexistent"), None);
        assert_eq!(c.name(a), "nr_mapped_vmstat");
        assert_eq!(c.info(b).category, MetricCategory::Meminfo);
    }

    #[test]
    fn duplicate_registration_returns_same_id() {
        let mut c = MetricCatalog::new();
        let a = c.register("x_vmstat", MetricCategory::Vmstat, 1.0);
        let b = c.register("x_vmstat", MetricCategory::Vmstat, 999.0);
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
        // first registration's metadata wins
        assert_eq!(c.info(a).base_scale, 1.0);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut c = MetricCatalog::new();
        for i in 0..10 {
            c.register(format!("m{i}_vmstat"), MetricCategory::Vmstat, 1.0);
        }
        let ids: Vec<u32> = c.ids().map(|m| m.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn salts_differ_per_name() {
        let mut c = MetricCatalog::new();
        let a = c.register("a_vmstat", MetricCategory::Vmstat, 1.0);
        let b = c.register("b_vmstat", MetricCategory::Vmstat, 1.0);
        assert_ne!(c.info(a).salt, c.info(b).salt);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut c = MetricCatalog::new();
        c.register("a_vmstat", MetricCategory::Vmstat, 1.0);
        let json = serde_json::to_string(&c).unwrap();
        let mut back: MetricCatalog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id("a_vmstat"), None); // index skipped by serde
        back.rebuild_index();
        assert_eq!(back.id("a_vmstat"), Some(MetricId(0)));
    }

    #[test]
    fn category_filter() {
        let mut c = MetricCatalog::new();
        c.register("a_vmstat", MetricCategory::Vmstat, 1.0);
        c.register("b_meminfo", MetricCategory::Meminfo, 1.0);
        c.register("c_vmstat", MetricCategory::Vmstat, 1.0);
        assert_eq!(c.ids_in(MetricCategory::Vmstat).len(), 2);
        assert_eq!(c.ids_in(MetricCategory::Nic).len(), 0);
    }
}
