//! The 1 Hz LDMS-style collector.
//!
//! LDMS samples every metric on every node once per second. Real collectors
//! exhibit two artifacts the EFD must tolerate (and our tests exercise):
//! small *timing jitter* (the sample lands at `k·1s + ε`), and occasional
//! *dropouts* (a missed sample). [`LdmsCollector`] reproduces both, pulling
//! values from a [`MetricSource`] — the bridge trait implemented by the
//! workload models.

use efd_util::rng::SplitMix64;

use crate::series::TimeSeries;

/// A source of ground-truth metric values: the signal the collector
/// *would* read at time `t` (seconds since execution start).
pub trait MetricSource {
    /// Instantaneous value at time `t`.
    fn value_at(&mut self, t: f64) -> f64;
}

impl<F: FnMut(f64) -> f64> MetricSource for F {
    fn value_at(&mut self, t: f64) -> f64 {
        self(t)
    }
}

/// Collector behavior knobs.
#[derive(Debug, Clone, Copy)]
pub struct CollectorConfig {
    /// Standard deviation of sampling-time jitter, seconds.
    pub jitter_sd_s: f64,
    /// Probability that a sample is dropped entirely (stored as NaN).
    pub dropout_prob: f64,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        Self {
            jitter_sd_s: 0.05,
            dropout_prob: 0.001,
        }
    }
}

impl CollectorConfig {
    /// A perfectly clean collector (no jitter, no dropouts) — for tests.
    pub fn ideal() -> Self {
        Self {
            jitter_sd_s: 0.0,
            dropout_prob: 0.0,
        }
    }
}

/// Simulated LDMS collector for one (node, metric) stream.
#[derive(Debug, Clone)]
pub struct LdmsCollector {
    cfg: CollectorConfig,
    rng: SplitMix64,
}

impl LdmsCollector {
    /// Collector with the given config; `seed` controls jitter/dropout
    /// realizations.
    pub fn new(cfg: CollectorConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: SplitMix64::new(seed),
        }
    }

    /// Sample `source` once per second for `duration_s` seconds.
    pub fn collect(&mut self, source: &mut dyn MetricSource, duration_s: u32) -> TimeSeries {
        let mut values = Vec::with_capacity(duration_s as usize);
        for k in 0..duration_s {
            if self.cfg.dropout_prob > 0.0 && self.rng.next_f64() < self.cfg.dropout_prob {
                values.push(f64::NAN);
                continue;
            }
            let jitter = if self.cfg.jitter_sd_s > 0.0 {
                self.rng.next_gaussian() * self.cfg.jitter_sd_s
            } else {
                0.0
            };
            // Sampling time cannot go negative.
            let t = (k as f64 + jitter).max(0.0);
            values.push(source.value_at(t));
        }
        TimeSeries::from_values(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    #[test]
    fn ideal_collector_samples_on_grid() {
        let mut c = LdmsCollector::new(CollectorConfig::ideal(), 1);
        let s = c.collect(&mut |t: f64| t * 2.0, 10);
        assert_eq!(s.len(), 10);
        for k in 0..10u32 {
            assert_eq!(s.at(k), Some(k as f64 * 2.0));
        }
    }

    #[test]
    fn dropouts_leave_nans() {
        let cfg = CollectorConfig {
            jitter_sd_s: 0.0,
            dropout_prob: 0.5,
        };
        let mut c = LdmsCollector::new(cfg, 2);
        let s = c.collect(&mut |_t: f64| 1.0, 1000);
        let missing = s.values().iter().filter(|v| v.is_nan()).count();
        assert!(
            (300..700).contains(&missing),
            "expected ~500 dropouts, got {missing}"
        );
        // The surviving samples are untouched.
        assert!(s
            .values()
            .iter()
            .filter(|v| v.is_finite())
            .all(|&v| v == 1.0));
        // And the window mean still recovers the signal.
        assert_eq!(s.window_mean(Interval::new(0, 1000)), 1.0);
    }

    #[test]
    fn jitter_perturbs_sampling_times() {
        let cfg = CollectorConfig {
            jitter_sd_s: 0.1,
            dropout_prob: 0.0,
        };
        let mut c = LdmsCollector::new(cfg, 3);
        // Identity source: stored value == actual sampling time.
        let s = c.collect(&mut |t: f64| t, 1000);
        let mut devs: Vec<f64> = (0..1000u32)
            .map(|k| (s.at(k).unwrap() - k as f64).abs())
            .collect();
        devs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(devs[990] < 0.5, "jitter too large: {}", devs[990]);
        assert!(devs[500] > 0.0, "no jitter at all");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CollectorConfig::default();
        let collect = |seed| {
            LdmsCollector::new(cfg, seed)
                .collect(&mut |t: f64| t.sin(), 100)
        };
        let (a, b, c) = (collect(9), collect(9), collect(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn closure_sources_work() {
        let mut phase = 0.0f64;
        let mut source = move |_t: f64| {
            phase += 1.0;
            phase
        };
        let mut c = LdmsCollector::new(CollectorConfig::ideal(), 0);
        let s = c.collect(&mut source, 3);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
    }
}
