//! Simulated LDMS-style monitoring substrate.
//!
//! The paper evaluates the EFD on telemetry collected by LDMS (the
//! Lightweight Distributed Metric Service, Agelastos et al., SC'14): for
//! every compute node of every job, 562 system metrics are sampled once per
//! second and labeled with the application that produced them. That dataset
//! is not redistributable here, so this crate rebuilds the *substrate*: the
//! metric namespace, the sampling discipline, the time-series containers,
//! and the windowing/streaming machinery that both the EFD and the
//! Taxonomist baseline consume. The companion `efd-workload` crate supplies
//! the application behavior models that drive these samplers.
//!
//! Layout:
//!
//! * [`metric`] — interned metric identities ([`MetricId`]) and the catalog.
//! * [`catalog`] — the 562-metric LDMS namespace used by the paper's dataset
//!   (vmstat, meminfo, procstat, Cray Aries NIC/router counters, …).
//! * [`interval`] — `[start:end]` second windows, e.g. the paper's `[60:120]`.
//! * [`series`] — dense 1 Hz time series with NaN gaps and window statistics.
//! * [`trace`] — per-node, per-metric series for one execution, plus labels.
//! * [`sampler`] — the 1 Hz collector with timing jitter and dropouts.
//! * [`noise`] — measurement-noise processes (Gaussian, OU drift, spikes).
//! * [`streaming`] — online window aggregation for during-execution
//!   recognition (the paper's low-latency motivation).
//! * [`storage`] — JSON and compact binary (de)serialization of traces.
//! * [`prom`] — Prometheus text-exposition primitives (counters, gauges,
//!   explicit-bucket histograms) backing the serving daemon's `/metrics`
//!   endpoint.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod csv;
pub mod interval;
pub mod metric;
pub mod noise;
pub mod prom;
pub mod sampler;
pub mod series;
pub mod storage;
pub mod streaming;
pub mod trace;

pub use catalog::taxonomist_catalog;
pub use interval::Interval;
pub use metric::{MetricCatalog, MetricCategory, MetricId, MetricInfo};
pub use sampler::{CollectorConfig, LdmsCollector, MetricSource};
pub use series::TimeSeries;
pub use trace::{AppLabel, ExecutionTrace, MetricSelection, NodeId, NodeTrace};
