//! Execution traces: the labeled unit of the dataset.
//!
//! One [`ExecutionTrace`] is one job run: a label (application + input
//! size), and for every allocated node a series per selected metric. The
//! paper's dataset has 4-node allocations (32 for the large inputs) with all
//! 562 metrics; our lazy materialization usually selects only the metrics an
//! experiment needs, which [`MetricSelection`] tracks explicitly.

use std::fmt;

use crate::metric::MetricId;
use crate::series::TimeSeries;

/// Node index within one execution's allocation (0-based, as in the paper's
/// Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

serde::impl_serde_newtype!(NodeId);

impl NodeId {
    /// Index into per-node storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Application + input-size label, e.g. `ft X` (the paper's value format).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppLabel {
    /// Application name, lowercase as in the paper's Table 4 (`ft`, `sp`,
    /// `miniAMR`, …).
    pub app: String,
    /// Input size name (`X`, `Y`, `Z`, `L`).
    pub input: String,
}

impl AppLabel {
    /// Construct a label.
    pub fn new(app: impl Into<String>, input: impl Into<String>) -> Self {
        Self {
            app: app.into(),
            input: input.into(),
        }
    }
}

impl fmt::Display for AppLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.app, self.input)
    }
}

serde::impl_serde_struct!(AppLabel { app, input });

/// Which metrics (and in which order) a trace's per-node series correspond
/// to. Positions returned by [`MetricSelection::position`] index into
/// [`NodeTrace::series`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSelection {
    ids: Vec<MetricId>,
}

serde::impl_serde_struct!(MetricSelection { ids });

impl MetricSelection {
    /// Selection over the given metrics, in the given order.
    pub fn new(ids: Vec<MetricId>) -> Self {
        Self { ids }
    }

    /// Selection of a single metric.
    pub fn single(id: MetricId) -> Self {
        Self { ids: vec![id] }
    }

    /// The selected ids, in storage order.
    pub fn ids(&self) -> &[MetricId] {
        &self.ids
    }

    /// Number of selected metrics.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Storage position of a metric in this selection (linear scan — the
    /// selections used in practice hold a handful of metrics; experiments
    /// that sweep all 562 use positions directly).
    pub fn position(&self, id: MetricId) -> Option<usize> {
        self.ids.iter().position(|&m| m == id)
    }
}

/// Per-node telemetry of one execution: `series[p]` is the series for the
/// metric at position `p` of the owning trace's [`MetricSelection`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTrace {
    /// Node index within the allocation.
    pub node: NodeId,
    /// One series per selected metric.
    pub series: Vec<TimeSeries>,
}

serde::impl_serde_struct!(NodeTrace { node, series });

/// One labeled job execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    /// Stable identifier (derived from the dataset seed path).
    pub exec_id: u64,
    /// Ground-truth label.
    pub label: AppLabel,
    /// Which metrics the per-node series cover.
    pub selection: MetricSelection,
    /// Telemetry for every allocated node.
    pub nodes: Vec<NodeTrace>,
    /// Wall-clock duration in seconds (series may be shorter only if the
    /// collector died; normally equal to every series length).
    pub duration_s: u32,
}

serde::impl_serde_struct!(ExecutionTrace {
    exec_id,
    label,
    selection,
    nodes,
    duration_s,
});

impl ExecutionTrace {
    /// Number of allocated nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Series for (node, metric), if both exist in this trace.
    pub fn series(&self, node: NodeId, metric: MetricId) -> Option<&TimeSeries> {
        let pos = self.selection.position(metric)?;
        self.nodes.get(node.index())?.series.get(pos)
    }

    /// Iterate `(node, series)` for one metric.
    pub fn per_node_series(
        &self,
        metric: MetricId,
    ) -> impl Iterator<Item = (NodeId, &TimeSeries)> + '_ {
        let pos = self.selection.position(metric);
        self.nodes.iter().filter_map(move |n| {
            let p = pos?;
            n.series.get(p).map(|s| (n.node, s))
        })
    }

    /// Total number of stored samples (all nodes × metrics × seconds); the
    /// paper's data-volume comparisons count these.
    pub fn sample_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.series.iter().map(|s| s.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> ExecutionTrace {
        let m0 = MetricId(0);
        let m1 = MetricId(1);
        let selection = MetricSelection::new(vec![m0, m1]);
        let nodes = (0..3)
            .map(|n| NodeTrace {
                node: NodeId(n),
                series: vec![
                    TimeSeries::from_values(vec![n as f64; 10]),
                    TimeSeries::from_values(vec![100.0 + n as f64; 10]),
                ],
            })
            .collect();
        ExecutionTrace {
            exec_id: 7,
            label: AppLabel::new("ft", "X"),
            selection,
            nodes,
            duration_s: 10,
        }
    }

    #[test]
    fn label_display_matches_paper_format() {
        assert_eq!(AppLabel::new("ft", "X").to_string(), "ft X");
        assert_eq!(AppLabel::new("miniAMR", "Z").to_string(), "miniAMR Z");
    }

    #[test]
    fn series_lookup() {
        let t = toy_trace();
        let s = t.series(NodeId(2), MetricId(1)).unwrap();
        assert_eq!(s.values()[0], 102.0);
        assert!(t.series(NodeId(3), MetricId(1)).is_none());
        assert!(t.series(NodeId(0), MetricId(9)).is_none());
    }

    #[test]
    fn per_node_iteration_order() {
        let t = toy_trace();
        let nodes: Vec<u16> = t.per_node_series(MetricId(0)).map(|(n, _)| n.0).collect();
        assert_eq!(nodes, vec![0, 1, 2]);
    }

    #[test]
    fn per_node_missing_metric_is_empty() {
        let t = toy_trace();
        assert_eq!(t.per_node_series(MetricId(5)).count(), 0);
    }

    #[test]
    fn sample_count() {
        let t = toy_trace();
        assert_eq!(t.sample_count(), 3 * 2 * 10);
    }

    #[test]
    fn selection_position() {
        let sel = MetricSelection::new(vec![MetricId(4), MetricId(9)]);
        assert_eq!(sel.position(MetricId(9)), Some(1));
        assert_eq!(sel.position(MetricId(1)), None);
        assert_eq!(sel.len(), 2);
    }
}
