//! Trace (de)serialization: JSON for inspectability, a compact binary
//! format for bulk storage.
//!
//! The paper stresses that MODA solutions must "avoid heavy storage
//! requirements"; the binary codec stores series as raw little-endian f64
//! runs with a small header (~8 bytes/sample, vs ~20 for JSON).

use std::fmt;
use std::io::{self, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::trace::{AppLabel, ExecutionTrace, MetricSelection, NodeId, NodeTrace};
use crate::metric::MetricId;
use crate::series::TimeSeries;

/// Magic bytes of the binary trace format.
const MAGIC: &[u8; 4] = b"EFDT";
/// Binary format version.
const VERSION: u16 = 1;

/// Errors arising from trace storage.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// JSON encode/decode failure.
    Json(serde_json::Error),
    /// Binary format violation.
    Format(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Json(e) => write!(f, "json error: {e}"),
            StorageError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<serde_json::Error> for StorageError {
    fn from(e: serde_json::Error) -> Self {
        StorageError::Json(e)
    }
}

/// Serialize a trace to pretty JSON.
pub fn to_json(trace: &ExecutionTrace) -> Result<String, StorageError> {
    Ok(serde_json::to_string_pretty(trace)?)
}

/// Deserialize a trace from JSON.
pub fn from_json(json: &str) -> Result<ExecutionTrace, StorageError> {
    Ok(serde_json::from_str(json)?)
}

/// Encode a trace to the compact binary format.
pub fn to_bytes(trace: &ExecutionTrace) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(trace.exec_id);
    put_str(&mut buf, &trace.label.app);
    put_str(&mut buf, &trace.label.input);
    buf.put_u32_le(trace.duration_s);
    buf.put_u32_le(trace.selection.ids().len() as u32);
    for id in trace.selection.ids() {
        buf.put_u32_le(id.0);
    }
    buf.put_u32_le(trace.nodes.len() as u32);
    for node in &trace.nodes {
        buf.put_u16_le(node.node.0);
        buf.put_u32_le(node.series.len() as u32);
        for s in &node.series {
            buf.put_u32_le(s.len() as u32);
            for &v in s.values() {
                buf.put_f64_le(v);
            }
        }
    }
    buf.freeze()
}

/// Decode a trace from the compact binary format.
pub fn from_bytes(mut buf: &[u8]) -> Result<ExecutionTrace, StorageError> {
    fn need(buf: &[u8], n: usize, what: &str) -> Result<(), StorageError> {
        if buf.remaining() < n {
            return Err(StorageError::Format(format!("truncated {what}")));
        }
        Ok(())
    }

    need(buf, 6, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StorageError::Format("bad magic".into()));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(StorageError::Format(format!("unsupported version {version}")));
    }
    need(buf, 8, "exec_id")?;
    let exec_id = buf.get_u64_le();
    let app = get_str(&mut buf)?;
    let input = get_str(&mut buf)?;
    need(buf, 8, "duration/selection")?;
    let duration_s = buf.get_u32_le();
    let n_metrics = buf.get_u32_le() as usize;
    need(buf, n_metrics * 4, "selection ids")?;
    let ids: Vec<MetricId> = (0..n_metrics).map(|_| MetricId(buf.get_u32_le())).collect();
    need(buf, 4, "node count")?;
    let n_nodes = buf.get_u32_le() as usize;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        need(buf, 6, "node header")?;
        let node = NodeId(buf.get_u16_le());
        let n_series = buf.get_u32_le() as usize;
        if n_series != n_metrics {
            return Err(StorageError::Format(format!(
                "node {node} has {n_series} series, selection has {n_metrics}"
            )));
        }
        let mut series = Vec::with_capacity(n_series);
        for _ in 0..n_series {
            need(buf, 4, "series length")?;
            let len = buf.get_u32_le() as usize;
            need(buf, len * 8, "series values")?;
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(buf.get_f64_le());
            }
            series.push(TimeSeries::from_values(values));
        }
        nodes.push(NodeTrace { node, series });
    }
    Ok(ExecutionTrace {
        exec_id,
        label: AppLabel::new(app, input),
        selection: MetricSelection::new(ids),
        nodes,
        duration_s,
    })
}

/// Write a trace in binary form to a writer.
pub fn write_binary<W: Write>(trace: &ExecutionTrace, mut w: W) -> Result<(), StorageError> {
    w.write_all(&to_bytes(trace))?;
    Ok(())
}

/// Read a binary trace from a reader.
pub fn read_binary<R: Read>(mut r: R) -> Result<ExecutionTrace, StorageError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    from_bytes(&data)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, StorageError> {
    if buf.remaining() < 2 {
        return Err(StorageError::Format("truncated string length".into()));
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(StorageError::Format("truncated string body".into()));
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| StorageError::Format("invalid utf-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> ExecutionTrace {
        ExecutionTrace {
            exec_id: 42,
            label: AppLabel::new("sp", "Y"),
            selection: MetricSelection::new(vec![MetricId(3), MetricId(11)]),
            nodes: (0..2)
                .map(|n| NodeTrace {
                    node: NodeId(n),
                    series: vec![
                        TimeSeries::from_values(vec![1.0, f64::NAN, 3.0]),
                        TimeSeries::from_values(vec![7.5; 3]),
                    ],
                })
                .collect(),
            duration_s: 3,
        }
    }

    #[test]
    fn json_roundtrip() {
        let t = toy_trace();
        let json = to_json(&t).unwrap();
        let back = from_json(&json).unwrap();
        // NaN != NaN, so compare structure then values positionally.
        assert_eq!(back.exec_id, t.exec_id);
        assert_eq!(back.label, t.label);
        assert_eq!(back.selection, t.selection);
        assert_eq!(back.nodes.len(), 2);
    }

    #[test]
    fn binary_roundtrip_preserves_nan_gaps() {
        let t = toy_trace();
        let bytes = to_bytes(&t);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.exec_id, t.exec_id);
        assert_eq!(back.label, t.label);
        assert_eq!(back.duration_s, t.duration_s);
        let s = back.series(NodeId(0), MetricId(3)).unwrap();
        assert_eq!(s.values()[0], 1.0);
        assert!(s.values()[1].is_nan());
        assert_eq!(s.values()[2], 3.0);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut bytes = to_bytes(&toy_trace()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes(&bytes),
            Err(StorageError::Format(m)) if m.contains("magic")
        ));
    }

    #[test]
    fn binary_rejects_truncation() {
        let bytes = to_bytes(&toy_trace());
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn binary_rejects_wrong_version() {
        let mut bytes = to_bytes(&toy_trace()).to_vec();
        bytes[4] = 99;
        assert!(matches!(
            from_bytes(&bytes),
            Err(StorageError::Format(m)) if m.contains("version")
        ));
    }

    #[test]
    fn writer_reader_api() {
        let t = toy_trace();
        let mut sink = Vec::new();
        write_binary(&t, &mut sink).unwrap();
        let back = read_binary(&sink[..]).unwrap();
        assert_eq!(back.label, t.label);
    }

    #[test]
    fn binary_is_denser_than_json() {
        let big = ExecutionTrace {
            exec_id: 1,
            label: AppLabel::new("ft", "X"),
            selection: MetricSelection::new(vec![MetricId(0)]),
            nodes: vec![NodeTrace {
                node: NodeId(0),
                series: vec![TimeSeries::from_values(
                    (0..1000).map(|i| i as f64 * 1.37).collect(),
                )],
            }],
            duration_s: 1000,
        };
        let bin = to_bytes(&big).len();
        let json = to_json(&big).unwrap().len();
        assert!(bin < json / 2, "binary {bin} vs json {json}");
    }
}
