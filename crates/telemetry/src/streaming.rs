//! Online window aggregation for during-execution recognition.
//!
//! The paper's motivation is *low-latency* recognition: the EFD answers
//! within the first two minutes, while related work waits for the whole
//! execution. This module provides the streaming half of that story: feed
//! samples as they arrive, and the aggregator emits a window summary the
//! moment the fingerprinting interval closes — no buffering of raw series.

use efd_util::stats::OnlineStats;

use crate::interval::Interval;

/// Summary of a closed window: what a fingerprint is built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSummary {
    /// The window that closed.
    pub interval: Interval,
    /// Statistics over samples that landed inside the window.
    pub stats: OnlineStats,
}

impl WindowSummary {
    /// Mean over the window (the EFD's statistical feature).
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }
}

/// Accumulates samples for one `(node, metric)` stream against a single
/// window; emits the summary exactly once, when the first sample at or past
/// the window end arrives (or on [`WindowAggregator::finish`]).
#[derive(Debug, Clone)]
pub struct WindowAggregator {
    interval: Interval,
    stats: OnlineStats,
    emitted: bool,
}

impl WindowAggregator {
    /// Aggregator for `interval`.
    pub fn new(interval: Interval) -> Self {
        Self {
            interval,
            stats: OnlineStats::new(),
            emitted: false,
        }
    }

    /// The window being aggregated.
    pub fn interval(&self) -> Interval {
        self.interval
    }

    /// Whether the summary has been emitted.
    pub fn is_done(&self) -> bool {
        self.emitted
    }

    /// Feed one sample at second `t` (monotone non-decreasing). Returns the
    /// summary when the window closes.
    pub fn push(&mut self, t: u32, value: f64) -> Option<WindowSummary> {
        if self.emitted {
            return None;
        }
        if t >= self.interval.end {
            self.emitted = true;
            return Some(WindowSummary {
                interval: self.interval,
                stats: self.stats,
            });
        }
        if self.interval.contains(t) && value.is_finite() {
            self.stats.push(value);
        }
        None
    }

    /// Flush the summary for a stream that ended before the window closed
    /// (e.g. the job finished early). Returns None if already emitted.
    pub fn finish(&mut self) -> Option<WindowSummary> {
        if self.emitted {
            return None;
        }
        self.emitted = true;
        Some(WindowSummary {
            interval: self.interval,
            stats: self.stats,
        })
    }
}

/// Aggregates one stream against a whole tiling of windows (the paper's
/// future-work "multiple time intervals"), emitting each summary as its
/// window closes.
#[derive(Debug, Clone)]
pub struct MultiWindowAggregator {
    windows: Vec<WindowAggregator>,
}

impl MultiWindowAggregator {
    /// Aggregator over the given windows (need not be disjoint).
    pub fn new(intervals: Vec<Interval>) -> Self {
        Self {
            windows: intervals.into_iter().map(WindowAggregator::new).collect(),
        }
    }

    /// Feed one sample; returns every summary whose window just closed.
    pub fn push(&mut self, t: u32, value: f64) -> Vec<WindowSummary> {
        self.windows
            .iter_mut()
            .filter_map(|w| w.push(t, value))
            .collect()
    }

    /// Flush all still-open windows.
    pub fn finish(&mut self) -> Vec<WindowSummary> {
        self.windows.iter_mut().filter_map(|w| w.finish()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_exactly_once_when_window_closes() {
        let mut agg = WindowAggregator::new(Interval::new(60, 120));
        for t in 0..120 {
            assert!(agg.push(t, t as f64).is_none(), "early emit at {t}");
        }
        let s = agg.push(120, 0.0).expect("summary at window close");
        assert_eq!(s.stats.count(), 60);
        assert!((s.mean() - 89.5).abs() < 1e-12);
        assert!(agg.push(121, 0.0).is_none());
        assert!(agg.finish().is_none());
    }

    #[test]
    fn pre_window_samples_ignored() {
        let mut agg = WindowAggregator::new(Interval::new(60, 120));
        for t in 0..60 {
            agg.push(t, 1e9);
        }
        for t in 60..120 {
            agg.push(t, 5.0);
        }
        let s = agg.push(120, 0.0).unwrap();
        assert_eq!(s.mean(), 5.0);
    }

    #[test]
    fn nan_samples_skipped() {
        let mut agg = WindowAggregator::new(Interval::new(0, 4));
        agg.push(0, 1.0);
        agg.push(1, f64::NAN);
        agg.push(2, 3.0);
        agg.push(3, f64::NAN);
        let s = agg.push(4, 0.0).unwrap();
        assert_eq!(s.stats.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn finish_flushes_partial_window() {
        let mut agg = WindowAggregator::new(Interval::new(60, 120));
        for t in 60..90 {
            agg.push(t, 2.0);
        }
        let s = agg.finish().unwrap();
        assert_eq!(s.stats.count(), 30);
        assert_eq!(s.mean(), 2.0);
        assert!(agg.finish().is_none());
    }

    #[test]
    fn multi_window_tiling() {
        let mut agg = MultiWindowAggregator::new(Interval::tiling(60, 180));
        let mut emitted = Vec::new();
        for t in 0..=180 {
            emitted.extend(agg.push(t, 1.0));
        }
        assert_eq!(emitted.len(), 3);
        assert_eq!(emitted[0].interval, Interval::new(0, 60));
        assert_eq!(emitted[2].interval, Interval::new(120, 180));
        assert!(agg.finish().is_empty());
    }

    #[test]
    fn multi_window_finish_flushes_open_windows() {
        let mut agg = MultiWindowAggregator::new(Interval::tiling(60, 300));
        for t in 0..150 {
            agg.push(t, 1.0);
        }
        // windows [0:60] and [60:120] already closed; [120:180] onward open.
        let rest = agg.finish();
        assert_eq!(rest.len(), 3);
        assert_eq!(rest[0].stats.count(), 30); // [120:180] got 30 samples
        assert_eq!(rest[1].stats.count(), 0);
        assert_eq!(rest[2].stats.count(), 0);
    }
}
