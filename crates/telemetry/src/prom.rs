//! Prometheus text-exposition primitives for the serving daemon.
//!
//! The network daemon (`efd serve --listen`) exports its operational
//! state — request counters, verdict tallies, latency histograms, queue
//! depth — in the Prometheus text format (version 0.0.4), the lingua
//! franca of HPC/cloud monitoring stacks. External crates are not
//! available offline, so this module is a deliberately small, dependency
//! free implementation of the three metric kinds the daemon needs:
//!
//! * [`Counter`] — monotonically increasing `u64`.
//! * [`Gauge`] — a settable `i64` (queue depth, active connections,
//!   snapshot generation).
//! * [`FloatGauge`] — a settable `f64` for fractional state (rates,
//!   ratios); stored as atomic bits, rendered as a `gauge`.
//! * [`Histogram`] — explicit-bucket latency histogram with a
//!   CAS-maintained `f64` sum; buckets render cumulatively with the
//!   conventional `le` label, closed by `+Inf`.
//!
//! All three are lock-free atomics, safe to update from any worker
//! thread while another thread renders. A [`Registry`] owns the metric
//! families in registration order and renders the whole exposition with
//! [`Registry::render`] — `# HELP` / `# TYPE` headers, escaped label
//! values, `_bucket`/`_sum`/`_count` expansion for histograms.
//!
//! The exposition format itself is pinned by a golden fixture
//! (`tests/prom_golden.rs`): any change to rendering is a contract
//! change for scrapers and must re-bless the fixture.
//!
//! ```
//! use efd_telemetry::prom::Registry;
//!
//! let reg = Registry::new();
//! let reqs = reg.counter("efd_requests_total", "Requests answered.",
//!                        &[("command", "recognize")]);
//! let lat = reg.histogram("efd_request_duration_seconds",
//!                         "End-to-end request latency.", &[],
//!                         &[0.001, 0.01, 0.1]);
//! reqs.inc();
//! lat.observe(0.004);
//! let text = reg.render();
//! assert!(text.contains("efd_requests_total{command=\"recognize\"} 1"));
//! assert!(text.contains("efd_request_duration_seconds_bucket{le=\"0.01\"} 1"));
//! ```

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding a fractional value (rates, ratios, thresholds).
///
/// The value is stored as its IEEE-754 bit pattern in an `AtomicU64`,
/// so `set`/`get` are single atomic operations — last write wins, no
/// read-modify-write loop needed.
#[derive(Debug)]
pub struct FloatGauge(AtomicU64);

impl Default for FloatGauge {
    fn default() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }
}

impl FloatGauge {
    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// An explicit-bucket histogram.
///
/// `bounds` are the finite upper bounds, strictly increasing; an
/// implicit `+Inf` bucket closes the series. Observations land in the
/// first bucket whose bound is `>= value` (Prometheus `le` semantics).
/// NaN observations are ignored.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    /// One slot per finite bound plus the `+Inf` overflow; stored
    /// non-cumulative, rendered cumulative.
    buckets: Box<[AtomicU64]>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Build with the given finite upper bounds (strictly increasing).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// increasing — histogram shapes are static configuration, so a bad
    /// shape is a programming error, not a runtime condition.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must strictly increase");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        Self {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = self.bounds.partition_point(|b| *b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    /// Record a duration in seconds (the Prometheus base unit).
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative `(upper_bound, count)` pairs, `+Inf` last. The final
    /// count equals [`Histogram::count`] when no observation races the
    /// read (counts are updated bucket-first, so a torn read can only
    /// undercount the tail).
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// The three exposition kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    FloatGauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            // Integer and float gauges are the same exposition type;
            // only the in-process storage differs.
            Kind::Gauge | Kind::FloatGauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Value {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    FloatGauge(Arc<FloatGauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Series {
    /// Pre-rendered label body without braces, e.g. `command="recognize"`;
    /// empty for an unlabeled series.
    labels: String,
    value: Value,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// A set of metric families, rendered in registration order.
///
/// Registration is idempotent: asking for the same `(name, labels)`
/// again returns the existing handle, so call sites don't need to
/// thread handles around. Registering one family name under two
/// different kinds is a programming error and panics.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out
}

/// Format a float the way the exposition format expects (`+Inf` for the
/// closing bucket; plain `Display` otherwise, which never produces an
/// exponent for the magnitudes metrics carry).
fn render_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)]) -> Value {
        let rendered = render_labels(labels);
        let mut families = self.families.lock().expect("prom registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric family {name:?} registered as both {} and {}",
                    f.kind.name(),
                    kind.name()
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.labels == rendered) {
            return match &existing.value {
                Value::Counter(c) => Value::Counter(Arc::clone(c)),
                Value::Gauge(g) => Value::Gauge(Arc::clone(g)),
                Value::FloatGauge(g) => Value::FloatGauge(Arc::clone(g)),
                Value::Histogram(h) => Value::Histogram(Arc::clone(h)),
            };
        }
        let value = match kind {
            Kind::Counter => Value::Counter(Arc::new(Counter::default())),
            Kind::Gauge => Value::Gauge(Arc::new(Gauge::default())),
            Kind::FloatGauge => Value::FloatGauge(Arc::new(FloatGauge::default())),
            Kind::Histogram => unreachable!("histograms register via histogram()"),
        };
        let handle = match &value {
            Value::Counter(c) => Value::Counter(Arc::clone(c)),
            Value::Gauge(g) => Value::Gauge(Arc::clone(g)),
            Value::FloatGauge(g) => Value::FloatGauge(Arc::clone(g)),
            Value::Histogram(h) => Value::Histogram(Arc::clone(h)),
        };
        family.series.push(Series {
            labels: rendered,
            value,
        });
        handle
    }

    /// Register (or fetch) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, Kind::Counter, labels) {
            Value::Counter(c) => c,
            _ => unreachable!("registered a counter"),
        }
    }

    /// Register (or fetch) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, Kind::Gauge, labels) {
            Value::Gauge(g) => g,
            _ => unreachable!("registered a gauge"),
        }
    }

    /// Register (or fetch) a float gauge series.
    pub fn float_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<FloatGauge> {
        match self.register(name, help, Kind::FloatGauge, labels) {
            Value::FloatGauge(g) => g,
            _ => unreachable!("registered a float gauge"),
        }
    }

    /// Register (or fetch) a histogram series with the given finite
    /// bucket bounds (see [`Histogram::new`]).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let rendered = render_labels(labels);
        let mut families = self.families.lock().expect("prom registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == Kind::Histogram,
                    "metric family {name:?} registered as both {} and histogram",
                    f.kind.name()
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind: Kind::Histogram,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.labels == rendered) {
            if let Value::Histogram(h) = &existing.value {
                return Arc::clone(h);
            }
            unreachable!("histogram family holds histogram series");
        }
        let h = Arc::new(Histogram::new(bounds));
        family.series.push(Series {
            labels: rendered,
            value: Value::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Render the full exposition (text format version 0.0.4).
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("prom registry poisoned");
        let mut out = String::new();
        for f in families.iter() {
            out.push_str("# HELP ");
            out.push_str(&f.name);
            out.push(' ');
            out.push_str(&f.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&f.name);
            out.push(' ');
            out.push_str(f.kind.name());
            out.push('\n');
            for s in &f.series {
                match &s.value {
                    Value::Counter(c) => {
                        push_sample(&mut out, &f.name, "", &s.labels, None, &c.get().to_string());
                    }
                    Value::Gauge(g) => {
                        push_sample(&mut out, &f.name, "", &s.labels, None, &g.get().to_string());
                    }
                    Value::FloatGauge(g) => {
                        push_sample(&mut out, &f.name, "", &s.labels, None, &render_f64(g.get()));
                    }
                    Value::Histogram(h) => {
                        for (bound, cum) in h.cumulative() {
                            push_sample(
                                &mut out,
                                &f.name,
                                "_bucket",
                                &s.labels,
                                Some(&render_f64(bound)),
                                &cum.to_string(),
                            );
                        }
                        push_sample(&mut out, &f.name, "_sum", &s.labels, None, &render_f64(h.sum()));
                        push_sample(&mut out, &f.name, "_count", &s.labels, None, &h.count().to_string());
                    }
                }
            }
        }
        out
    }
}

/// Append one sample line: `name[suffix]{labels[,le="bound"]} value`.
fn push_sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &str,
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        out.push_str(labels);
        if let Some(le) = le {
            if !labels.is_empty() {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render_plain_integers() {
        let reg = Registry::new();
        let c = reg.counter("reqs_total", "Requests.", &[("kind", "q")]);
        let g = reg.gauge("depth", "Queue depth.", &[]);
        c.add(3);
        g.set(-2);
        let text = reg.render();
        assert!(text.contains("# TYPE reqs_total counter"), "{text}");
        assert!(text.contains("reqs_total{kind=\"q\"} 3"), "{text}");
        assert!(text.contains("depth -2"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_le_inclusive() {
        let h = Histogram::new(&[0.1, 0.5, 1.0]);
        // A value exactly on a bound lands in that bound's bucket.
        for v in [0.05, 0.1, 0.4, 0.5, 2.0] {
            h.observe(v);
        }
        h.observe(f64::NAN); // ignored
        assert_eq!(
            h.cumulative(),
            vec![(0.1, 2), (0.5, 4), (1.0, 4), (f64::INFINITY, 5)]
        );
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 3.05).abs() < 1e-12);
    }

    #[test]
    fn registration_is_idempotent_per_label_set() {
        let reg = Registry::new();
        let a = reg.counter("c_total", "h", &[("x", "1")]);
        let b = reg.counter("c_total", "h", &[("x", "1")]);
        let other = reg.counter("c_total", "h", &[("x", "2")]);
        a.inc();
        b.inc();
        other.inc();
        assert_eq!(a.get(), 2, "same handle behind both registrations");
        let text = reg.render();
        assert!(text.contains("c_total{x=\"1\"} 2"), "{text}");
        assert!(text.contains("c_total{x=\"2\"} 1"), "{text}");
        // One family header, not one per series.
        assert_eq!(text.matches("# TYPE c_total").count(), 1, "{text}");
    }

    #[test]
    fn float_gauge_renders_fractional_values() {
        let reg = Registry::new();
        let g = reg.float_gauge("rate", "Live rate.", &[("window", "live")]);
        assert_eq!(g.get(), 0.0, "starts at zero");
        g.set(0.125);
        let text = reg.render();
        assert!(text.contains("# TYPE rate gauge"), "{text}");
        assert!(text.contains("rate{window=\"live\"} 0.125"), "{text}");
        let again = reg.float_gauge("rate", "Live rate.", &[("window", "live")]);
        assert_eq!(again.get(), 0.125, "idempotent registration shares the handle");
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        let _ = reg.counter("m", "h", &[]);
        let _ = reg.gauge("m", "h", &[]);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        let c = reg.counter("esc_total", "h", &[("p", "a\"b\\c\nd")]);
        c.inc();
        let text = reg.render();
        assert!(text.contains(r#"esc_total{p="a\"b\\c\nd"} 1"#), "{text}");
    }

    #[test]
    fn concurrent_observation_loses_nothing() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("hits_total", "h", &[]);
        let h = reg.histogram("lat", "h", &[], &[0.5]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u32 {
                        c.inc();
                        h.observe(f64::from(i % 2));
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.cumulative().last().expect("inf bucket").1, 40_000);
        assert!((h.sum() - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn infinite_bound_renders_plus_inf() {
        assert_eq!(render_f64(f64::INFINITY), "+Inf");
        assert_eq!(render_f64(0.025), "0.025");
    }
}
