//! LDMS-style CSV interchange.
//!
//! The public Taxonomist artifact ships as per-node CSV files: a `#Time`
//! column followed by one column per metric, one row per second. This
//! module writes and reads that layout so the EFD pipeline can ingest the
//! *real* dataset when available, and so generated traces can be inspected
//! with ordinary tooling.
//!
//! Layout per node:
//!
//! ```text
//! #Time,nr_mapped_vmstat,Committed_AS_meminfo,...
//! 0,6021.3,2013400.0,...
//! 1,6019.8,2013388.0,...
//! ```
//!
//! Missing samples are empty cells. Metadata (label, node id) travels in
//! `# key: value` comment lines so a directory of CSVs reassembles into an
//! [`ExecutionTrace`].

use std::io::{BufRead, Write};

use crate::metric::MetricCatalog;
use crate::series::TimeSeries;
use crate::storage::StorageError;
use crate::trace::{AppLabel, ExecutionTrace, MetricSelection, NodeId, NodeTrace};

/// Write one node's series as LDMS-style CSV.
pub fn write_node_csv<W: Write>(
    trace: &ExecutionTrace,
    node: NodeId,
    catalog: &MetricCatalog,
    mut w: W,
) -> Result<(), StorageError> {
    let node_trace = trace
        .nodes
        .get(node.index())
        .ok_or_else(|| StorageError::Format(format!("no node {node} in trace")))?;

    writeln!(w, "# app: {}", trace.label.app)?;
    writeln!(w, "# input: {}", trace.label.input)?;
    writeln!(w, "# node: {}", node.0)?;
    writeln!(w, "# exec_id: {}", trace.exec_id)?;

    let names: Vec<&str> = trace
        .selection
        .ids()
        .iter()
        .map(|&id| catalog.name(id))
        .collect();
    writeln!(w, "#Time,{}", names.join(","))?;

    let len = node_trace.series.first().map_or(0, TimeSeries::len);
    for t in 0..len {
        write!(w, "{t}")?;
        for series in &node_trace.series {
            match series.at(t as u32) {
                Some(v) if v.is_finite() => write!(w, ",{v}")?,
                _ => write!(w, ",")?,
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// One parsed node CSV: metadata plus columns.
#[derive(Debug, Clone)]
pub struct NodeCsv {
    /// Application name from the `# app:` header.
    pub app: String,
    /// Input size from the `# input:` header.
    pub input: String,
    /// Node id.
    pub node: NodeId,
    /// Execution id.
    pub exec_id: u64,
    /// Metric names in column order.
    pub metric_names: Vec<String>,
    /// One series per column.
    pub series: Vec<TimeSeries>,
}

/// Parse one node CSV produced by [`write_node_csv`] (or the artifact's
/// layout plus our metadata comments).
pub fn read_node_csv<R: BufRead>(r: R) -> Result<NodeCsv, StorageError> {
    let mut app = String::new();
    let mut input = String::new();
    let mut node = 0u16;
    let mut exec_id = 0u64;
    let mut metric_names: Vec<String> = Vec::new();
    let mut columns: Vec<Vec<f64>> = Vec::new();

    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some((key, value)) = rest.split_once(':') {
                let value = value.trim();
                match key.trim() {
                    "app" => app = value.to_string(),
                    "input" => input = value.to_string(),
                    "node" => {
                        node = value.parse().map_err(|_| {
                            StorageError::Format(format!("bad node id {value:?}"))
                        })?
                    }
                    "exec_id" => {
                        exec_id = value.parse().map_err(|_| {
                            StorageError::Format(format!("bad exec_id {value:?}"))
                        })?
                    }
                    _ => {} // unknown metadata: ignore
                }
            }
            continue;
        }
        if let Some(header) = line.strip_prefix("#Time") {
            metric_names = header
                .trim_start_matches(',')
                .split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            columns = vec![Vec::new(); metric_names.len()];
            continue;
        }
        // Data row.
        if metric_names.is_empty() {
            return Err(StorageError::Format(format!(
                "data before #Time header at line {}",
                lineno + 1
            )));
        }
        let mut cells = line.split(',');
        let _time = cells.next(); // dense 1 Hz; the row index is the time
        for (c, cell) in cells.enumerate() {
            if c >= columns.len() {
                return Err(StorageError::Format(format!(
                    "row at line {} has more cells than the header",
                    lineno + 1
                )));
            }
            let v = if cell.is_empty() {
                f64::NAN
            } else {
                cell.parse().map_err(|_| {
                    StorageError::Format(format!("bad value {cell:?} at line {}", lineno + 1))
                })?
            };
            columns[c].push(v);
        }
    }

    Ok(NodeCsv {
        app,
        input,
        node: NodeId(node),
        exec_id,
        metric_names,
        series: columns.into_iter().map(TimeSeries::from_values).collect(),
    })
}

/// Assemble node CSVs (one per node, same execution) into a trace. Metric
/// names are resolved against `catalog`; nodes are ordered by node id.
pub fn assemble_trace(
    mut nodes: Vec<NodeCsv>,
    catalog: &MetricCatalog,
) -> Result<ExecutionTrace, StorageError> {
    let first = nodes
        .first()
        .ok_or_else(|| StorageError::Format("no node CSVs".into()))?;
    let ids = first
        .metric_names
        .iter()
        .map(|n| {
            catalog
                .id(n)
                .ok_or_else(|| StorageError::Format(format!("unknown metric {n:?}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let label = AppLabel::new(first.app.clone(), first.input.clone());
    let exec_id = first.exec_id;
    let duration = first.series.first().map_or(0, TimeSeries::len) as u32;

    nodes.sort_by_key(|n| n.node);
    let node_traces = nodes
        .into_iter()
        .map(|n| {
            if n.app != label.app || n.input != label.input {
                return Err(StorageError::Format(format!(
                    "node {} labeled {} {}, expected {label}",
                    n.node, n.app, n.input
                )));
            }
            Ok(NodeTrace {
                node: n.node,
                series: n.series,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;

    Ok(ExecutionTrace {
        exec_id,
        label,
        selection: MetricSelection::new(ids),
        nodes: node_traces,
        duration_s: duration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::small_catalog;
    use crate::Interval;

    fn toy_trace(catalog: &MetricCatalog) -> ExecutionTrace {
        let ids: Vec<_> = catalog.ids().take(2).collect();
        ExecutionTrace {
            exec_id: 99,
            label: AppLabel::new("sp", "Y"),
            selection: MetricSelection::new(ids),
            nodes: (0..2)
                .map(|n| NodeTrace {
                    node: NodeId(n),
                    series: vec![
                        TimeSeries::from_values(vec![7500.5, f64::NAN, 7501.25]),
                        TimeSeries::from_values(vec![10.0, 11.0, 12.0]),
                    ],
                })
                .collect(),
            duration_s: 3,
        }
    }

    #[test]
    fn csv_roundtrip_single_node() {
        let c = small_catalog();
        let t = toy_trace(&c);
        let mut buf = Vec::new();
        write_node_csv(&t, NodeId(0), &c, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("# app: sp"), "{text}");
        assert!(text.contains("#Time,nr_mapped_vmstat,"), "{text}");
        assert!(text.contains("0,7500.5,10"), "{text}");
        assert!(text.contains("1,,11"), "missing cell not empty: {text}");

        let parsed = read_node_csv(&buf[..]).unwrap();
        assert_eq!(parsed.app, "sp");
        assert_eq!(parsed.node, NodeId(0));
        assert_eq!(parsed.exec_id, 99);
        assert_eq!(parsed.metric_names.len(), 2);
        assert_eq!(parsed.series[0].at(0), Some(7500.5));
        assert!(parsed.series[0].at(1).unwrap().is_nan());
        assert_eq!(parsed.series[1].at(2), Some(12.0));
    }

    #[test]
    fn assemble_full_trace() {
        let c = small_catalog();
        let t = toy_trace(&c);
        let csvs: Vec<NodeCsv> = (0..2)
            .map(|n| {
                let mut buf = Vec::new();
                write_node_csv(&t, NodeId(n), &c, &mut buf).unwrap();
                read_node_csv(&buf[..]).unwrap()
            })
            .collect();
        let back = assemble_trace(csvs, &c).unwrap();
        assert_eq!(back.label, t.label);
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.selection, t.selection);
        // Window means (and thus fingerprints) survive.
        let w = Interval::new(0, 3);
        for node in &t.nodes {
            for (p, s) in node.series.iter().enumerate() {
                let a = s.window_mean(w);
                let b = back.nodes[node.node.index()].series[p].window_mean(w);
                assert!((a - b).abs() < 1e-12 || (a.is_nan() && b.is_nan()));
            }
        }
    }

    #[test]
    fn mismatched_labels_rejected() {
        let c = small_catalog();
        let t = toy_trace(&c);
        let mut csvs: Vec<NodeCsv> = (0..2)
            .map(|n| {
                let mut buf = Vec::new();
                write_node_csv(&t, NodeId(n), &c, &mut buf).unwrap();
                read_node_csv(&buf[..]).unwrap()
            })
            .collect();
        csvs[1].app = "bt".into();
        assert!(assemble_trace(csvs, &c).is_err());
    }

    #[test]
    fn unknown_metric_rejected() {
        let c = small_catalog();
        let t = toy_trace(&c);
        let mut buf = Vec::new();
        write_node_csv(&t, NodeId(0), &c, &mut buf).unwrap();
        let mut parsed = read_node_csv(&buf[..]).unwrap();
        parsed.metric_names[0] = "no_such_metric".into();
        assert!(assemble_trace(vec![parsed], &c).is_err());
    }

    #[test]
    fn garbage_rows_rejected() {
        let bad = "#Time,m\n0,abc\n";
        assert!(read_node_csv(bad.as_bytes()).is_err());
        let no_header = "0,1.0\n";
        assert!(read_node_csv(no_header.as_bytes()).is_err());
    }

    #[test]
    fn out_of_range_node_is_an_error() {
        let c = small_catalog();
        let t = toy_trace(&c);
        let mut buf = Vec::new();
        assert!(write_node_csv(&t, NodeId(9), &c, &mut buf).is_err());
    }
}
