//! The Table 2 dataset: run inventory and lazy materialization.
//!
//! The paper's dataset (Ates et al.'s public Taxonomist artifact):
//!
//! | Applications | Inputs | Nodes | Repetitions |
//! |---|---|---|---|
//! | FT MG SP LU BT CG CoMD miniGhost* miniAMR* miniMD* kripke* | X Y Z | 4 | 30 |
//! | starred apps only | L | 32 | 6 |
//!
//! The *publicized* artifact contains one third of the repetitions; both
//! variants are available via [`SubsetKind`]. A [`Dataset`] holds only
//! [`RunSpec`]s — traces are materialized on demand (optionally in
//! parallel), so experiments touching one metric never pay for 562.

use std::sync::Arc;

use efd_telemetry::catalog::taxonomist_catalog;
use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::sampler::CollectorConfig;
use efd_telemetry::trace::{ExecutionTrace, MetricSelection};
use efd_telemetry::{AppLabel, Interval};
use efd_util::rng::derive_seed;
use efd_util::table::TextTable;
use efd_util::parallel_map;

use crate::apps::{AppId, InputSize};
use crate::profile::GeneratorKnobs;
use crate::run::{self, RunSpec};

/// Which variant of the dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubsetKind {
    /// The original study: 30 repetitions of X/Y/Z, 6 of L.
    Full,
    /// The publicized artifact: one third of the repetitions (10 / 2) —
    /// what the paper's experiments actually ran on.
    Public,
}

/// Dataset generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Full or public-subset repetition counts.
    pub subset: SubsetKind,
    /// Master seed; every run seed derives from it.
    pub master_seed: u64,
    /// Duration of an X-input run; each input step adds 60 s.
    pub duration_base_s: u32,
    /// Collector artifacts (jitter, dropouts).
    pub collector: CollectorConfig,
    /// Signal-model magnitudes.
    pub knobs: GeneratorKnobs,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        Self {
            subset: SubsetKind::Public,
            master_seed: 0xEFD_2021,
            duration_base_s: 240,
            collector: CollectorConfig::default(),
            knobs: GeneratorKnobs::default(),
        }
    }
}

impl DatasetSpec {
    /// Allocation size for X/Y/Z runs (paper Table 2).
    pub const NODES_XYZ: u16 = 4;
    /// Allocation size for L runs (paper Table 2).
    pub const NODES_L: u16 = 32;

    /// Repetitions of each (app, X/Y/Z) pair.
    pub fn reps_xyz(&self) -> u32 {
        match self.subset {
            SubsetKind::Full => 30,
            SubsetKind::Public => 10,
        }
    }

    /// Repetitions of each (starred app, L) pair.
    pub fn reps_l(&self) -> u32 {
        match self.subset {
            SubsetKind::Full => 6,
            SubsetKind::Public => 2,
        }
    }
}

/// The dataset: an inventory of runs plus the metric catalog, with lazy
/// trace materialization.
#[derive(Debug, Clone)]
pub struct Dataset {
    spec: DatasetSpec,
    catalog: Arc<MetricCatalog>,
    runs: Vec<RunSpec>,
}

impl Dataset {
    /// Generate the run inventory with the full 562-metric catalog.
    pub fn generate(spec: DatasetSpec) -> Self {
        Self::with_catalog(spec, taxonomist_catalog())
    }

    /// Generate with a custom catalog (tests use a small one).
    pub fn with_catalog(spec: DatasetSpec, catalog: MetricCatalog) -> Self {
        let mut runs = Vec::new();
        for app in AppId::ALL {
            for input in [InputSize::X, InputSize::Y, InputSize::Z] {
                for rep in 0..spec.reps_xyz() {
                    runs.push(Self::run_spec(&spec, app, input, rep, Self::nodes_for(input)));
                }
            }
            if app.has_large_input() {
                for rep in 0..spec.reps_l() {
                    runs.push(Self::run_spec(
                        &spec,
                        app,
                        InputSize::L,
                        rep,
                        Self::nodes_for(InputSize::L),
                    ));
                }
            }
        }
        Self {
            spec,
            catalog: Arc::new(catalog),
            runs,
        }
    }

    fn nodes_for(input: InputSize) -> u16 {
        if input == InputSize::L {
            DatasetSpec::NODES_L
        } else {
            DatasetSpec::NODES_XYZ
        }
    }

    fn run_spec(spec: &DatasetSpec, app: AppId, input: InputSize, rep: u32, n_nodes: u16) -> RunSpec {
        let seed = derive_seed(spec.master_seed, &[app.tag(), input.tag(), rep as u64]);
        // Durations scale with input and wobble a little per run.
        let duration_s = spec.duration_base_s + 60 * input.step() + (seed % 21) as u32;
        RunSpec {
            app,
            input,
            n_nodes,
            rep,
            duration_s,
            seed,
        }
    }

    /// Generation parameters.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The metric catalog.
    pub fn catalog(&self) -> &MetricCatalog {
        &self.catalog
    }

    /// Run inventory.
    pub fn runs(&self) -> &[RunSpec] {
        &self.runs
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the inventory is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Ground-truth labels, aligned with [`Dataset::runs`].
    pub fn labels(&self) -> Vec<AppLabel> {
        self.runs.iter().map(|r| r.label()).collect()
    }

    /// Materialize run `i` for the selected metrics (full duration).
    pub fn materialize(&self, i: usize, selection: &MetricSelection) -> ExecutionTrace {
        run::materialize(
            &self.runs[i],
            &self.catalog,
            selection,
            self.spec.collector,
            &self.spec.knobs,
        )
    }

    /// Materialize only the first `horizon_s` seconds of run `i` — the
    /// EFD's "first two minutes" data diet.
    pub fn materialize_prefix(
        &self,
        i: usize,
        selection: &MetricSelection,
        horizon_s: u32,
    ) -> ExecutionTrace {
        run::materialize_prefix(
            &self.runs[i],
            &self.catalog,
            selection,
            self.spec.collector,
            &self.spec.knobs,
            horizon_s,
        )
    }

    /// Materialize every run in parallel (prefix-limited if `horizon_s` is
    /// given). Memory scales with `runs × selection`, so keep selections
    /// narrow — that is the EFD's whole point.
    pub fn materialize_all(
        &self,
        selection: &MetricSelection,
        horizon_s: Option<u32>,
    ) -> Vec<ExecutionTrace> {
        let idx: Vec<usize> = (0..self.runs.len()).collect();
        parallel_map(&idx, |&i| match horizon_s {
            Some(h) => self.materialize_prefix(i, selection, h),
            None => self.materialize(i, selection),
        })
    }

    /// Per-node, per-metric window means of run `i` (fingerprint fast
    /// path): `out[node][metric_pos]`.
    pub fn window_means(
        &self,
        i: usize,
        selection: &MetricSelection,
        window: Interval,
    ) -> Vec<Vec<f64>> {
        run::window_means(
            &self.runs[i],
            &self.catalog,
            selection,
            window,
            self.spec.collector,
            &self.spec.knobs,
        )
    }

    /// Window means of every run, in parallel: `out[run][node][metric_pos]`.
    pub fn window_means_all(
        &self,
        selection: &MetricSelection,
        window: Interval,
    ) -> Vec<Vec<Vec<f64>>> {
        let idx: Vec<usize> = (0..self.runs.len()).collect();
        parallel_map(&idx, |&i| self.window_means(i, selection, window))
    }

    /// Render the paper's Table 2 for this dataset variant.
    pub fn table2(&self) -> TextTable {
        let mut t = TextTable::new(vec![
            "Applications",
            "Input Sizes",
            "Node Count",
            "Repeated Executions",
        ])
        .with_title("Table 2: Dataset used for Evaluation");
        let apps: Vec<String> = AppId::ALL
            .iter()
            .map(|a| {
                if a.has_large_input() {
                    format!("{}*", a.name())
                } else {
                    a.name().to_string()
                }
            })
            .collect();
        t.add_row(vec![
            apps.join(", "),
            "X, Y, Z".to_string(),
            DatasetSpec::NODES_XYZ.to_string(),
            self.spec.reps_xyz().to_string(),
        ]);
        t.add_row(vec![
            "starred (*) apps only".to_string(),
            "L".to_string(),
            DatasetSpec::NODES_L.to_string(),
            self.spec.reps_l().to_string(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_telemetry::catalog::small_catalog;

    fn tiny() -> Dataset {
        Dataset::with_catalog(DatasetSpec::default(), small_catalog())
    }

    #[test]
    fn public_subset_counts() {
        let d = tiny();
        // 11 apps × 3 inputs × 10 reps + 4 starred × 1 input × 2 reps
        assert_eq!(d.len(), 11 * 3 * 10 + 4 * 2);
    }

    #[test]
    fn full_counts() {
        let spec = DatasetSpec {
            subset: SubsetKind::Full,
            ..DatasetSpec::default()
        };
        let d = Dataset::with_catalog(spec, small_catalog());
        assert_eq!(d.len(), 11 * 3 * 30 + 4 * 6);
    }

    #[test]
    fn l_runs_use_32_nodes() {
        let d = tiny();
        for r in d.runs() {
            if r.input == InputSize::L {
                assert_eq!(r.n_nodes, 32);
                assert!(r.app.has_large_input());
            } else {
                assert_eq!(r.n_nodes, 4);
            }
        }
    }

    #[test]
    fn run_seeds_are_unique() {
        let d = tiny();
        let mut seeds: Vec<u64> = d.runs().iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), d.len());
    }

    #[test]
    fn durations_scale_with_input() {
        let d = tiny();
        let dur = |input: InputSize| -> f64 {
            let (sum, n) = d
                .runs()
                .iter()
                .filter(|r| r.input == input)
                .fold((0u64, 0u64), |(s, n), r| (s + r.duration_s as u64, n + 1));
            sum as f64 / n as f64
        };
        assert!(dur(InputSize::Y) > dur(InputSize::X) + 40.0);
        assert!(dur(InputSize::Z) > dur(InputSize::Y) + 40.0);
    }

    #[test]
    fn window_means_match_materialized_traces() {
        let d = tiny();
        let id = d.catalog().id("nr_mapped_vmstat").unwrap();
        let sel = MetricSelection::single(id);
        let w = Interval::PAPER_DEFAULT;
        let means = d.window_means(3, &sel, w);
        let trace = d.materialize(3, &sel);
        for (n, node) in trace.nodes.iter().enumerate() {
            assert_eq!(means[n][0], node.series[0].window_mean(w));
        }
    }

    #[test]
    fn parallel_materialization_is_deterministic() {
        let d = tiny();
        let id = d.catalog().id("nr_mapped_vmstat").unwrap();
        let sel = MetricSelection::single(id);
        let a = d.window_means_all(&sel, Interval::PAPER_DEFAULT);
        let b = d.window_means_all(&sel, Interval::PAPER_DEFAULT);
        assert_eq!(a, b);
        assert_eq!(a.len(), d.len());
    }

    #[test]
    fn labels_align_with_runs() {
        let d = tiny();
        let labels = d.labels();
        for (r, l) in d.runs().iter().zip(&labels) {
            assert_eq!(&r.label(), l);
        }
    }

    #[test]
    fn table2_lists_both_rows() {
        let d = tiny();
        let s = d.table2().render();
        assert!(s.contains("miniAMR*"));
        assert!(s.contains("X, Y, Z"));
        assert!(s.contains("32"));
        assert!(s.contains("10"), "public reps missing:\n{s}");
    }

    #[test]
    fn different_master_seeds_change_traces() {
        let spec2 = DatasetSpec {
            master_seed: 999,
            ..DatasetSpec::default()
        };
        let d1 = tiny();
        let d2 = Dataset::with_catalog(spec2, small_catalog());
        let id = d1.catalog().id("nr_mapped_vmstat").unwrap();
        let sel = MetricSelection::single(id);
        let a = d1.window_means(0, &sel, Interval::PAPER_DEFAULT);
        let b = d2.window_means(0, &sel, Interval::PAPER_DEFAULT);
        assert_ne!(a, b);
    }
}
