//! Adversarial and drift scenarios: named perturbations of the clean dataset.
//!
//! The paper's Table 2 evaluates recognition on clean, in-distribution
//! runs; the surrounding literature is adversarial — cryptomining
//! masquerade ("Using Malware Detection Techniques for HPC Application
//! Classification"), recognition under production drift (SIREN). This
//! module turns those threat models into *named, parameterized, seeded*
//! perturbations of the generated dataset, so every engine backend can be
//! scored on the same hostile inputs:
//!
//! | Scenario | Perturbation | Ground truth of perturbed runs |
//! |---|---|---|
//! | `cryptomining-masquerade` | injects miner runs whose window means interpolate from an out-of-dictionary level toward a victim run's fingerprint keys (fidelity = intensity) | should abstain ([`ScenarioRun::truth`] = `None`) |
//! | `metric-dropout` | each test node's window mean is lost (NaN) with probability = intensity — sensor faults, whole-metric loss | the original application |
//! | `node-heterogeneity` | systematic per-node scaling of interval values (up to ±5% at intensity 1) — hardware skew between nodes | the original application |
//! | `input-extrapolation` | all test means scaled up (up to +25%) — input sizes outside the learned range | the original application |
//! | `concept-drift` | gradual fingerprint shift over the ordered test sequence (up to +35% by the end), with [`ScenarioRun::relearn`] marking the online-relearning arm | the original application |
//!
//! Everything is a pure function of ([`CleanRuns`], [`ScenarioSpec`]):
//! two processes building the same spec get bit-identical scenario data.
//! The **null-perturbation invariant** is load-bearing and property-tested:
//! at `intensity == 0.0` every scenario's test means are *byte-identical*
//! to the clean dataset (`1.0 + 0.0·x == 1.0` exactly, `m · 1.0 == m`
//! bit-exact for finite `m`, zero injected runs, zero dropout draws).

use efd_telemetry::trace::MetricSelection;
use efd_telemetry::{AppLabel, Interval, MetricId};
use efd_util::rng::{derive_seed, str_tag, SplitMix64};

use crate::dataset::Dataset;

/// Maximum relative scale of `node-heterogeneity` at intensity 1.
pub const HETEROGENEITY_MAX: f64 = 0.05;
/// Relative scale-up of `input-extrapolation` at intensity 1.
pub const EXTRAPOLATION_MAX: f64 = 0.25;
/// Relative fingerprint shift reached by the *last* drifted run at
/// intensity 1 (`concept-drift` ramps linearly from ~0 to this).
pub const DRIFT_MAX: f64 = 0.35;
/// Miner runs injected by `cryptomining-masquerade` at intensity 1.
pub const MASQUERADE_MAX_MINERS: usize = 16;

/// A named perturbation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// A cryptominer mimicking a victim application's fingerprint keys.
    CryptominingMasquerade,
    /// Per-run random loss of whole per-node metrics (sensor faults).
    MetricDropout,
    /// Systematic per-node scaling of interval values.
    NodeHeterogeneity,
    /// Test inputs outside the learned size range.
    InputExtrapolation,
    /// Gradual fingerprint shift over an ordered run sequence.
    ConceptDrift,
}

impl ScenarioKind {
    /// Every scenario, in canonical (report) order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::CryptominingMasquerade,
        ScenarioKind::MetricDropout,
        ScenarioKind::NodeHeterogeneity,
        ScenarioKind::InputExtrapolation,
        ScenarioKind::ConceptDrift,
    ];

    /// CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::CryptominingMasquerade => "cryptomining-masquerade",
            ScenarioKind::MetricDropout => "metric-dropout",
            ScenarioKind::NodeHeterogeneity => "node-heterogeneity",
            ScenarioKind::InputExtrapolation => "input-extrapolation",
            ScenarioKind::ConceptDrift => "concept-drift",
        }
    }

    /// Parse a CLI / report name.
    pub fn parse(name: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully-determined scenario instance.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Which perturbation axis.
    pub kind: ScenarioKind,
    /// Perturbation intensity in `[0, 1]`; `0.0` is the clean dataset.
    pub intensity: f64,
    /// Scenario seed — drives miner placement, dropout draws, node skew.
    /// Independent of the dataset's master seed.
    pub seed: u64,
}

/// The clean dataset reduced to the scenario substrate: per-run ground
/// truth plus per-node window means over one metric/interval — computed
/// once, then perturbed cheaply per ([`ScenarioKind`], intensity, seed).
#[derive(Debug, Clone)]
pub struct CleanRuns {
    /// Ground-truth label per run, aligned with [`CleanRuns::means`].
    pub labels: Vec<AppLabel>,
    /// Per-run, per-node window means: `means[run][node]`.
    pub means: Vec<Vec<f64>>,
}

impl CleanRuns {
    /// Materialize the scenario substrate from a dataset (the same data
    /// diet as the evaluation harness: one metric, one window).
    pub fn from_dataset(dataset: &Dataset, metric: MetricId, interval: Interval) -> CleanRuns {
        let sel = MetricSelection::single(metric);
        let means = dataset
            .window_means_all(&sel, interval)
            .into_iter()
            .map(|per_node| per_node.into_iter().map(|m| m[0]).collect())
            .collect();
        CleanRuns {
            labels: dataset.labels(),
            means,
        }
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.means.len()
    }

    /// Whether the substrate is empty.
    pub fn is_empty(&self) -> bool {
        self.means.is_empty()
    }
}

/// The canonical train/test split used by every scenario: run `i` is a
/// test run iff `i % 5 == 0` (the idiom the engine tests use). Returns
/// `(train, test)` index lists into [`CleanRuns`].
pub fn split(n_runs: usize) -> (Vec<usize>, Vec<usize>) {
    let train = (0..n_runs).filter(|i| i % 5 != 0).collect();
    let test = (0..n_runs).filter(|i| i % 5 == 0).collect();
    (train, test)
}

/// One (possibly perturbed) run presented to a backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun {
    /// Ground truth: `Some(label)` when a correct system should recognize
    /// the application, `None` when it should *abstain* (out-of-dictionary
    /// execution, e.g. an injected miner).
    pub truth: Option<AppLabel>,
    /// Concept-drift only: after scoring this run, the online-relearning
    /// arm learns it (labeled with `truth`) into the live dictionary.
    pub relearn: bool,
    /// Per-node window means. `NaN` marks a lost sensor (`metric-dropout`);
    /// consumers must skip non-finite points when building queries.
    pub means: Vec<f64>,
}

/// A built scenario: clean training runs plus the (perturbed) ordered
/// test sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioData {
    /// Training runs — always clean, always labeled.
    pub train: Vec<ScenarioRun>,
    /// Test runs, in scenario order (meaningful for `concept-drift`).
    pub test: Vec<ScenarioRun>,
}

/// Build a scenario from the clean substrate.
///
/// Deterministic: identical `(clean, spec)` produce identical output.
/// At `spec.intensity == 0.0` the test means are byte-identical to the
/// clean dataset (see the module docs).
///
/// # Panics
///
/// Panics if `spec.intensity` is not finite in `[0, 1]`.
pub fn build(clean: &CleanRuns, spec: &ScenarioSpec) -> ScenarioData {
    assert!(
        spec.intensity.is_finite() && (0.0..=1.0).contains(&spec.intensity),
        "scenario intensity must be in [0, 1], got {}",
        spec.intensity
    );
    let (train_idx, test_idx) = split(clean.len());
    let train = train_idx
        .iter()
        .map(|&i| ScenarioRun {
            truth: Some(clean.labels[i].clone()),
            relearn: false,
            means: clean.means[i].clone(),
        })
        .collect();
    let mut test: Vec<ScenarioRun> = test_idx
        .iter()
        .map(|&i| ScenarioRun {
            truth: Some(clean.labels[i].clone()),
            relearn: false,
            means: clean.means[i].clone(),
        })
        .collect();

    match spec.kind {
        ScenarioKind::CryptominingMasquerade => {
            let n_victims = test.len();
            let n_miners =
                (spec.intensity * MASQUERADE_MAX_MINERS as f64).round() as usize;
            for k in 0..n_miners {
                let mut rng = SplitMix64::new(derive_seed(
                    spec.seed,
                    &[str_tag("masquerade"), k as u64],
                ));
                let victim = (rng.next_u64() % n_victims as u64) as usize;
                let means = test[victim]
                    .means
                    .iter()
                    .map(|&v| {
                        if !v.is_finite() {
                            return v;
                        }
                        // Base level: far outside every learned footprint;
                        // intensity interpolates toward the victim's keys
                        // (this lerp form reproduces `v` bit-exactly at
                        // intensity 1 — a perfect masquerade).
                        let base = v * (3.0 + rng.next_f64());
                        base * (1.0 - spec.intensity) + v * spec.intensity
                    })
                    .collect();
                test.push(ScenarioRun {
                    truth: None,
                    relearn: false,
                    means,
                });
            }
        }
        ScenarioKind::MetricDropout => {
            for (t, run) in test.iter_mut().enumerate() {
                let mut rng = SplitMix64::new(derive_seed(
                    spec.seed,
                    &[str_tag("dropout"), t as u64],
                ));
                for m in run.means.iter_mut() {
                    if rng.next_f64() < spec.intensity {
                        *m = f64::NAN;
                    }
                }
            }
        }
        ScenarioKind::NodeHeterogeneity => {
            for run in test.iter_mut() {
                for (n, m) in run.means.iter_mut().enumerate() {
                    if !m.is_finite() {
                        continue;
                    }
                    let mut rng = SplitMix64::new(derive_seed(
                        spec.seed,
                        &[str_tag("hetero"), n as u64],
                    ));
                    let skew = 2.0 * rng.next_f64() - 1.0;
                    *m *= 1.0 + spec.intensity * HETEROGENEITY_MAX * skew;
                }
            }
        }
        ScenarioKind::InputExtrapolation => {
            let factor = 1.0 + spec.intensity * EXTRAPOLATION_MAX;
            for run in test.iter_mut() {
                for m in run.means.iter_mut() {
                    if m.is_finite() {
                        *m *= factor;
                    }
                }
            }
        }
        ScenarioKind::ConceptDrift => {
            let n = test.len().max(1);
            for (p, run) in test.iter_mut().enumerate() {
                let ramp = (p + 1) as f64 / n as f64;
                let factor = 1.0 + spec.intensity * DRIFT_MAX * ramp;
                for m in run.means.iter_mut() {
                    if m.is_finite() {
                        *m *= factor;
                    }
                }
                run.relearn = true;
            }
        }
    }
    ScenarioData { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetSpec};
    use efd_telemetry::catalog::small_catalog;

    fn substrate() -> CleanRuns {
        let d = Dataset::with_catalog(DatasetSpec::default(), small_catalog());
        let metric = d.catalog().id("nr_mapped_vmstat").unwrap();
        CleanRuns::from_dataset(&d, metric, Interval::PAPER_DEFAULT)
    }

    fn spec(kind: ScenarioKind, intensity: f64) -> ScenarioSpec {
        ScenarioSpec {
            kind,
            intensity,
            seed: 9,
        }
    }

    #[test]
    fn names_round_trip() {
        for k in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::parse(k.name()), Some(k));
        }
        assert_eq!(ScenarioKind::parse("nope"), None);
    }

    #[test]
    fn split_partitions_every_run() {
        let (train, test) = split(10);
        assert_eq!(test, vec![0, 5]);
        assert_eq!(train.len() + test.len(), 10);
    }

    #[test]
    fn builds_are_deterministic() {
        // Bit-level comparison: `PartialEq` on f64 would fail on the NaNs
        // metric-dropout plants on purpose.
        let bits = |d: &ScenarioData| -> Vec<(Option<AppLabel>, bool, Vec<u64>)> {
            d.test
                .iter()
                .map(|r| {
                    (
                        r.truth.clone(),
                        r.relearn,
                        r.means.iter().map(|m| m.to_bits()).collect(),
                    )
                })
                .collect()
        };
        let clean = substrate();
        for kind in ScenarioKind::ALL {
            let a = build(&clean, &spec(kind, 0.7));
            let b = build(&clean, &spec(kind, 0.7));
            assert_eq!(bits(&a), bits(&b), "{kind}");
        }
    }

    #[test]
    fn masquerade_injects_abstention_targets() {
        let clean = substrate();
        let data = build(&clean, &spec(ScenarioKind::CryptominingMasquerade, 0.5));
        let miners: Vec<_> = data.test.iter().filter(|r| r.truth.is_none()).collect();
        assert_eq!(miners.len(), 8, "round(0.5 * 16) miners");
        for m in miners {
            assert!(m.means.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn masquerade_fidelity_scales_with_intensity() {
        let clean = substrate();
        let near = build(&clean, &spec(ScenarioKind::CryptominingMasquerade, 1.0));
        let far = build(&clean, &spec(ScenarioKind::CryptominingMasquerade, 0.5));
        // At intensity 1 the first miner sits exactly on its victim's keys.
        let miner = near.test.iter().find(|r| r.truth.is_none()).unwrap();
        assert!(near
            .test
            .iter()
            .filter(|r| r.truth.is_some())
            .any(|v| v.means == miner.means));
        // At intensity 0.5 no miner coincides with any victim.
        let miner = far.test.iter().find(|r| r.truth.is_none()).unwrap();
        assert!(!far
            .test
            .iter()
            .filter(|r| r.truth.is_some())
            .any(|v| v.means == miner.means));
    }

    #[test]
    fn dropout_rate_tracks_intensity() {
        let clean = substrate();
        let data = build(&clean, &spec(ScenarioKind::MetricDropout, 0.5));
        let (lost, total) = data.test.iter().fold((0usize, 0usize), |(l, t), r| {
            (
                l + r.means.iter().filter(|m| m.is_nan()).count(),
                t + r.means.len(),
            )
        });
        let rate = lost as f64 / total as f64;
        assert!((0.35..=0.65).contains(&rate), "dropout rate {rate}");
        for r in &data.test {
            assert!(r.truth.is_some(), "dropout keeps ground truth");
        }
    }

    #[test]
    fn heterogeneity_is_systematic_per_node() {
        let clean = substrate();
        let data = build(&clean, &spec(ScenarioKind::NodeHeterogeneity, 1.0));
        let (_, test_idx) = split(clean.len());
        // Same node index ⇒ same relative skew, across every run.
        let mut per_node: Vec<Option<f64>> = Vec::new();
        for (run, &i) in data.test.iter().zip(&test_idx) {
            for (n, (&p, &c)) in run.means.iter().zip(&clean.means[i]).enumerate() {
                if c == 0.0 {
                    continue;
                }
                let skew = p / c;
                assert!((skew - 1.0).abs() <= HETEROGENEITY_MAX + 1e-12);
                if per_node.len() <= n {
                    per_node.resize(n + 1, None);
                }
                match per_node[n] {
                    None => per_node[n] = Some(skew),
                    Some(s) => assert!((s - skew).abs() < 1e-12, "node {n}"),
                }
            }
        }
    }

    #[test]
    fn drift_ramps_monotonically_and_marks_relearn() {
        let clean = substrate();
        let data = build(&clean, &spec(ScenarioKind::ConceptDrift, 1.0));
        let (_, test_idx) = split(clean.len());
        let mut last = 0.0f64;
        for (run, &i) in data.test.iter().zip(&test_idx) {
            assert!(run.relearn);
            let c = clean.means[i][0];
            if c == 0.0 {
                continue;
            }
            let factor = run.means[0] / c;
            assert!(factor >= last - 1e-12, "ramp not monotone");
            last = factor;
        }
        assert!((last - (1.0 + DRIFT_MAX)).abs() < 1e-9, "final factor {last}");
    }

    #[test]
    fn intensity_zero_is_byte_identical_to_clean() {
        let clean = substrate();
        let (_, test_idx) = split(clean.len());
        for kind in ScenarioKind::ALL {
            let data = build(&clean, &spec(kind, 0.0));
            assert_eq!(data.test.len(), test_idx.len(), "{kind}: no injected runs");
            for (run, &i) in data.test.iter().zip(&test_idx) {
                for (&a, &b) in run.means.iter().zip(&clean.means[i]) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{kind}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "intensity")]
    fn rejects_out_of_range_intensity() {
        let clean = CleanRuns {
            labels: vec![],
            means: vec![],
        };
        build(&clean, &spec(ScenarioKind::MetricDropout, 1.5));
    }
}
