//! The per-(application, metric) signal model.
//!
//! Every metric stream of every run is generated as
//!
//! ```text
//! value(t) = level · input_factor · node_factor · run_jitter
//!            · init(t) · pattern(t) · ramp(t)  +  noise(t)
//! ```
//!
//! with all factors deterministic functions of (app, input, metric, node)
//! and the run seed. The structure encodes the paper's qualitative findings
//! so the experiments can *re-derive* them:
//!
//! * **Discriminability tiers** — some metrics separate applications well
//!   (the memory metrics topping the paper's Table 3), some moderately
//!   (NIC counters, 0.95–0.96), some barely (per-core jiffies), some not at
//!   all (hardware constants like `MemTotal`). Tier controls both app-level
//!   separation and noise magnitude.
//! * **SP/BT near-collision** — BT's levels are derived from SP's with a
//!   sub-percent offset on every metric, so the two NPB twins collide at
//!   shallow rounding depths and separate at deeper ones (paper §5 and
//!   Table 4; on the curated metric the offset is exactly the paper's).
//! * **Input dependence** — miniAMR's footprint scales strongly with input
//!   size, Kripke/miniMD moderately, the rest barely (paper §5: fingerprints
//!   repeat across inputs "but this does not apply to all applications,
//!   e.g. miniAMR").
//! * **Node-role asymmetry** — SP/BT drive node 0 slightly harder and the
//!   last node markedly less (Table 4's 7600/7500/7500/7100 row); LU has a
//!   mild root-node bump.
//! * **Initialization transient** — the first ~45 s start away from the
//!   steady level and decay toward it with extra noise, which is why the
//!   paper fingerprints `[60:120]` instead of `[0:60]`.

use efd_telemetry::metric::{MetricCategory, MetricInfo};
use efd_telemetry::trace::NodeId;
use efd_util::rng::{derive_seed, mix64};

use crate::apps::{AppId, InputSize};

/// How well a metric separates applications (and how noisy it is).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Clean, app-specific levels: the paper's top Table 3 metrics.
    Strong,
    /// Informative but noisier (NIC/router counters, netdev, power).
    Medium,
    /// Weak separation under heavy noise (per-core jiffies, loadavg).
    Weak,
    /// Identical on every app (hardware constants): useless for
    /// recognition, present because real catalogs carry them.
    Constant,
}

/// Metric fields that are hardware/configuration constants.
const CONSTANT_FIELDS: &[&str] = &[
    "MemTotal_meminfo",
    "SwapTotal_meminfo",
    "SwapFree_meminfo",
    "VmallocTotal_meminfo",
    "VmallocChunk_meminfo",
    "Hugepagesize_meminfo",
    "HugePages_Total_meminfo",
    "HugePages_Free_meminfo",
    "HugePages_Rsvd_meminfo",
    "HugePages_Surp_meminfo",
    "HardwareCorrupted_meminfo",
    "CommitLimit_meminfo",
    "DirectMap4k_meminfo",
    "DirectMap2M_meminfo",
    "DirectMap1G_meminfo",
    "nr_dirty_threshold_vmstat",
    "nr_dirty_background_threshold_vmstat",
    "nr_free_cma_vmstat",
];

/// Metrics pinned to [`Tier::Strong`]: the paper's Table 3 leaders.
const STRONG_METRICS: &[&str] = &[
    "nr_mapped_vmstat",
    "Committed_AS_meminfo",
    "nr_active_anon_vmstat",
    "nr_anon_pages_vmstat",
    "Active_meminfo",
    "Mapped_meminfo",
    "AnonPages_meminfo",
    "MemFree_meminfo",
    "PageTables_meminfo",
    "nr_page_table_pages_vmstat",
    "Active_anon_meminfo",
    "nr_inactive_anon_vmstat",
    "current_freemem",
];

/// The NIC counters the paper's Table 3 excerpt names (0.95–0.96): they
/// get stronger-than-Medium app separation while keeping Medium noise.
const NIC_EXCERPT: &[&str] = &[
    "AMO_PKTS_metric_set_nic",
    "AMO_FLITS_metric_set_nic",
    "PI_PKTS_metric_set_nic",
];

/// Tier of a metric (see [`Tier`]).
pub fn tier_of(info: &MetricInfo) -> Tier {
    if CONSTANT_FIELDS.contains(&info.name.as_str()) {
        return Tier::Constant;
    }
    if STRONG_METRICS.contains(&info.name.as_str()) {
        return Tier::Strong;
    }
    match info.category {
        MetricCategory::Vmstat | MetricCategory::Meminfo => match info.salt % 4 {
            0 => Tier::Strong,
            1 | 2 => Tier::Medium,
            _ => Tier::Weak,
        },
        MetricCategory::Nic | MetricCategory::Netdev | MetricCategory::Power => Tier::Medium,
        MetricCategory::Router => {
            if info.salt.is_multiple_of(2) {
                Tier::Medium
            } else {
                Tier::Weak
            }
        }
        MetricCategory::Procstat => {
            if info.name.contains("_cpu") {
                Tier::Weak
            } else {
                Tier::Medium
            }
        }
        MetricCategory::Loadavg => Tier::Weak,
        MetricCategory::Misc => Tier::Strong,
    }
}

/// Tunable generator magnitudes. Defaults reproduce the paper's shapes;
/// ablation benches sweep them.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorKnobs {
    /// Log-scale half-range of app separation for Strong metrics.
    pub sep_strong: f64,
    /// … for Medium metrics.
    pub sep_medium: f64,
    /// … for Weak metrics.
    pub sep_weak: f64,
    /// (white, drift, spike) noise relative to level, Strong tier.
    pub noise_strong: (f64, f64, f64),
    /// (white, drift, spike) relative noise, Medium tier.
    pub noise_medium: (f64, f64, f64),
    /// (white, drift, spike) relative noise, Weak tier.
    pub noise_weak: (f64, f64, f64),
    /// Relative run-to-run level jitter (Strong tier; scaled ×4 Medium,
    /// ×10 Weak).
    pub run_jitter: f64,
    /// SP→BT relative level offset half-range (the near-collision).
    pub bt_offset: f64,
    /// Use the curated `nr_mapped_vmstat` table reproducing Table 4
    /// geometry exactly.
    pub curated: bool,
}

impl Default for GeneratorKnobs {
    fn default() -> Self {
        Self {
            sep_strong: 0.28,
            sep_medium: 0.12,
            sep_weak: 0.03,
            noise_strong: (0.002, 0.0004, 0.003),
            noise_medium: (0.012, 0.0035, 0.015),
            noise_weak: (0.06, 0.03, 0.12),
            run_jitter: 0.0002,
            bt_offset: 0.004,
            curated: true,
        }
    }
}

/// Everything needed to synthesize one (run, node, metric) stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalParams {
    /// Steady level for this (app, input, metric, node) before run jitter.
    pub level: f64,
    /// Per-sample white-noise standard deviation (absolute).
    pub white_sd: f64,
    /// Stationary sd of the OU drift (absolute).
    pub drift_sd: f64,
    /// Mean spike height (absolute; 0 disables spikes).
    pub spike_height: f64,
    /// Compute-phase oscillation period (seconds; 0 disables).
    pub period_s: f64,
    /// Oscillation amplitude (absolute).
    pub period_amp: f64,
    /// Relative growth per second after the init phase (miniAMR refinement).
    pub ramp_per_s: f64,
    /// Relative level at t = 0 (decays toward 1).
    pub init_mult: f64,
    /// Init transient decay constant, seconds.
    pub init_tau_s: f64,
    /// Relative sd of the per-run level jitter (applied with the run seed).
    pub run_jitter_rel: f64,
}

/// Map a 64-bit hash to a deterministic value in `[-1, 1]`.
fn unit(h: u64) -> f64 {
    (mix64(h) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Evenly-spaced app position in `[-1, 1]` for one metric, with jitter.
///
/// Applications are genuinely *different programs*: on an informative
/// metric their levels are distinct, not iid draws that may coincide. Each
/// metric deterministically permutes the apps into 11 slots and jitters
/// within ±35% of a slot, guaranteeing pairwise separation while keeping
/// per-metric orderings independent.
fn app_slot(metric_salt: u64, app: AppId) -> f64 {
    let n = AppId::ALL.len();
    let key = |a: AppId| mix64(derive_seed(metric_salt, &[a.tag(), 0x510D]));
    let rank = AppId::ALL.iter().filter(|&&b| key(b) < key(app)).count();
    let jitter = 0.35 * unit(derive_seed(metric_salt, &[app.tag(), 0x51E6]));
    -1.0 + 2.0 * (rank as f64 + 0.5 + jitter) / n as f64
}

/// Map a 64-bit hash to `[0, 1]`.
fn unit01(h: u64) -> f64 {
    (mix64(h) >> 11) as f64 / (1u64 << 53) as f64
}

/// Curated steady levels for `nr_mapped_vmstat` (input X), reproducing the
/// paper's Table 4 geometry: values chosen so depth-2 rounding collides
/// SP/BT while depth 3 separates them, and node factors land on the
/// published cells.
fn curated_nr_mapped(app: AppId) -> f64 {
    match app {
        AppId::Ft => 6020.0,
        AppId::Mg => 6110.0,
        AppId::Sp => 7520.0,
        AppId::Lu => 8330.0,
        AppId::Bt => 7540.0,
        AppId::Cg => 6840.0,
        AppId::CoMd => 5230.0,
        AppId::MiniGhost => 7910.0,
        AppId::MiniAmr => 7820.0,
        AppId::MiniMd => 5640.0,
        AppId::Kripke => 8730.0,
    }
}

/// Strength of an app's input-size dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InputDependence {
    /// Footprint strongly tracks the input (miniAMR).
    Strong,
    /// Moderate scaling (Kripke, miniMD).
    Moderate,
    /// Nearly input-invariant (the paper's "fingerprints repeat" cases).
    Weak,
}

fn input_dependence(app: AppId) -> InputDependence {
    match app {
        AppId::MiniAmr => InputDependence::Strong,
        AppId::Kripke | AppId::MiniMd => InputDependence::Moderate,
        _ => InputDependence::Weak,
    }
}

fn input_factor(app: AppId, input: InputSize, metric: &MetricInfo) -> f64 {
    let step = input.step() as f64;
    let u = unit01(derive_seed(metric.salt, &[app.tag(), 0x1177]));
    match input_dependence(app) {
        InputDependence::Strong => {
            // Curated metric matches Table 4: X 7820 → Y ~8040 → Z ~10980.
            let per_step = [0.0, 0.028, 0.404, 0.90];
            let scale = 0.7 + 0.6 * u;
            1.0 + per_step[input.step() as usize] * scale
        }
        // Moderate (Kripke, miniMD): footprint is stable across the X/Y/Z
        // problem sizes (strong-scaling regime on a fixed 4-node
        // allocation) but jumps at L, which is a different problem *and*
        // allocation class (32 nodes) — so the hard-input experiment fails
        // on them only in its L variant.
        InputDependence::Moderate => {
            if input == InputSize::L {
                1.05 + 0.08 * u
            } else {
                1.0 + step * 0.0009 * u
            }
        }
        // Sub-grain at depth 3: the paper's "fingerprints repeat even for
        // different application input sizes" cases.
        InputDependence::Weak => 1.0 + step * 0.0008 * u,
    }
}

fn node_factor(app: AppId, node: NodeId, n_nodes: u16) -> f64 {
    let last = n_nodes.saturating_sub(1);
    match app {
        // SP/BT: root coordinates harder, the last rank is under-filled
        // (paper Table 4: 7600 / 7500 / 7500 / 7100).
        AppId::Sp | AppId::Bt => {
            if node.0 == 0 {
                1.013
            } else if node.0 == last && n_nodes > 1 {
                0.947
            } else {
                1.0
            }
        }
        // LU: mild root-node bump (Table 4: 8400 vs 8300).
        AppId::Lu
            if node.0 == 0 => {
                1.012
            }
        _ => 1.0,
    }
}

/// Steady level for (app, input, metric, node) — the heart of the model.
pub fn steady_level(
    app: AppId,
    input: InputSize,
    metric: &MetricInfo,
    node: NodeId,
    n_nodes: u16,
    knobs: &GeneratorKnobs,
) -> f64 {
    let tier = tier_of(metric);
    if tier == Tier::Constant {
        // Hardware constants: same value regardless of app, input, or node.
        return metric.base_scale;
    }
    let base = if knobs.curated && metric.name == "nr_mapped_vmstat" {
        curated_nr_mapped(app)
    } else {
        let sep = if NIC_EXCERPT.contains(&metric.name.as_str()) {
            0.20
        } else {
            match tier {
                Tier::Strong => knobs.sep_strong,
                Tier::Medium => knobs.sep_medium,
                Tier::Weak => knobs.sep_weak,
                Tier::Constant => 0.0,
            }
        };
        // BT's level is SP's with a small metric-specific offset: the NPB
        // twins stay within a rounding grain of each other everywhere.
        let (level_app, twin_offset) = if app == AppId::Bt {
            (AppId::Sp, knobs.bt_offset * unit(derive_seed(metric.salt, &[AppId::Bt.tag(), 0x7717])))
        } else {
            (app, 0.0)
        };
        let g = app_slot(metric.salt, level_app);
        metric.base_scale * (sep * g).exp() * (1.0 + twin_offset)
    };
    base * input_factor(app, input, metric) * node_factor(app, node, n_nodes)
}

/// Full signal parameters for (app, input, metric, node).
pub fn signal_params(
    app: AppId,
    input: InputSize,
    metric: &MetricInfo,
    node: NodeId,
    n_nodes: u16,
    knobs: &GeneratorKnobs,
) -> SignalParams {
    let tier = tier_of(metric);
    let level = steady_level(app, input, metric, node, n_nodes, knobs);

    let (white_rel, drift_rel, spike_rel) = match tier {
        Tier::Strong => knobs.noise_strong,
        Tier::Medium => knobs.noise_medium,
        Tier::Weak => knobs.noise_weak,
        // Constants still carry sensor LSB noise so means are not exactly
        // integral — rounding must still do work.
        Tier::Constant => (1e-6, 0.0, 0.0),
    };
    let run_jitter_rel = match tier {
        Tier::Strong => knobs.run_jitter,
        Tier::Medium => knobs.run_jitter * 4.0,
        Tier::Weak => knobs.run_jitter * 10.0,
        Tier::Constant => 0.0,
    };

    // Compute-phase oscillation for the iterative solvers.
    let (period_s, period_amp_rel) = match app {
        AppId::Sp | AppId::Bt | AppId::Lu | AppId::Cg | AppId::Mg => {
            let p = 15.0 + 25.0 * unit01(derive_seed(metric.salt, &[app.tag(), 0x9e51]));
            (p, 0.003)
        }
        AppId::Kripke => (60.0, 0.006),
        _ => (0.0, 0.0),
    };

    // miniAMR refines its mesh over time: slow upward ramp.
    let ramp_per_s = if app == AppId::MiniAmr { 3.0e-4 } else { 0.0 };

    // Init transient: app/metric-specific starting point, ~6–10 s decay.
    // The decay must be fast enough that the residual inside [60:120] is
    // below the rounding grain (<0.05% of level), else the transient —
    // not the steady level — would set the fingerprint.
    let init_mult = if tier == Tier::Constant {
        1.0
    } else {
        1.0 + 0.75 * unit(derive_seed(metric.salt, &[app.tag(), 0x1817]))
    };
    let init_tau_s = 6.0 + 4.0 * unit01(derive_seed(metric.salt, &[app.tag(), 0x7A40]));

    SignalParams {
        level,
        white_sd: level.abs() * white_rel,
        drift_sd: level.abs() * drift_rel,
        spike_height: level.abs() * spike_rel,
        period_s,
        period_amp: level.abs() * period_amp_rel,
        ramp_per_s,
        init_mult,
        init_tau_s,
        run_jitter_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_telemetry::catalog::taxonomist_catalog;
    use efd_telemetry::MetricCatalog;

    fn catalog() -> MetricCatalog {
        taxonomist_catalog()
    }

    fn nr_mapped(c: &MetricCatalog) -> MetricInfo {
        c.info(c.id("nr_mapped_vmstat").unwrap()).clone()
    }

    #[test]
    fn curated_levels_reproduce_table4_geometry() {
        let c = catalog();
        let m = nr_mapped(&c);
        let k = GeneratorKnobs::default();
        // SP on 4 nodes: 7620 / 7520 / 7520 / 7121 — the Table 4 row once
        // rounded at depth 2 (7600/7500/7500/7100).
        let sp: Vec<f64> = (0..4)
            .map(|n| steady_level(AppId::Sp, InputSize::X, &m, NodeId(n), 4, &k))
            .collect();
        assert!((sp[0] - 7617.76).abs() < 0.1, "sp node0 {}", sp[0]);
        assert_eq!(sp[1], 7520.0);
        assert_eq!(sp[2], 7520.0);
        assert!((sp[3] - 7121.44).abs() < 0.1, "sp node3 {}", sp[3]);

        // BT stays within the same depth-2 grain (collision) but a
        // different depth-3 grain (separation).
        let bt0 = steady_level(AppId::Bt, InputSize::X, &m, NodeId(0), 4, &k);
        assert!((bt0 - 7638.02).abs() < 0.1, "bt node0 {bt0}");
        // Same hundred (7600), different ten (7620 vs 7640).
        assert_eq!((sp[0] / 100.0).round(), (bt0 / 100.0).round());
        assert_ne!((sp[0] / 10.0).round(), (bt0 / 10.0).round());
    }

    #[test]
    fn miniamr_is_strongly_input_dependent() {
        let c = catalog();
        let m = nr_mapped(&c);
        let k = GeneratorKnobs::default();
        let lv = |i| steady_level(AppId::MiniAmr, i, &m, NodeId(0), 4, &k);
        let (x, y, z) = (lv(InputSize::X), lv(InputSize::Y), lv(InputSize::Z));
        assert!(y / x > 1.015, "Y/X = {}", y / x);
        assert!(z / x > 1.25, "Z/X = {}", z / x);
        // Table 4 ballpark: X≈7800, Y≈8000, Z≈11000.
        assert!((7750.0..7900.0).contains(&x), "X level {x}");
        assert!((7950.0..8150.0).contains(&y), "Y level {y}");
        assert!((10000.0..12000.0).contains(&z), "Z level {z}");
    }

    #[test]
    fn npb_apps_are_nearly_input_invariant() {
        let c = catalog();
        let m = nr_mapped(&c);
        let k = GeneratorKnobs::default();
        for app in [AppId::Ft, AppId::Mg, AppId::Sp, AppId::Lu, AppId::Bt, AppId::Cg] {
            let x = steady_level(app, InputSize::X, &m, NodeId(1), 4, &k);
            let z = steady_level(app, InputSize::Z, &m, NodeId(1), 4, &k);
            assert!(
                (z / x - 1.0).abs() < 0.005,
                "{app}: Z/X = {}",
                z / x
            );
        }
    }

    #[test]
    fn bt_tracks_sp_on_every_metric() {
        let c = catalog();
        let k = GeneratorKnobs::default();
        let mut max_rel = 0.0f64;
        for id in c.ids() {
            let m = c.info(id);
            if tier_of(m) == Tier::Constant {
                continue;
            }
            let sp = steady_level(AppId::Sp, InputSize::X, m, NodeId(1), 4, &k);
            let bt = steady_level(AppId::Bt, InputSize::X, m, NodeId(1), 4, &k);
            let rel = (bt / sp - 1.0).abs();
            max_rel = max_rel.max(rel);
        }
        assert!(max_rel < 0.006, "BT strays {max_rel} from SP");
    }

    #[test]
    fn constants_are_app_independent() {
        let c = catalog();
        let m = c.info(c.id("MemTotal_meminfo").unwrap()).clone();
        assert_eq!(tier_of(&m), Tier::Constant);
        let k = GeneratorKnobs::default();
        let levels: Vec<f64> = AppId::ALL
            .iter()
            .map(|&a| steady_level(a, InputSize::X, &m, NodeId(0), 4, &k))
            .collect();
        for w in levels.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn table3_leaders_are_strong_tier() {
        let c = catalog();
        for name in [
            "nr_mapped_vmstat",
            "Committed_AS_meminfo",
            "nr_active_anon_vmstat",
            "nr_anon_pages_vmstat",
        ] {
            let m = c.info(c.id(name).unwrap());
            assert_eq!(tier_of(m), Tier::Strong, "{name}");
        }
        // NIC counters are Medium (paper: 0.95–0.96, below the leaders).
        let nic = c.info(c.id("AMO_PKTS_metric_set_nic").unwrap());
        assert_eq!(tier_of(nic), Tier::Medium);
    }

    #[test]
    fn node_asymmetry_only_where_paper_reports_it() {
        let c = catalog();
        let m = nr_mapped(&c);
        let k = GeneratorKnobs::default();
        for app in [AppId::Ft, AppId::Mg, AppId::MiniGhost, AppId::MiniAmr] {
            let levels: Vec<f64> = (0..4)
                .map(|n| steady_level(app, InputSize::X, &m, NodeId(n), 4, &k))
                .collect();
            for w in levels.windows(2) {
                assert_eq!(w[0], w[1], "{app} should be node-uniform");
            }
        }
        let lu0 = steady_level(AppId::Lu, InputSize::X, &m, NodeId(0), 4, &k);
        let lu1 = steady_level(AppId::Lu, InputSize::X, &m, NodeId(1), 4, &k);
        assert!(lu0 > lu1, "LU root-node bump missing");
    }

    #[test]
    fn signal_params_scale_with_tier() {
        let c = catalog();
        let k = GeneratorKnobs::default();
        let strong = c.info(c.id("nr_mapped_vmstat").unwrap());
        let weak = c.info(c.id("load1_loadavg").unwrap());
        let ps = signal_params(AppId::Ft, InputSize::X, strong, NodeId(0), 4, &k);
        let pw = signal_params(AppId::Ft, InputSize::X, weak, NodeId(0), 4, &k);
        assert!(ps.white_sd / ps.level < pw.white_sd / pw.level);
        assert!(ps.drift_sd / ps.level < pw.drift_sd / pw.level);
        assert!(ps.init_tau_s >= 6.0 && ps.init_tau_s <= 10.0);
    }

    #[test]
    fn miniamr_has_ramp_others_do_not() {
        let c = catalog();
        let m = nr_mapped(&c);
        let k = GeneratorKnobs::default();
        let amr = signal_params(AppId::MiniAmr, InputSize::X, &m, NodeId(0), 4, &k);
        let ft = signal_params(AppId::Ft, InputSize::X, &m, NodeId(0), 4, &k);
        assert!(amr.ramp_per_s > 0.0);
        assert_eq!(ft.ramp_per_s, 0.0);
    }

    #[test]
    fn deterministic_across_calls() {
        let c = catalog();
        let m = nr_mapped(&c);
        let k = GeneratorKnobs::default();
        let a = signal_params(AppId::Cg, InputSize::Y, &m, NodeId(2), 4, &k);
        let b = signal_params(AppId::Cg, InputSize::Y, &m, NodeId(2), 4, &k);
        assert_eq!(a, b);
    }
}
