//! Synthetic HPC application models and the labeled dataset generator.
//!
//! The paper evaluates on the public Taxonomist artifact: repeated,
//! labeled executions of eleven applications (NPB FT/MG/SP/LU/BT/CG, CoMD,
//! miniGhost, miniAMR, miniMD, Kripke) with input sizes X/Y/Z (+ L for a
//! subset), monitored by LDMS. That artifact is network-gated, so this
//! crate generates a *statistically faithful* substitute (see DESIGN.md §2):
//!
//! * [`apps`] — application and input-size identities.
//! * [`profile`] — the per-(app, metric) signal model: steady levels with
//!   app separation by discriminability tier, input-size scaling (miniAMR
//!   strongly input-dependent, NPB apps barely), node-role asymmetry
//!   (SP/BT use node 0 and the last node differently — paper Table 4),
//!   an initialization transient over the first minute (why the paper
//!   fingerprints `[60:120]`), periodic compute-phase wobble, and noise
//!   magnitudes per tier.
//! * [`run`] — materializes one execution into an
//!   [`efd_telemetry::ExecutionTrace`] through the simulated LDMS collector.
//! * [`dataset`] — the Table 2 dataset: run inventory, lazy materialization
//!   (whole traces, or just window means for fingerprint-only workloads),
//!   in parallel, deterministic per master seed.
//! * [`splits`] — stratified k-fold and the leave-one-{input,app}-out
//!   splits the paper's five experiments are built from.
//! * [`scenario`] — adversarial & drift perturbations of the clean runs
//!   (cryptomining masquerade, metric dropout, node heterogeneity, input
//!   extrapolation, concept drift), seeded and intensity-parameterized.
//!
//! Everything is a deterministic function of the master seed; two processes
//! generating the same spec get bit-identical traces.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apps;
pub mod dataset;
pub mod profile;
pub mod run;
pub mod scenario;
pub mod splits;

pub use apps::{AppId, InputSize};
pub use dataset::{Dataset, DatasetSpec, SubsetKind};
pub use profile::{GeneratorKnobs, SignalParams, Tier};
pub use run::RunSpec;
pub use scenario::{CleanRuns, ScenarioData, ScenarioKind, ScenarioRun, ScenarioSpec};
pub use splits::{leave_one_app_out, leave_one_input_out, stratified_k_fold, Fold};
