//! Train/test splits for the paper's five experiments.
//!
//! * [`stratified_k_fold`] — the paper's 5-fold cross-validation ("normal
//!   fold"), stratified by label so every fold sees every (app, input).
//! * [`leave_one_input_out`] / [`leave_one_app_out`] — the building blocks
//!   of the soft/hard input/unknown experiments: each input size
//!   (respectively application) is removed once.

use efd_telemetry::AppLabel;
use efd_util::split::stratified_k_fold_by;
use efd_util::FxHashMap;

/// One train/test partition of run indices.
pub use efd_util::split::FoldIndices as Fold;

/// Stratified k-fold over run labels: within every label group, runs are
/// shuffled (seeded) and dealt round-robin to folds, so each fold's test
/// set contains ≈ `group/k` runs of every label. Folds are disjoint and
/// cover all indices.
pub fn stratified_k_fold(labels: &[AppLabel], k: usize, seed: u64) -> Vec<Fold> {
    stratified_k_fold_by(labels, k, seed)
}

/// For every distinct input size present, the indices of runs with that
/// input (the set "removed from learning" in the soft/hard input
/// experiments). Returned in sorted input-name order.
pub fn leave_one_input_out(labels: &[AppLabel]) -> Vec<(String, Vec<usize>)> {
    partition_by(labels, |l| l.input.clone())
}

/// For every distinct application present, the indices of runs of that
/// application (the set removed in the soft/hard unknown experiments).
pub fn leave_one_app_out(labels: &[AppLabel]) -> Vec<(String, Vec<usize>)> {
    partition_by(labels, |l| l.app.clone())
}

fn partition_by<F: Fn(&AppLabel) -> String>(
    labels: &[AppLabel],
    key: F,
) -> Vec<(String, Vec<usize>)> {
    let mut groups: FxHashMap<String, Vec<usize>> = FxHashMap::default();
    for (i, l) in labels.iter().enumerate() {
        groups.entry(key(l)).or_default().push(i);
    }
    let mut out: Vec<(String, Vec<usize>)> = groups.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_labels() -> Vec<AppLabel> {
        // 3 apps × 2 inputs × 5 reps = 30 runs.
        let mut v = Vec::new();
        for app in ["ft", "sp", "miniAMR"] {
            for input in ["X", "Y"] {
                for _ in 0..5 {
                    v.push(AppLabel::new(app, input));
                }
            }
        }
        v
    }

    #[test]
    fn folds_are_disjoint_and_cover() {
        let labels = toy_labels();
        let folds = stratified_k_fold(&labels, 5, 42);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![false; labels.len()];
        for f in &folds {
            for &i in &f.test {
                assert!(!seen[i], "index {i} in two test sets");
                seen[i] = true;
            }
            // train = complement of test
            let mut all: Vec<usize> = f.train.iter().chain(&f.test).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..labels.len()).collect::<Vec<_>>());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn folds_are_stratified() {
        let labels = toy_labels();
        let folds = stratified_k_fold(&labels, 5, 42);
        for f in &folds {
            // 6 labels × 5 reps dealt into 5 folds → exactly 1 run of each
            // label per fold.
            assert_eq!(f.test.len(), 6);
            let mut per_label: FxHashMap<&AppLabel, usize> = FxHashMap::default();
            for &i in &f.test {
                *per_label.entry(&labels[i]).or_default() += 1;
            }
            assert!(per_label.values().all(|&c| c == 1), "{per_label:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let labels = toy_labels();
        assert_eq!(
            stratified_k_fold(&labels, 5, 7),
            stratified_k_fold(&labels, 5, 7)
        );
        assert_ne!(
            stratified_k_fold(&labels, 5, 7),
            stratified_k_fold(&labels, 5, 8)
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn rejects_k_below_two() {
        stratified_k_fold(&toy_labels(), 1, 0);
    }

    #[test]
    fn leave_one_input_out_groups() {
        let labels = toy_labels();
        let groups = leave_one_input_out(&labels);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "X");
        assert_eq!(groups[1].0, "Y");
        assert_eq!(groups[0].1.len(), 15);
        for &i in &groups[0].1 {
            assert_eq!(labels[i].input, "X");
        }
    }

    #[test]
    fn leave_one_app_out_groups() {
        let labels = toy_labels();
        let groups = leave_one_app_out(&labels);
        let names: Vec<&str> = groups.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["ft", "miniAMR", "sp"]);
        for (name, idx) in &groups {
            assert_eq!(idx.len(), 10);
            for &i in idx {
                assert_eq!(&labels[i].app, name);
            }
        }
    }
}
