//! Application and input-size identities of the Table 2 dataset.

use std::fmt;

use efd_telemetry::AppLabel;
use efd_util::rng::str_tag;

/// The eleven applications of the paper's dataset (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppId {
    /// NPB FT — 3-D FFT, all-to-all communication heavy.
    Ft,
    /// NPB MG — multigrid, memory-bandwidth bound.
    Mg,
    /// NPB SP — scalar pentadiagonal solver.
    Sp,
    /// NPB LU — SSOR solver.
    Lu,
    /// NPB BT — block tridiagonal solver; behaviorally a near-twin of SP
    /// (the paper's Table 4 collision).
    Bt,
    /// NPB CG — conjugate gradient, irregular memory access.
    Cg,
    /// CoMD — molecular-dynamics proxy, compute bound.
    CoMd,
    /// miniGhost — halo-exchange stencil proxy.
    MiniGhost,
    /// miniAMR — adaptive mesh refinement; strongly input-dependent
    /// footprint (the paper's counterexample in §5).
    MiniAmr,
    /// miniMD — molecular-dynamics mini-app.
    MiniMd,
    /// Kripke — deterministic transport sweeps.
    Kripke,
}

serde::impl_serde_unit_enum!(AppId {
    Ft,
    Mg,
    Sp,
    Lu,
    Bt,
    Cg,
    CoMd,
    MiniGhost,
    MiniAmr,
    MiniMd,
    Kripke,
});

impl AppId {
    /// All applications, in the paper's Table 2 order.
    pub const ALL: [AppId; 11] = [
        AppId::Ft,
        AppId::Mg,
        AppId::Sp,
        AppId::Lu,
        AppId::Bt,
        AppId::Cg,
        AppId::CoMd,
        AppId::MiniGhost,
        AppId::MiniAmr,
        AppId::MiniMd,
        AppId::Kripke,
    ];

    /// The starred applications of Table 2: the subset that also has the
    /// large input size `L` (run on 32-node allocations).
    pub const STARRED: [AppId; 4] = [
        AppId::MiniGhost,
        AppId::MiniAmr,
        AppId::MiniMd,
        AppId::Kripke,
    ];

    /// Application name as it appears in the paper's dictionary dumps
    /// (lowercase for NPB, camel case for the mini-apps).
    pub fn name(self) -> &'static str {
        match self {
            AppId::Ft => "ft",
            AppId::Mg => "mg",
            AppId::Sp => "sp",
            AppId::Lu => "lu",
            AppId::Bt => "bt",
            AppId::Cg => "cg",
            AppId::CoMd => "CoMD",
            AppId::MiniGhost => "miniGhost",
            AppId::MiniAmr => "miniAMR",
            AppId::MiniMd => "miniMD",
            AppId::Kripke => "kripke",
        }
    }

    /// Parse a name produced by [`AppId::name`].
    pub fn from_name(name: &str) -> Option<AppId> {
        AppId::ALL.into_iter().find(|a| a.name() == name)
    }

    /// Whether this app has the `L` input size.
    pub fn has_large_input(self) -> bool {
        AppId::STARRED.contains(&self)
    }

    /// Stable seed tag for this app.
    pub fn tag(self) -> u64 {
        str_tag(self.name())
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Input sizes of the dataset. `X < Y < Z < L` in problem scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InputSize {
    /// Smallest input.
    X,
    /// Medium input.
    Y,
    /// Large input.
    Z,
    /// Extra-large input, only for the starred apps, on 32 nodes.
    L,
}

serde::impl_serde_unit_enum!(InputSize { X, Y, Z, L });

impl InputSize {
    /// All input sizes, ascending.
    pub const ALL: [InputSize; 4] = [InputSize::X, InputSize::Y, InputSize::Z, InputSize::L];

    /// Name as used in labels (`X`, `Y`, `Z`, `L`).
    pub fn name(self) -> &'static str {
        match self {
            InputSize::X => "X",
            InputSize::Y => "Y",
            InputSize::Z => "Z",
            InputSize::L => "L",
        }
    }

    /// Parse a name produced by [`InputSize::name`].
    pub fn from_name(name: &str) -> Option<InputSize> {
        InputSize::ALL.into_iter().find(|i| i.name() == name)
    }

    /// Ordinal scale step (X=0 … L=3), used by input-dependence models.
    pub fn step(self) -> u32 {
        match self {
            InputSize::X => 0,
            InputSize::Y => 1,
            InputSize::Z => 2,
            InputSize::L => 3,
        }
    }

    /// Stable seed tag.
    pub fn tag(self) -> u64 {
        str_tag(self.name())
    }
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Build the `"app input"` label for a run (the paper's value format,
/// e.g. `ft X`).
pub fn label(app: AppId, input: InputSize) -> AppLabel {
    AppLabel::new(app.name(), input.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_apps_four_inputs() {
        assert_eq!(AppId::ALL.len(), 11);
        assert_eq!(InputSize::ALL.len(), 4);
    }

    #[test]
    fn names_roundtrip() {
        for a in AppId::ALL {
            assert_eq!(AppId::from_name(a.name()), Some(a));
        }
        for i in InputSize::ALL {
            assert_eq!(InputSize::from_name(i.name()), Some(i));
        }
        assert_eq!(AppId::from_name("nonexistent"), None);
    }

    #[test]
    fn starred_apps_have_large_input() {
        for a in AppId::ALL {
            assert_eq!(a.has_large_input(), AppId::STARRED.contains(&a));
        }
        assert!(AppId::MiniAmr.has_large_input());
        assert!(!AppId::Ft.has_large_input());
    }

    #[test]
    fn label_format_matches_paper() {
        assert_eq!(label(AppId::Ft, InputSize::X).to_string(), "ft X");
        assert_eq!(label(AppId::MiniAmr, InputSize::Z).to_string(), "miniAMR Z");
        assert_eq!(label(AppId::CoMd, InputSize::Y).to_string(), "CoMD Y");
    }

    #[test]
    fn tags_are_distinct() {
        let mut tags: Vec<u64> = AppId::ALL.iter().map(|a| a.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 11);
    }

    #[test]
    fn input_steps_ascend() {
        assert!(InputSize::X.step() < InputSize::Y.step());
        assert!(InputSize::Y.step() < InputSize::Z.step());
        assert!(InputSize::Z.step() < InputSize::L.step());
    }
}
