//! Materializing one execution into telemetry.
//!
//! A [`RunSpec`] is the *identity* of a run (app, input, allocation size,
//! repetition, seed); [`materialize`] turns it into an
//! [`ExecutionTrace`] by driving one [`SignalSource`] per (node, metric)
//! through the simulated LDMS collector. Everything is a pure function of
//! the spec, so runs can be regenerated lazily, in any order, in parallel.
//!
//! [`window_means`] is the fingerprint fast path: it simulates only up to
//! the end of the requested window and returns per-node means — identical
//! (bit for bit) to materializing the full trace and averaging, because all
//! random draws happen in sample order.

use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::noise::{Composite, NoiseProcess};
use efd_telemetry::sampler::{CollectorConfig, LdmsCollector, MetricSource};
use efd_telemetry::trace::{ExecutionTrace, MetricSelection, NodeId, NodeTrace};
use efd_telemetry::{AppLabel, Interval};
use efd_util::rng::{derive_seed, SplitMix64};

use crate::apps::{label, AppId, InputSize};
use crate::profile::{signal_params, GeneratorKnobs, SignalParams};

/// Identity of one execution: everything needed to regenerate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Application.
    pub app: AppId,
    /// Input size.
    pub input: InputSize,
    /// Allocation size (4 for X/Y/Z runs, 32 for L runs — paper Table 2).
    pub n_nodes: u16,
    /// Repetition index within (app, input).
    pub rep: u32,
    /// Wall-clock duration in seconds.
    pub duration_s: u32,
    /// Run seed (derived from the dataset master seed).
    pub seed: u64,
}

serde::impl_serde_struct!(RunSpec {
    app,
    input,
    n_nodes,
    rep,
    duration_s,
    seed,
});

impl RunSpec {
    /// Ground-truth label of this run.
    pub fn label(&self) -> AppLabel {
        label(self.app, self.input)
    }

    /// Stable execution id.
    pub fn exec_id(&self) -> u64 {
        derive_seed(self.seed, &[0xE7EC])
    }
}

/// The ground-truth signal for one (run, node, metric) stream:
/// deterministic level/transient/pattern plus seeded noise. Implements
/// [`MetricSource`] for the collector.
pub struct SignalSource {
    level: f64,
    init_mult: f64,
    init_tau_s: f64,
    period_s: f64,
    period_amp: f64,
    phase: f64,
    ramp_per_s: f64,
    noise: Composite,
    /// Noise inflation during the init phase (t < 60 s): startup chaos.
    init_noise_mult: f64,
}

impl SignalSource {
    /// Build the source for `params`, with run-specific jitter drawn from
    /// `stream_seed`.
    pub fn new(params: &SignalParams, stream_seed: u64) -> Self {
        let mut rng = SplitMix64::new(derive_seed(stream_seed, &[0x51D0]));
        let level = params.level * (1.0 + params.run_jitter_rel * rng.next_gaussian());
        let init_tau_s = params.init_tau_s * (1.0 + 0.1 * (rng.next_f64() * 2.0 - 1.0));
        let phase = std::f64::consts::TAU * rng.next_f64();
        let noise = Composite::standard(
            params.white_sd,
            params.drift_sd,
            params.spike_height,
            derive_seed(stream_seed, &[0x2A0B]),
        );
        Self {
            level,
            init_mult: params.init_mult,
            init_tau_s,
            period_s: params.period_s,
            period_amp: params.period_amp,
            phase,
            ramp_per_s: params.ramp_per_s,
            noise,
            init_noise_mult: 3.0,
        }
    }
}

impl MetricSource for SignalSource {
    fn value_at(&mut self, t: f64) -> f64 {
        let init = 1.0 + (self.init_mult - 1.0) * (-t / self.init_tau_s).exp();
        // Growth is centered on the fingerprint window's midpoint (90 s) so
        // the paper's [60:120] mean reads the steady level while later
        // windows still differ (temporal-alignment structure).
        let ramp = 1.0 + self.ramp_per_s * (t - 90.0);
        let mut v = self.level * init * ramp;
        if self.period_s > 0.0 {
            v += self.period_amp
                * (std::f64::consts::TAU * t / self.period_s + self.phase).sin();
        }
        let mut n = self.noise.sample(t);
        if t < 60.0 {
            n *= self.init_noise_mult;
        }
        // Telemetry counters cannot go negative.
        (v + n).max(0.0)
    }
}

/// Seed for one (run, node, metric) stream.
fn stream_seed(spec: &RunSpec, node: NodeId, metric_salt: u64) -> u64 {
    derive_seed(spec.seed, &[node.0 as u64, metric_salt])
}

/// Materialize the full trace of a run for the selected metrics.
pub fn materialize(
    spec: &RunSpec,
    catalog: &MetricCatalog,
    selection: &MetricSelection,
    collector: CollectorConfig,
    knobs: &GeneratorKnobs,
) -> ExecutionTrace {
    materialize_prefix(spec, catalog, selection, collector, knobs, spec.duration_s)
}

/// Materialize only the first `horizon_s` seconds of a run (identical to
/// the prefix of the full trace).
pub fn materialize_prefix(
    spec: &RunSpec,
    catalog: &MetricCatalog,
    selection: &MetricSelection,
    collector: CollectorConfig,
    knobs: &GeneratorKnobs,
    horizon_s: u32,
) -> ExecutionTrace {
    let horizon = horizon_s.min(spec.duration_s);
    let nodes = (0..spec.n_nodes)
        .map(|n| {
            let node = NodeId(n);
            let series = selection
                .ids()
                .iter()
                .map(|&id| {
                    let info = catalog.info(id);
                    let params =
                        signal_params(spec.app, spec.input, info, node, spec.n_nodes, knobs);
                    let seed = stream_seed(spec, node, info.salt);
                    let mut source = SignalSource::new(&params, seed);
                    let mut ldms =
                        LdmsCollector::new(collector, derive_seed(seed, &[0xC011]));
                    ldms.collect(&mut source, horizon)
                })
                .collect();
            NodeTrace { node, series }
        })
        .collect();
    ExecutionTrace {
        exec_id: spec.exec_id(),
        label: spec.label(),
        selection: selection.clone(),
        nodes,
        duration_s: horizon,
    }
}

/// Fingerprint fast path: per-node, per-metric means over `window`,
/// simulating only `window.end` seconds. `out[node][metric_pos]`.
pub fn window_means(
    spec: &RunSpec,
    catalog: &MetricCatalog,
    selection: &MetricSelection,
    window: Interval,
    collector: CollectorConfig,
    knobs: &GeneratorKnobs,
) -> Vec<Vec<f64>> {
    let trace = materialize_prefix(spec, catalog, selection, collector, knobs, window.end);
    trace
        .nodes
        .iter()
        .map(|n| n.series.iter().map(|s| s.window_mean(window)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::steady_level;
    use efd_telemetry::catalog::small_catalog;
    

    fn spec() -> RunSpec {
        RunSpec {
            app: AppId::Ft,
            input: InputSize::X,
            n_nodes: 4,
            rep: 0,
            duration_s: 300,
            seed: 0xABCD,
        }
    }

    fn setup() -> (MetricCatalog, MetricSelection) {
        let c = small_catalog();
        let id = c.id("nr_mapped_vmstat").unwrap();
        (c, MetricSelection::single(id))
    }

    #[test]
    fn materialization_is_deterministic() {
        let (c, sel) = setup();
        let k = GeneratorKnobs::default();
        let a = materialize(&spec(), &c, &sel, CollectorConfig::default(), &k);
        let b = materialize(&spec(), &c, &sel, CollectorConfig::default(), &k);
        assert_eq!(a, b);
    }

    #[test]
    fn trace_shape_matches_spec() {
        let (c, sel) = setup();
        let k = GeneratorKnobs::default();
        let t = materialize(&spec(), &c, &sel, CollectorConfig::default(), &k);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.label.to_string(), "ft X");
        for n in &t.nodes {
            assert_eq!(n.series.len(), 1);
            assert_eq!(n.series[0].len(), 300);
        }
    }

    #[test]
    fn window_mean_near_steady_level() {
        let (c, sel) = setup();
        let k = GeneratorKnobs::default();
        let id = sel.ids()[0];
        let t = materialize(&spec(), &c, &sel, CollectorConfig::ideal(), &k);
        let expect = steady_level(
            AppId::Ft,
            InputSize::X,
            c.info(id),
            NodeId(0),
            4,
            &k,
        );
        let mean = t
            .series(NodeId(0), id)
            .unwrap()
            .window_mean(Interval::PAPER_DEFAULT);
        let rel = (mean / expect - 1.0).abs();
        assert!(rel < 0.01, "window mean {mean} vs steady {expect}");
    }

    #[test]
    fn init_phase_deviates_from_steady() {
        let (c, sel) = setup();
        let k = GeneratorKnobs::default();
        let id = sel.ids()[0];
        let t = materialize(&spec(), &c, &sel, CollectorConfig::ideal(), &k);
        let s = t.series(NodeId(0), id).unwrap();
        let steady = s.window_mean(Interval::new(120, 240));
        let early = s.window_mean(Interval::new(0, 30));
        let late_dev = (s.window_mean(Interval::PAPER_DEFAULT) / steady - 1.0).abs();
        let early_dev = (early / steady - 1.0).abs();
        assert!(
            early_dev > late_dev * 3.0,
            "init transient too weak: early {early_dev} vs late {late_dev}"
        );
    }

    #[test]
    fn different_reps_produce_different_means() {
        let (c, sel) = setup();
        let k = GeneratorKnobs::default();
        let id = sel.ids()[0];
        let mut means = Vec::new();
        for rep in 0..5u32 {
            let s = RunSpec {
                rep,
                seed: derive_seed(1, &[rep as u64]),
                ..spec()
            };
            let t = materialize(&s, &c, &sel, CollectorConfig::default(), &k);
            means.push(
                t.series(NodeId(0), id)
                    .unwrap()
                    .window_mean(Interval::PAPER_DEFAULT),
            );
        }
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        means.dedup();
        assert!(means.len() >= 4, "means too identical: {means:?}");
        // …but they all stay near the app level (fingerprints repeat after
        // rounding).
        let spread = means.last().unwrap() / means.first().unwrap() - 1.0;
        assert!(spread < 0.01, "run-to-run spread {spread}");
    }

    #[test]
    fn window_means_fast_path_matches_full_trace() {
        let (c, sel) = setup();
        let k = GeneratorKnobs::default();
        let id = sel.ids()[0];
        let w = Interval::PAPER_DEFAULT;
        let fast = window_means(&spec(), &c, &sel, w, CollectorConfig::default(), &k);
        let t = materialize(&spec(), &c, &sel, CollectorConfig::default(), &k);
        for n in 0..4u16 {
            let full = t.series(NodeId(n), id).unwrap().window_mean(w);
            assert_eq!(
                fast[n as usize][0], full,
                "node {n}: fast path diverged from full trace"
            );
        }
    }

    #[test]
    fn miniamr_ramp_shifts_later_windows() {
        let (c, sel) = setup();
        let k = GeneratorKnobs::default();
        let id = sel.ids()[0];
        let s = RunSpec {
            app: AppId::MiniAmr,
            ..spec()
        };
        let t = materialize(&s, &c, &sel, CollectorConfig::ideal(), &k);
        let series = t.series(NodeId(0), id).unwrap();
        let w1 = series.window_mean(Interval::new(60, 120));
        let w2 = series.window_mean(Interval::new(180, 240));
        assert!(w2 > w1 * 1.01, "ramp missing: {w1} -> {w2}");
    }

    #[test]
    fn values_never_negative() {
        let (c, _) = setup();
        // Weak-tier metric with heavy noise.
        let id = c.id("load1_loadavg").unwrap();
        let sel = MetricSelection::single(id);
        let k = GeneratorKnobs::default();
        let t = materialize(&spec(), &c, &sel, CollectorConfig::default(), &k);
        for n in &t.nodes {
            assert!(n.series[0]
                .values()
                .iter()
                .filter(|v| v.is_finite())
                .all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn prefix_equals_full_prefix() {
        let (c, sel) = setup();
        let k = GeneratorKnobs::default();
        let id = sel.ids()[0];
        let pre = materialize_prefix(&spec(), &c, &sel, CollectorConfig::default(), &k, 120);
        let full = materialize(&spec(), &c, &sel, CollectorConfig::default(), &k);
        let a = pre.series(NodeId(2), id).unwrap().values();
        let b = &full.series(NodeId(2), id).unwrap().values()[..120];
        assert_eq!(a.len(), 120);
        for (x, y) in a.iter().zip(b) {
            assert!((x == y) || (x.is_nan() && y.is_nan()));
        }
    }
}
