//! Property tests for the scenario builder (`efd_workload::scenario`).
//!
//! The load-bearing invariant: at `intensity == 0.0` every scenario is a
//! true null perturbation — the built test sequence is *byte-identical*
//! (per-f64 bit pattern) to the clean substrate, for any substrate, any
//! scenario kind, and any seed. The scoring side leans on this: the
//! intensity-0 column of the matrix doubles as the clean baseline.

use proptest::prelude::*;

use efd_telemetry::AppLabel;
use efd_workload::scenario::{build, split, CleanRuns, ScenarioKind, ScenarioSpec};

/// A synthetic substrate: arbitrary labels over a small app pool and
/// arbitrary per-node means, including the awkward ones (zero, negative,
/// huge, and non-finite "lost sensor" values).
fn arb_clean_runs() -> impl Strategy<Value = CleanRuns> {
    let mean = prop_oneof![
        -1.0e9..1.0e9,
        Just(0.0),
        Just(-0.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ];
    (2usize..6).prop_flat_map(move |nodes| {
        prop::collection::vec(
            (
                prop::sample::select(vec!["hpl", "kripke", "miner", "lammps"]),
                prop::sample::select(vec!["small", "large"]),
                prop::collection::vec(mean.clone(), nodes..=nodes),
            ),
            1..24,
        )
        .prop_map(|runs| {
            let labels = runs
                .iter()
                .map(|(app, input, _)| AppLabel::new(*app, *input))
                .collect();
            let means = runs.into_iter().map(|(_, _, m)| m).collect();
            CleanRuns { labels, means }
        })
    })
}

fn arb_kind() -> impl Strategy<Value = ScenarioKind> {
    prop::sample::select(ScenarioKind::ALL.to_vec())
}

/// Bit patterns of a run's means — NaN-proof equality.
fn bits(means: &[f64]) -> Vec<u64> {
    means.iter().map(|m| m.to_bits()).collect()
}

proptest! {
    /// Satellite 2: intensity 0 is byte-identical to the clean substrate,
    /// for every scenario kind, any seed, any substrate.
    #[test]
    fn null_perturbation_is_byte_identical(
        clean in arb_clean_runs(),
        kind in arb_kind(),
        seed in any::<u64>(),
    ) {
        let spec = ScenarioSpec { kind, intensity: 0.0, seed };
        let data = build(&clean, &spec);
        let (train_idx, test_idx) = split(clean.len());

        prop_assert_eq!(data.test.len(), test_idx.len());
        prop_assert_eq!(data.train.len(), train_idx.len());
        for (run, &i) in data.test.iter().zip(&test_idx) {
            prop_assert_eq!(bits(&run.means), bits(&clean.means[i]));
            prop_assert_eq!(run.truth.as_ref(), Some(&clean.labels[i]));
        }
        for (run, &i) in data.train.iter().zip(&train_idx) {
            prop_assert_eq!(bits(&run.means), bits(&clean.means[i]));
            prop_assert_eq!(run.truth.as_ref(), Some(&clean.labels[i]));
        }
    }

    /// Builds are pure functions of (substrate, spec): two builds of the
    /// same spec are bit-identical at any intensity.
    #[test]
    fn builds_are_deterministic_at_any_intensity(
        clean in arb_clean_runs(),
        kind in arb_kind(),
        seed in any::<u64>(),
        quarters in 0u8..5,
    ) {
        let spec = ScenarioSpec { kind, intensity: f64::from(quarters) / 4.0, seed };
        let a = build(&clean, &spec);
        let b = build(&clean, &spec);
        prop_assert_eq!(a.test.len(), b.test.len());
        for (ra, rb) in a.test.iter().zip(&b.test) {
            prop_assert_eq!(bits(&ra.means), bits(&rb.means));
            prop_assert_eq!(ra.truth.as_ref(), rb.truth.as_ref());
            prop_assert_eq!(ra.relearn, rb.relearn);
        }
    }

    /// Perturbations never manufacture data: non-finite clean means stay
    /// non-finite (lost sensors are not resurrected), and in-dictionary
    /// runs keep their ground truth at every intensity.
    #[test]
    fn perturbations_preserve_shape_and_truth(
        clean in arb_clean_runs(),
        kind in arb_kind(),
        seed in any::<u64>(),
        quarters in 0u8..5,
    ) {
        let spec = ScenarioSpec { kind, intensity: f64::from(quarters) / 4.0, seed };
        let data = build(&clean, &spec);
        let (_, test_idx) = split(clean.len());

        // Injected runs (masquerade miners) only ever extend the tail.
        prop_assert!(data.test.len() >= test_idx.len());
        for (run, &i) in data.test.iter().zip(&test_idx) {
            prop_assert_eq!(run.means.len(), clean.means[i].len());
            prop_assert_eq!(run.truth.as_ref(), Some(&clean.labels[i]));
            for (m, c) in run.means.iter().zip(&clean.means[i]) {
                if !c.is_finite() && kind != ScenarioKind::MetricDropout {
                    prop_assert_eq!(m.to_bits(), c.to_bits());
                }
            }
        }
        // Everything past the clean tail is an abstention target.
        for run in &data.test[test_idx.len()..] {
            prop_assert_eq!(run.truth.as_ref(), None);
        }
    }
}
