//! Zero-copy serving straight over EFDB bytes.
//!
//! [`crate::Snapshot::from_efdb`] decodes every section of a dictionary
//! file into owned shard maps before the first query can be answered —
//! cold-start cost linear in dictionary size. [`EfdbSnapshot`] skips the
//! rebuild entirely: [`efd_core::binfmt::check`] validates the buffer
//! once, the small app/label tables are decoded (they are bounded by the
//! number of *applications*, not keys), and the key records and postings
//! — the two sections that scale with dictionary size — are served **in
//! place**. Lookup is a per-metric prefix fan-out (computed once at load)
//! followed by binary search over the sorted fixed-width records;
//! postings are walked with the chunked
//! [`efd_core::binfmt::Postings::for_each_label`] decoder, votes landing
//! in the same [`VoteScratch`] kernel the owned snapshot uses.
//!
//! Cold-start stops scaling with key count (beyond the one checksum +
//! validation pass every load must pay), so holding many resident
//! dictionary versions — the SIREN-style fleet scenario — costs bytes,
//! not rebuild time.

use std::ops::Range;
use std::sync::Arc;

use efd_core::binfmt::{self, BinFormatError, KeyRecords, Postings};
use efd_core::dictionary::{AppNameId, LabelId};
use efd_core::engine::{Recognize, VoteScratch};
use efd_core::{Fingerprint, Query, Recognition, RoundingDepth};
use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::{AppLabel, MetricId};
use efd_util::FxHashMap;

use crate::keystore::{self, KeyStore};

/// An immutable recognition backend serving directly from EFDB bytes.
///
/// Construction validates the buffer once ([`efd_core::binfmt::check`])
/// and resolves the file's metric names against a catalog; afterwards
/// every query binary-searches the raw key records and iterates postings
/// in place — the buffer *is* the index. Implements [`Recognize`], so
/// batch fan-out, recognizer stacking, and the CLI's backend selection
/// treat it like any other engine.
///
/// ```
/// use efd_core::{binfmt, EfdDictionary, Query, RoundingDepth};
/// use efd_serve::{EfdbSnapshot, Recognize};
/// use efd_telemetry::catalog::small_catalog;
/// use efd_telemetry::{AppLabel, Interval, NodeId};
///
/// let catalog = small_catalog();
/// let metric = catalog.id("nr_mapped_vmstat").unwrap();
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// for (node, mean) in [6020.0, 6019.0].into_iter().enumerate() {
///     dict.insert_raw(metric, NodeId(node as u16), Interval::PAPER_DEFAULT,
///                     mean, &AppLabel::new("ft", "X"));
/// }
/// let bytes = binfmt::write(&dict.to_parts(), &catalog);
///
/// // Cold start: check the bytes, then serve them in place.
/// let snap = EfdbSnapshot::load(bytes, &catalog).unwrap();
/// let q = Query::from_node_means(metric, Interval::PAPER_DEFAULT, &[6001.0, 5999.0]);
/// assert_eq!(snap.recognize(&q).verdict, dict.recognize(&q).verdict);
/// assert_eq!(snap.len(), dict.len());
/// ```
#[derive(Debug, Clone)]
pub struct EfdbSnapshot {
    /// The whole validated file; key records and postings are read from
    /// it in place.
    bytes: Arc<[u8]>,
    depth: RoundingDepth,
    key_records: Range<usize>,
    postings_blob: Range<usize>,
    /// Catalog [`MetricId`] → record-index span of that metric's keys:
    /// the prefix fan-out, computed once so each probe binary-searches
    /// only its metric's contiguous records.
    metric_spans: FxHashMap<MetricId, (u32, u32)>,
    labels: Vec<AppLabel>,
    apps: Vec<String>,
    label_app: Vec<AppNameId>,
}

impl EfdbSnapshot {
    /// Validate `bytes` as an EFDB file and serve it in place (metric
    /// names resolved via `catalog`).
    ///
    /// Accepts anything convertible into `Arc<[u8]>` — a freshly read
    /// `Vec<u8>`, or a shared `Arc<[u8]>` when several snapshots (or a
    /// snapshot and something else) serve the same buffer. Fails with the
    /// usual [`BinFormatError`]s on corrupt bytes, or
    /// [`BinFormatError::UnknownMetric`] when the file references a
    /// metric the catalog does not know.
    pub fn load(
        bytes: impl Into<Arc<[u8]>>,
        catalog: &MetricCatalog,
    ) -> Result<Self, BinFormatError> {
        let bytes: Arc<[u8]> = bytes.into();
        let view = binfmt::check(&bytes)?;

        let strings: Vec<&str> = view.strings().collect();
        let keys = view.keys();
        let mut metric_spans = FxHashMap::default();
        for (idx, sid) in view.metric_string_ids().enumerate() {
            let name = strings[sid as usize];
            let id = catalog
                .id(name)
                .ok_or_else(|| BinFormatError::UnknownMetric(name.to_string()))?;
            let span = keys.metric_range(idx as u32);
            metric_spans.insert(id, (span.start as u32, span.end as u32));
        }

        let apps: Vec<String> = view
            .app_string_ids()
            .map(|sid| strings[sid as usize].to_string())
            .collect();
        let mut labels = Vec::new();
        let mut label_app = Vec::new();
        for (app, input) in view.label_records() {
            labels.push(AppLabel::new(&apps[app as usize], strings[input as usize]));
            label_app.push(AppNameId::from_index(app as usize));
        }

        let key_records = view.key_records_range();
        let postings_blob = view.postings_blob_range();
        Ok(Self {
            depth: view.depth(),
            key_records,
            postings_blob,
            metric_spans,
            labels,
            apps,
            label_app,
            bytes,
        })
    }

    /// The sorted raw key records, rebound from the owned buffer.
    #[inline]
    fn keys(&self) -> KeyRecords<'_> {
        KeyRecords::over(&self.bytes[self.key_records.clone()])
    }

    /// The postings blob, rebound from the owned buffer.
    #[inline]
    fn postings(&self) -> Postings<'_> {
        Postings::over(&self.bytes[self.postings_blob.clone()])
    }

    /// Postings-blob offset of `fp`'s label list, if the key exists:
    /// prefix fan-out on the metric, then binary search within its span.
    #[inline]
    fn find(&self, fp: &Fingerprint) -> Option<u32> {
        let &(lo, hi) = self.metric_spans.get(&fp.metric)?;
        // A span is keyed by MetricId, and every record inside it holds
        // the same file-local metric index, so the metric component of
        // the search key is whatever that index is — read it from the
        // span's first record.
        let keys = self.keys();
        let metric_idx = keys.get(lo as usize)?.metric;
        let rec = keys.find_in(
            lo as usize..hi as usize,
            metric_idx,
            fp.node,
            fp.interval,
            fp.mean().to_bits(),
        )?;
        Some(rec.postings_off)
    }

    /// The rounding depth the served file was built with.
    pub fn depth(&self) -> RoundingDepth {
        self.depth
    }

    /// Number of keys in the served file.
    pub fn len(&self) -> usize {
        self.key_records.len() / binfmt::KEY_RECORD_LEN
    }

    /// Whether the served file holds no keys.
    pub fn is_empty(&self) -> bool {
        self.key_records.is_empty()
    }

    /// Size of the backing buffer in bytes — the entire serving cost of
    /// keeping this snapshot resident.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Distinct application names, in interned (tie-break) order.
    pub fn app_names(&self) -> &[String] {
        &self.apps
    }

    /// Distinct labels learned.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Verdict-only fast path (see [`crate::Snapshot::best`]): the
    /// most-voted application, ties broken lexicographically, `None`
    /// when nothing matched.
    pub fn best(&self, query: &Query) -> Option<&str> {
        let mut scratch = VoteScratch::default();
        self.best_with(query, &mut scratch)
    }

    /// [`EfdbSnapshot::best`] with caller-owned scratch — the
    /// zero-allocation hot path.
    pub fn best_with<'s>(&'s self, query: &Query, scratch: &mut VoteScratch) -> Option<&'s str> {
        keystore::best_with(self, query, scratch)
    }
}

/// The zero-copy [`KeyStore`]: probes binary-search the raw key records;
/// label votes stream from the postings blob via the chunked decoder.
/// Unlike the owned snapshot there is no precomputed per-entry app list,
/// so app votes dedup per point through the scratch
/// ([`VoteScratch::vote_app_deduped`]) — exactly the oracle's semantics.
impl KeyStore for EfdbSnapshot {
    fn depth(&self) -> RoundingDepth {
        self.depth
    }

    fn labels(&self) -> &[AppLabel] {
        &self.labels
    }

    fn apps(&self) -> &[String] {
        &self.apps
    }

    #[inline]
    fn vote(&self, fp: &Fingerprint, scratch: &mut VoteScratch, wide: bool) -> bool {
        let Some(off) = self.find(fp) else {
            return false;
        };
        scratch.begin_point();
        self.postings().for_each_label(off, |id| {
            let label = LabelId::from_index(id as usize);
            if wide {
                scratch.vote_label_wide(label);
            } else {
                scratch.vote_label(label);
            }
            scratch.vote_app_deduped(self.label_app[id as usize]);
        });
        true
    }

    #[inline]
    fn vote_apps(&self, fp: &Fingerprint, scratch: &mut VoteScratch) -> bool {
        let Some(off) = self.find(fp) else {
            return false;
        };
        scratch.begin_point();
        self.postings().for_each_label(off, |id| {
            scratch.vote_app_deduped(self.label_app[id as usize]);
        });
        true
    }
}

/// The zero-copy form as an engine backend — `recognize_into` runs the
/// shared [`keystore`] vote kernel over the raw file sections.
impl Recognize for EfdbSnapshot {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        keystore::recognize_with(self, query, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_core::{binfmt, EfdDictionary, LabeledObservation};
    use efd_telemetry::catalog::small_catalog;
    use efd_telemetry::Interval;

    const W: Interval = Interval::PAPER_DEFAULT;

    fn toy_dict(metric: MetricId) -> EfdDictionary {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        for (app, input, means) in [
            ("ft", "X", [6020.0, 6020.0, 6020.0, 6020.0]),
            ("sp", "X", [7617.0, 7520.0, 7520.0, 7121.0]),
            ("bt", "X", [7638.0, 7540.0, 7540.0, 7140.0]),
            ("miniAMR", "Z", [10980.0; 4]),
        ] {
            d.learn(&LabeledObservation {
                label: AppLabel::new(app, input),
                query: Query::from_node_means(metric, W, &means),
            });
        }
        d
    }

    #[test]
    fn matches_owned_snapshot_on_every_query() {
        let catalog = small_catalog();
        let m = catalog.id("nr_mapped_vmstat").unwrap();
        let dict = toy_dict(m);
        let bytes = binfmt::write(&dict.to_parts(), &catalog);
        let zero = EfdbSnapshot::load(bytes, &catalog).unwrap();
        assert_eq!(zero.len(), dict.len());
        assert_eq!(zero.depth(), dict.depth());
        for means in [
            [6031.0, 5988.0, 6007.0, 6044.0],
            [7601.0, 7512.0, 7533.0, 7098.0],
            [10951.0, 11020.0, 10990.0, 11043.0],
            [1.0, 2.0, 3.0, 4.0],
            [6000.0, 6000.0, 7500.0, f64::NAN],
        ] {
            let q = Query::from_node_means(m, W, &means);
            let oracle = dict.recognize(&q).normalized();
            assert_eq!(zero.recognize(&q), oracle);
            assert_eq!(zero.best(&q), oracle.best());
        }
    }

    #[test]
    fn unknown_metric_in_query_is_a_clean_miss() {
        let catalog = small_catalog();
        let m = catalog.id("nr_mapped_vmstat").unwrap();
        let bytes = binfmt::write(&toy_dict(m).to_parts(), &catalog);
        let zero = EfdbSnapshot::load(bytes, &catalog).unwrap();
        // A metric the file never stored: no span, no match, no panic.
        let q = Query::from_node_means(MetricId(9999), W, &[6020.0]);
        assert_eq!(zero.recognize(&q).verdict, efd_core::Verdict::Unknown);
    }

    #[test]
    fn load_rejects_unresolvable_metric() {
        let catalog = small_catalog();
        let m = catalog.id("nr_mapped_vmstat").unwrap();
        let bytes = binfmt::write(&toy_dict(m).to_parts(), &catalog);
        let empty = efd_telemetry::MetricCatalog::new();
        assert!(matches!(
            EfdbSnapshot::load(bytes, &empty),
            Err(BinFormatError::UnknownMetric(_))
        ));
    }

    #[test]
    fn empty_file_serves_unknown() {
        let catalog = small_catalog();
        let m = catalog.id("nr_mapped_vmstat").unwrap();
        let dict = EfdDictionary::new(RoundingDepth::new(2));
        let bytes = binfmt::write(&dict.to_parts(), &catalog);
        let zero = EfdbSnapshot::load(bytes, &catalog).unwrap();
        assert!(zero.is_empty());
        let q = Query::from_node_means(m, W, &[1.0]);
        assert_eq!(zero.recognize(&q).verdict, efd_core::Verdict::Unknown);
        assert_eq!(zero.best(&q), None);
    }

    #[test]
    fn shared_buffer_loads_cheaply() {
        let catalog = small_catalog();
        let m = catalog.id("nr_mapped_vmstat").unwrap();
        let dict = toy_dict(m);
        let buf: Arc<[u8]> = binfmt::write(&dict.to_parts(), &catalog).into();
        let a = EfdbSnapshot::load(Arc::clone(&buf), &catalog).unwrap();
        let b = EfdbSnapshot::load(buf, &catalog).unwrap();
        let q = Query::from_node_means(m, W, &[6031.0, 5988.0]);
        assert_eq!(a.recognize(&q), b.recognize(&q));
        assert_eq!(a.byte_len(), b.byte_len());
    }
}
