//! Served form of the conjunctive multi-metric dictionary.
//!
//! The paper's §6 future work combines several metrics into one
//! fingerprint; [`efd_core::multi::ComboDictionary`] implements the
//! conjunctive ("combinatorial hash") variant. [`ComboSnapshot`] freezes
//! one behind an `Arc` so multi-metric voting works against the served
//! form too: lock-free shared reads, deterministic
//! [`Recognition::normalized`] answers, parallel batches.

use std::sync::Arc;

use efd_core::engine::{Recognize, VoteScratch};
use efd_core::multi::ComboDictionary;
use efd_core::{Query, Recognition};

/// An immutable, shareable freeze of a [`ComboDictionary`].
///
/// `ComboDictionary::recognize` is already a `&self` read; what freezing
/// adds is the serving contract — the inner dictionary can no longer be
/// mutated, clones share it via `Arc`, and answers go through the engine
/// API ([`Recognize`]) in [`Recognition::normalized`] order. Parallel
/// batches come from the blanket
/// [`ParallelRecognize`](efd_core::engine::ParallelRecognize) extension.
#[derive(Debug, Clone)]
pub struct ComboSnapshot {
    inner: Arc<ComboDictionary>,
}

impl ComboSnapshot {
    /// Freeze a learned combo dictionary for serving.
    pub fn freeze(dict: ComboDictionary) -> Self {
        Self {
            inner: Arc::new(dict),
        }
    }

    /// Number of conjunctive keys.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

/// The served combo form as an engine backend: conjunctive multi-metric
/// voting against the frozen dictionary, answers in
/// [`Recognition::normalized`] order.
impl Recognize for ComboSnapshot {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        self.inner.recognize_into(query, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_core::observation::ObsPoint;
    use efd_core::{LabeledObservation, RoundingDepth, Verdict};
    use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};

    const M0: MetricId = MetricId(0);
    const M1: MetricId = MetricId(1);
    const W: Interval = Interval::PAPER_DEFAULT;

    fn obs(app: &str, m0: [f64; 2], m1: [f64; 2]) -> LabeledObservation {
        let mut q = Query::default();
        for (n, (&a, &b)) in m0.iter().zip(m1.iter()).enumerate() {
            for (metric, mean) in [(M0, a), (M1, b)] {
                q.points.push(ObsPoint {
                    metric,
                    node: NodeId(n as u16),
                    interval: W,
                    mean,
                });
            }
        }
        LabeledObservation {
            label: AppLabel::new(app, "X"),
            query: q,
        }
    }

    #[test]
    fn served_combo_separates_single_metric_collisions() {
        // sp/bt collide on metric 0, differ on metric 1 — the conjunctive
        // key keeps them apart even through the served form.
        let mut dict = ComboDictionary::new(vec![M0, M1], RoundingDepth::new(2));
        dict.learn(&obs("sp", [7520.0, 7520.0], [4010.0, 4010.0]));
        dict.learn(&obs("bt", [7520.0, 7520.0], [9020.0, 9020.0]));
        let snap = ComboSnapshot::freeze(dict);
        assert_eq!(snap.len(), 4);

        let queries = vec![
            obs("?", [7530.0, 7510.0], [4020.0, 3990.0]).query,
            obs("?", [7530.0, 7510.0], [9010.0, 8990.0]).query,
            obs("?", [7520.0, 7520.0], [6000.0, 6000.0]).query,
        ];
        let answers = snap.recognize_batch(&queries);
        assert_eq!(answers[0].verdict, Verdict::Recognized("sp".into()));
        assert_eq!(answers[1].verdict, Verdict::Recognized("bt".into()));
        assert_eq!(answers[2].verdict, Verdict::Unknown);

        // Batch answers equal one-at-a-time answers.
        for (q, a) in queries.iter().zip(&answers) {
            assert_eq!(a, &snap.recognize(q));
        }
    }

    #[test]
    fn clones_share_the_frozen_dictionary() {
        let mut dict = ComboDictionary::new(vec![M0], RoundingDepth::new(2));
        dict.learn(&obs("ft", [6020.0, 6020.0], [0.0, 0.0]));
        let snap = ComboSnapshot::freeze(dict);
        let clone = snap.clone();
        assert_eq!(snap.len(), clone.len());
        assert!(!clone.is_empty());
    }
}
