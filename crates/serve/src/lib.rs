//! # efd-serve — concurrent recognition serving over the EFD core
//!
//! The paper's dictionary lookup is O(1) per query point (§4: "we continue
//! with low complexity by relying on dictionary-based matching of
//! fingerprints with rounded values"), but [`efd_core::EfdDictionary`] is a
//! single-writer structure: `learn` takes `&mut self`, and every
//! `recognize` allocates per-query vote maps. That is the right shape for
//! reproducing Tables 2–4 and the wrong shape for an always-on recognition
//! service fed by streams of jobs (SIREN frames recognition exactly that
//! way). This crate is the serving layer:
//!
//! * [`ShardedDictionary`] — the **live** form: fingerprint keys are
//!   partitioned across N shards by hash (`efd_util::hash`), writers lock
//!   one shard at a time, and readers recognize concurrently under
//!   per-shard `RwLock`s. Many threads can learn and recognize at once.
//! * [`Snapshot`] — the **published** form: an immutable, `Arc`-shareable
//!   freeze of a dictionary. Reads are lock-free; recognition uses dense
//!   per-thread vote counters instead of per-query hash maps, so the
//!   single-query path is also measurably faster than the core oracle
//!   (see the `perf_serving` bench).
//! * [`EfdbSnapshot`] — the **zero-copy** form: serves straight from
//!   validated EFDB bytes (binary search over the raw key records,
//!   postings iterated in place), so cold-start stops scaling with
//!   dictionary size. [`Snapshot`] and [`EfdbSnapshot`] are two
//!   implementations of one [`KeyStore`] contract and share one vote
//!   kernel ([`keystore`]).
//! * [`BatchRecognizer`] — fans a `&[Query]` out over
//!   [`efd_util::parallel_map_init`] with per-thread scratch, answering
//!   batches at full hardware parallelism.
//! * [`ComboSnapshot`] — the served form of
//!   [`efd_core::multi::ComboDictionary`]: conjunctive multi-metric voting
//!   against an immutable snapshot.
//! * [`OnlineSession`] — the served form of
//!   [`efd_core::online::OnlineRecognizer`]: a `'static` streaming session
//!   holding an `Arc<Snapshot>`, so live jobs keep recognizing while the
//!   dictionary behind them is re-published.
//! * [`DurableDictionary`] — a [`ShardedDictionary`] whose learns are
//!   written ahead to an [`efd_core::wal`] directory: crash the process,
//!   reopen, and serve exactly the durably-acknowledged state.
//! * [`StackedRecognizer`] — the served form of a `recognizer.v1`
//!   manifest (`efd-catalog`): backends stacked in precedence order,
//!   first confident verdict wins, primary abstention preserved.
//! * [`net`] — the **network** form: a TCP recognition daemon
//!   (`efd serve --listen`) speaking a length-prefixed line protocol
//!   over a fixed worker pool, with atomic engine hot-swap, a same-port
//!   Prometheus `/metrics` endpoint, and a pipelined load generator.
//!
//! ## The engine API
//!
//! Every serving form implements [`efd_core::engine::Recognize`] (and
//! [`ShardedDictionary`] also [`efd_core::engine::Learn`]): callers hold
//! a `Box<dyn Recognize + Send + Sync>` or stay generic over
//! `R: Recognize + Sync` and pick the backend at runtime. The trait's
//! core method `recognize_into` *is* this crate's zero-allocation scratch
//! path — [`VoteScratch`] lives in `efd_core::engine`, so core and serve
//! share one scratch contract. This crate re-exports the traits
//! ([`Learn`], [`Recognize`], [`ParallelRecognize`], [`VoteScratch`]) for
//! convenience.
//!
//! ## Equivalence contract
//!
//! Serving must not change answers. Every recognition produced here equals
//! the single-threaded [`efd_core::EfdDictionary`] oracle on the same
//! entries, modulo the deterministic ordering of
//! [`efd_core::Recognition::normalized`] — the concurrency tests and the
//! cross-backend `engine_conformance` suite assert exactly that, and
//! [`efd_core::Recognition::best`] breaks ties without reference to learn
//! order, so concurrent learning cannot skew scoring.
//!
//! ## Typical lifecycle
//!
//! ```text
//! EfdDictionary --to_parts()--> DictionaryParts --freeze--> Snapshot --Arc--> BatchRecognizer
//!        ^                                                     |
//!        |                     ShardedDictionary --snapshot()--+
//!        |                        ^  (concurrent learn)
//!        +---- to_dictionary() ---+
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod combo;
pub mod durable;
pub mod efdb;
pub mod keystore;
pub mod net;
pub mod online;
pub mod shard;
pub mod snapshot;
pub mod stacked;

pub use batch::BatchRecognizer;
pub use combo::ComboSnapshot;
pub use durable::DurableDictionary;
pub use efdb::EfdbSnapshot;
pub use keystore::KeyStore;
pub use online::OnlineSession;
pub use shard::ShardedDictionary;
pub use snapshot::Snapshot;
pub use stacked::{StackedRecognizer, StackedStage};

pub use efd_core::engine::{Learn, ParallelRecognize, Recognize, VoteScratch};

use efd_core::Fingerprint;
use efd_util::FxHasher;
use std::hash::{Hash, Hasher};

/// Upper bound on shard counts (2^16); beyond this the per-shard maps are
/// so small that partitioning overhead dominates.
pub const MAX_SHARD_BITS: u32 = 16;

/// Number of shard-index bits for a requested shard count: the exponent of
/// the next power of two, clamped to `[0, MAX_SHARD_BITS]` (0 bits = 1
/// shard).
pub(crate) fn shard_bits_for(requested: usize) -> u32 {
    requested
        .clamp(1, 1 << MAX_SHARD_BITS)
        .next_power_of_two()
        .trailing_zeros()
}

/// Shard index of a fingerprint: the top `bits` bits of its FxHash.
///
/// The *top* bits are used so shard selection stays decorrelated from the
/// in-shard `FxHashMap` bucket index, which consumes the low bits of the
/// same hash.
pub(crate) fn shard_of(fp: &Fingerprint, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    let mut h = FxHasher::default();
    fp.hash(&mut h);
    (h.finish() >> (64 - bits)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_telemetry::{Interval, MetricId, NodeId};

    #[test]
    fn shard_bits_round_up_and_clamp() {
        assert_eq!(shard_bits_for(0), 0);
        assert_eq!(shard_bits_for(1), 0);
        assert_eq!(shard_bits_for(2), 1);
        assert_eq!(shard_bits_for(3), 2);
        assert_eq!(shard_bits_for(8), 3);
        assert_eq!(shard_bits_for(usize::MAX), MAX_SHARD_BITS);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let fp = Fingerprint::from_rounded(MetricId(3), NodeId(1), Interval::PAPER_DEFAULT, 6000.0);
        assert_eq!(shard_of(&fp, 0), 0);
        for bits in 1..=8u32 {
            let s = shard_of(&fp, bits);
            assert!(s < (1 << bits));
            assert_eq!(s, shard_of(&fp, bits), "deterministic");
        }
    }

    #[test]
    fn shards_spread_nearby_keys() {
        // Sequential node ids / means must not all land in one shard.
        let mut seen = std::collections::HashSet::new();
        for n in 0..64u16 {
            let fp = Fingerprint::from_rounded(
                MetricId(0),
                NodeId(n),
                Interval::PAPER_DEFAULT,
                6000.0,
            );
            seen.insert(shard_of(&fp, 3));
        }
        assert!(seen.len() >= 4, "only {} of 8 shards used", seen.len());
    }
}
