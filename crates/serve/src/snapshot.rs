//! The published, immutable form of a dictionary.
//!
//! A [`Snapshot`] is what the serving read path actually touches: no
//! locks, no interior mutability — just hash-partitioned maps behind an
//! `Arc`. Publication follows the classic read-copy-update shape: a
//! learner (an [`crate::ShardedDictionary`] or a plain
//! [`EfdDictionary`]) freezes its current state, the new `Arc<Snapshot>`
//! is swapped into the serving path, and in-flight readers finish on the
//! old one. Entries additionally precompute their deduplicated
//! application list so the recognition inner loop does zero label→app
//! indirection.

use efd_core::binfmt::{BinFormatError, Efdb};
use efd_core::dictionary::{AppNameId, LabelId};
use efd_core::engine::{Recognize, VoteScratch};
use efd_core::{DictionaryParts, EfdDictionary, Fingerprint, Query, Recognition, RoundingDepth};
use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::AppLabel;
use efd_util::FxHashMap;

use crate::keystore::{self, KeyStore};
use crate::{shard_bits_for, shard_of};

/// One frozen entry: the stored labels plus their deduplicated apps (in
/// first-occurrence order, mirroring the oracle's per-point vote dedup).
#[derive(Debug, Clone)]
struct SnapEntry {
    labels: Box<[LabelId]>,
    apps: Box<[AppNameId]>,
}

/// An immutable, shard-partitioned freeze of a dictionary.
///
/// Cheap to share (`Arc<Snapshot>`), safe to read from any number of
/// threads, and answer-identical to the [`EfdDictionary`] it was frozen
/// from (modulo [`Recognition::normalized`] ordering). Recognition goes
/// through the engine API ([`Recognize`], re-exported from this crate):
/// `recognize_into` is the zero-allocation scratch path, `recognize` /
/// `recognize_batch` are the provided conveniences.
///
/// ```
/// use efd_core::{EfdDictionary, Query, RoundingDepth};
/// use efd_serve::{Recognize, Snapshot};
/// use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
///
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// for (node, mean) in [6020.0, 6019.0].into_iter().enumerate() {
///     dict.insert_raw(MetricId(0), NodeId(node as u16), Interval::PAPER_DEFAULT,
///                     mean, &AppLabel::new("ft", "X"));
/// }
/// let snap = Snapshot::freeze(&dict, 8);
/// let q = Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[6001.0, 5999.0]);
/// // Same verdict as the live dictionary, from an immutable shared form.
/// assert_eq!(snap.recognize(&q).verdict, dict.recognize(&q).verdict);
/// assert_eq!(snap.len(), dict.len());
/// ```
#[derive(Debug, Clone)]
pub struct Snapshot {
    depth: RoundingDepth,
    shard_bits: u32,
    shards: Box<[FxHashMap<Fingerprint, SnapEntry>]>,
    labels: Vec<AppLabel>,
    apps: Vec<String>,
    label_app: Vec<AppNameId>,
}

impl Snapshot {
    /// Freeze [`DictionaryParts`] into `shards` hash partitions (rounded
    /// up to a power of two, clamped to [`crate::MAX_SHARD_BITS`] bits).
    /// Duplicate fingerprints across entries (hand-concatenated parts)
    /// merge their label lists, duplicates pruned — same semantics as
    /// [`EfdDictionary::from_parts`].
    ///
    /// # Panics
    ///
    /// Panics if the parts are internally inconsistent (out-of-range ids),
    /// like [`EfdDictionary::from_parts`]. Parts produced by
    /// [`EfdDictionary::into_parts`] are always consistent.
    pub fn from_parts(parts: DictionaryParts, shards: usize) -> Self {
        // Canonicalize through the core dictionary: one shared
        // implementation of key merging, per-list dedup, and consistency
        // validation (which is where the documented panics originate).
        let parts = EfdDictionary::from_parts(parts).into_parts();
        Self::assemble(
            parts.depth,
            parts.entries.into_iter().map(|(fp, ids)| (fp, ids.into_boxed_slice())),
            parts.labels,
            parts.apps,
            parts.label_app,
            shards,
        )
    }

    /// The one shard-map build every constructor funnels through:
    /// `entries` must already be canonical (unique keys, deduplicated
    /// label lists) — guaranteed by [`EfdDictionary::from_parts`] or a
    /// validated EFDB file.
    fn assemble(
        depth: RoundingDepth,
        entries: impl Iterator<Item = (Fingerprint, Box<[LabelId]>)>,
        labels: Vec<AppLabel>,
        apps: Vec<String>,
        label_app: Vec<AppNameId>,
        shards: usize,
    ) -> Self {
        let shard_bits = shard_bits_for(shards);
        let mut maps: Vec<FxHashMap<Fingerprint, SnapEntry>> =
            (0..(1usize << shard_bits)).map(|_| FxHashMap::default()).collect();
        for (fp, ids) in entries {
            let mut entry_apps: Vec<AppNameId> = Vec::with_capacity(1);
            for id in ids.iter() {
                let app = label_app[id.index()];
                if !entry_apps.contains(&app) {
                    entry_apps.push(app);
                }
            }
            maps[shard_of(&fp, shard_bits)].insert(
                fp,
                SnapEntry {
                    labels: ids,
                    apps: entry_apps.into_boxed_slice(),
                },
            );
        }
        Self {
            depth,
            shard_bits,
            shards: maps.into_boxed_slice(),
            labels,
            apps,
            label_app,
        }
    }

    /// Freeze a live dictionary without consuming it (clones the content;
    /// the dictionary can keep learning and re-publish later).
    pub fn freeze(dict: &EfdDictionary, shards: usize) -> Self {
        Self::from_parts(dict.to_parts(), shards)
    }

    /// Build a snapshot **directly from a decoded EFDB file** — the serve
    /// cold-start fast path.
    ///
    /// A validated [`Efdb`] already guarantees unique, bounds-checked keys
    /// and a consistent label table, so this constructor skips the
    /// intermediate [`EfdDictionary`] entirely: metric names resolve to
    /// ids once, then every key record becomes one shard-map insert. The
    /// only failure mode left is a metric name absent from `catalog`
    /// ([`BinFormatError::UnknownMetric`]).
    ///
    /// Answer-identical to loading the same file through
    /// [`efd_core::binfmt::read_dictionary`] and [`Snapshot::freeze`].
    ///
    /// ```
    /// use efd_core::{binfmt, EfdDictionary, Query, RoundingDepth};
    /// use efd_serve::{Recognize, Snapshot};
    /// use efd_telemetry::catalog::small_catalog;
    /// use efd_telemetry::{AppLabel, Interval, NodeId};
    ///
    /// let catalog = small_catalog();
    /// let metric = catalog.id("nr_mapped_vmstat").unwrap();
    /// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
    /// for (node, mean) in [6020.0, 6019.0].into_iter().enumerate() {
    ///     dict.insert_raw(metric, NodeId(node as u16), Interval::PAPER_DEFAULT,
    ///                     mean, &AppLabel::new("ft", "X"));
    /// }
    /// let bytes = binfmt::write(&dict.to_parts(), &catalog);
    ///
    /// // Cold start: bytes → decoded sections → served snapshot.
    /// let efdb = binfmt::read(&bytes).unwrap();
    /// let snap = Snapshot::from_efdb(&efdb, &catalog, 8).unwrap();
    /// let q = Query::from_node_means(metric, Interval::PAPER_DEFAULT, &[6001.0, 5999.0]);
    /// assert_eq!(snap.recognize(&q).verdict, dict.recognize(&q).verdict);
    /// assert_eq!(snap.len(), dict.len());
    /// ```
    pub fn from_efdb(
        efdb: &Efdb,
        catalog: &MetricCatalog,
        shards: usize,
    ) -> Result<Self, BinFormatError> {
        let metric_ids = efdb.resolve_metrics(catalog)?;
        let entries = efdb.entries().iter().map(|e| {
            let fp = Fingerprint::from_rounded(
                metric_ids[e.metric as usize],
                e.node,
                e.interval,
                e.mean(),
            );
            (fp, e.labels.clone().into_boxed_slice())
        });
        Ok(Self::assemble(
            efdb.depth(),
            entries,
            efdb.labels().to_vec(),
            efdb.apps().to_vec(),
            efdb.label_app().to_vec(),
            shards,
        ))
    }

    /// Thaw back into a mutable [`EfdDictionary`] — e.g. to keep learning
    /// from a published artifact. Entries are emitted in deterministic
    /// packed-key order (the concurrent learn order is not recorded).
    pub fn to_dictionary(&self) -> EfdDictionary {
        let mut entries: Vec<(Fingerprint, Vec<LabelId>)> = self
            .shards
            .iter()
            .flat_map(|m| m.iter().map(|(fp, e)| (*fp, e.labels.to_vec())))
            .collect();
        entries.sort_by_key(|(fp, _)| fp.pack());
        EfdDictionary::from_parts(DictionaryParts {
            depth: self.depth,
            entries,
            labels: self.labels.clone(),
            apps: self.apps.clone(),
            label_app: self.label_app.clone(),
        })
    }

    /// The rounding depth the frozen entries were built with.
    pub fn depth(&self) -> RoundingDepth {
        self.depth
    }

    /// Total number of keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(FxHashMap::len).sum()
    }

    /// Whether the snapshot holds no keys.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(FxHashMap::is_empty)
    }

    /// Number of hash partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Keys per shard, for load-balance inspection.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(FxHashMap::len).collect()
    }

    /// Distinct application names, in interned order.
    pub fn app_names(&self) -> &[String] {
        &self.apps
    }

    /// Distinct labels learned.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Fast-path recognition that skips building the full [`Recognition`]:
    /// returns only what the paper's evaluation scores
    /// ([`Recognition::best`]) — the recognized application, the
    /// lexicographically smallest tied application, or `None` for unknown.
    ///
    /// Agrees with `recognize(query).best()` by construction.
    pub fn best(&self, query: &Query) -> Option<&str> {
        let mut scratch = VoteScratch::default();
        self.best_with(query, &mut scratch)
    }

    /// [`Snapshot::best`] with caller-owned scratch: the zero-allocation
    /// serving hot path. No vote tables, no strings — dense app counters
    /// and a final scan. This is what
    /// [`crate::BatchRecognizer::best_batch`] runs per worker thread.
    pub fn best_with<'s>(&'s self, query: &Query, scratch: &mut VoteScratch) -> Option<&'s str> {
        keystore::best_with(self, query, scratch)
    }
}

/// The owned [`KeyStore`]: fingerprints resolve through the shard maps,
/// and app votes come from each entry's pre-deduplicated app list (built
/// at freeze time, so no per-point dedup set is needed).
impl KeyStore for Snapshot {
    fn depth(&self) -> RoundingDepth {
        self.depth
    }

    fn labels(&self) -> &[AppLabel] {
        &self.labels
    }

    fn apps(&self) -> &[String] {
        &self.apps
    }

    #[inline]
    fn vote(&self, fp: &Fingerprint, scratch: &mut VoteScratch, wide: bool) -> bool {
        let Some(entry) = self.shards[shard_of(fp, self.shard_bits)].get(fp) else {
            return false;
        };
        if wide {
            for &id in entry.labels.iter() {
                scratch.vote_label_wide(id);
            }
        } else {
            for &id in entry.labels.iter() {
                scratch.vote_label(id);
            }
        }
        for &app in entry.apps.iter() {
            scratch.vote_app(app);
        }
        true
    }

    #[inline]
    fn vote_apps(&self, fp: &Fingerprint, scratch: &mut VoteScratch) -> bool {
        let Some(entry) = self.shards[shard_of(fp, self.shard_bits)].get(fp) else {
            return false;
        };
        for &app in entry.apps.iter() {
            scratch.vote_app(app);
        }
        true
    }
}

/// The published form as an engine backend — `recognize_into` runs the
/// shared [`keystore`] vote kernel over the shard maps: dense per-thread
/// vote counters, no locks, answers in [`Recognition::normalized`] order.
impl Recognize for Snapshot {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        keystore::recognize_with(self, query, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_core::LabeledObservation;
    use efd_telemetry::{AppLabel, Interval, MetricId};

    const M: MetricId = MetricId(0);
    const W: Interval = Interval::PAPER_DEFAULT;

    fn toy_dict() -> EfdDictionary {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        for (app, input, means) in [
            ("ft", "X", [6020.0, 6020.0, 6020.0, 6020.0]),
            ("sp", "X", [7617.0, 7520.0, 7520.0, 7121.0]),
            ("bt", "X", [7638.0, 7540.0, 7540.0, 7140.0]),
            ("miniAMR", "Z", [10980.0; 4]),
        ] {
            d.learn(&LabeledObservation {
                label: AppLabel::new(app, input),
                query: Query::from_node_means(M, W, &means),
            });
        }
        d
    }

    fn queries() -> Vec<Query> {
        vec![
            Query::from_node_means(M, W, &[6031.0, 5988.0, 6007.0, 6044.0]),
            Query::from_node_means(M, W, &[7601.0, 7512.0, 7533.0, 7098.0]),
            Query::from_node_means(M, W, &[10951.0, 11020.0, 10990.0, 11043.0]),
            Query::from_node_means(M, W, &[1.0, 2.0, 3.0, 4.0]),
            Query::from_node_means(M, W, &[6000.0, 6000.0, 7500.0, f64::NAN]),
        ]
    }

    #[test]
    fn matches_oracle_on_every_query_at_every_shard_count() {
        let dict = toy_dict();
        for shards in [1usize, 2, 4, 8, 64] {
            let snap = Snapshot::freeze(&dict, shards);
            assert_eq!(snap.len(), dict.len());
            for q in queries() {
                let served = snap.recognize(&q);
                let oracle = dict.recognize(&q).normalized();
                assert_eq!(served, oracle, "shards={shards}");
                assert_eq!(snap.best(&q), oracle.best(), "shards={shards}");
            }
        }
    }

    #[test]
    fn shard_sizes_partition_all_keys() {
        let snap = Snapshot::freeze(&toy_dict(), 8);
        assert_eq!(snap.shard_count(), 8);
        assert_eq!(snap.shard_sizes().iter().sum::<usize>(), snap.len());
    }

    #[test]
    fn thaw_preserves_answers_and_supports_further_learning() {
        let dict = toy_dict();
        let snap = Snapshot::freeze(&dict, 4);
        let mut thawed = snap.to_dictionary();
        for q in queries() {
            assert_eq!(
                thawed.recognize(&q).normalized(),
                dict.recognize(&q).normalized()
            );
        }
        // "Learning new applications is as simple as adding new keys."
        thawed.learn(&LabeledObservation {
            label: AppLabel::new("kripke", "Y"),
            query: Query::from_node_means(M, W, &[8730.0; 4]),
        });
        let q = Query::from_node_means(M, W, &[8700.0; 4]);
        assert_eq!(thawed.recognize(&q).best(), Some("kripke"));
    }

    #[test]
    fn from_parts_merges_duplicate_fingerprints_like_core() {
        use efd_core::dictionary::LabelId;

        let dict = toy_dict();
        let mut parts = dict.to_parts();
        let fp = parts.entries[0].0;
        parts.entries.push((fp, vec![LabelId::from_index(1), LabelId::from_index(0)]));

        let snap = Snapshot::from_parts(parts.clone(), 4);
        let oracle = EfdDictionary::from_parts(parts);
        assert_eq!(snap.len(), oracle.len());
        for q in queries() {
            assert_eq!(snap.recognize(&q), oracle.recognize(&q).normalized());
        }
    }

    #[test]
    fn from_efdb_matches_freeze_on_every_query() {
        let catalog = efd_telemetry::catalog::small_catalog();
        let dict = toy_dict();
        let bytes = efd_core::binfmt::write(&dict.to_parts(), &catalog);
        let efdb = efd_core::binfmt::read(&bytes).unwrap();
        for shards in [1usize, 4, 16] {
            let via_efdb = Snapshot::from_efdb(&efdb, &catalog, shards).unwrap();
            let via_freeze = Snapshot::freeze(&dict, shards);
            assert_eq!(via_efdb.len(), via_freeze.len());
            assert_eq!(via_efdb.depth(), dict.depth());
            assert_eq!(via_efdb.app_names(), via_freeze.app_names());
            for q in queries() {
                assert_eq!(
                    via_efdb.recognize(&q),
                    via_freeze.recognize(&q),
                    "shards={shards}"
                );
                assert_eq!(via_efdb.best(&q), via_freeze.best(&q));
            }
        }
    }

    #[test]
    fn from_efdb_rejects_unresolvable_metric() {
        let catalog = efd_telemetry::catalog::small_catalog();
        let bytes = efd_core::binfmt::write(&toy_dict().to_parts(), &catalog);
        let efdb = efd_core::binfmt::read(&bytes).unwrap();
        let empty = efd_telemetry::MetricCatalog::new();
        assert!(matches!(
            Snapshot::from_efdb(&efdb, &empty, 4),
            Err(efd_core::BinFormatError::UnknownMetric(_))
        ));
    }

    #[test]
    fn empty_snapshot_answers_unknown() {
        let snap = Snapshot::freeze(&EfdDictionary::new(RoundingDepth::new(2)), 8);
        assert!(snap.is_empty());
        let r = snap.recognize(&Query::from_node_means(M, W, &[1.0]));
        assert_eq!(r.verdict, efd_core::Verdict::Unknown);
        assert_eq!(snap.best(&Query::from_node_means(M, W, &[1.0])), None);
    }
}
