//! Dense vote accumulation shared by the serving read paths.
//!
//! The core oracle ([`efd_core::EfdDictionary::recognize`]) allocates two
//! fresh hash maps per query to count votes. At serving rates that
//! allocation (and the re-hashing of every vote) dominates the O(1)
//! dictionary probes, so the served paths count votes in **dense arrays
//! indexed by interned id** instead, with a `touched` list for O(votes)
//! reset. One [`VoteScratch`] lives per worker thread and is reused across
//! every query that thread answers.

use efd_core::dictionary::{AppNameId, LabelId, Recognition, Verdict};
use efd_telemetry::AppLabel;

/// Reusable per-thread vote counters.
///
/// Opaque to callers: construct with `Default` and pass to
/// [`crate::Snapshot::recognize_with`] to amortize allocations across
/// queries. [`crate::BatchRecognizer`] manages one per worker thread
/// automatically.
#[derive(Debug, Default, Clone)]
pub struct VoteScratch {
    /// Vote count per `LabelId` index; zero except for touched ids.
    label_counts: Vec<u32>,
    /// Vote count per `AppNameId` index; zero except for touched ids.
    app_counts: Vec<u32>,
    touched_labels: Vec<LabelId>,
    touched_apps: Vec<AppNameId>,
    /// Apps already credited for the current point (one vote per app per
    /// matched point, however many inputs share the entry).
    point_apps: Vec<AppNameId>,
}

impl VoteScratch {
    /// Grow the dense counters to cover `labels`/`apps` interned ids.
    /// Counters keep their (all-zero) state; growth never clears votes.
    pub(crate) fn ensure(&mut self, labels: usize, apps: usize) {
        if self.label_counts.len() < labels {
            self.label_counts.resize(labels, 0);
        }
        if self.app_counts.len() < apps {
            self.app_counts.resize(apps, 0);
        }
    }

    /// One vote for a label.
    #[inline]
    pub(crate) fn vote_label(&mut self, id: LabelId) {
        let c = &mut self.label_counts[id.index()];
        if *c == 0 {
            self.touched_labels.push(id);
        }
        *c += 1;
    }

    /// One vote for an application (caller guarantees per-point dedup, or
    /// uses [`VoteScratch::begin_point`]/[`VoteScratch::vote_app_deduped`]).
    #[inline]
    pub(crate) fn vote_app(&mut self, id: AppNameId) {
        let c = &mut self.app_counts[id.index()];
        if *c == 0 {
            self.touched_apps.push(id);
        }
        *c += 1;
    }

    /// Reset the per-point app dedup set.
    #[inline]
    pub(crate) fn begin_point(&mut self) {
        self.point_apps.clear();
    }

    /// Vote for an app at most once per point (mirrors the oracle's
    /// `entry_apps` dedup for entries whose labels share an application).
    #[inline]
    pub(crate) fn vote_app_deduped(&mut self, id: AppNameId) {
        if !self.point_apps.contains(&id) {
            self.point_apps.push(id);
            self.vote_app(id);
        }
    }

    /// Drain the accumulated **app** votes into the answer the paper's
    /// evaluation scores ([`Recognition::best`]): the most-voted
    /// application, breaking ties by lexicographically smallest name.
    /// `None` when nothing matched. Resets the scratch; never allocates.
    pub(crate) fn finish_best<'a>(&mut self, apps: &'a [String]) -> Option<&'a str> {
        let mut top = 0u32;
        let mut best: Option<&'a str> = None;
        for &id in &self.touched_apps {
            let votes = self.app_counts[id.index()];
            let name = apps[id.index()].as_str();
            if votes > top || (votes == top && best.is_some_and(|b| name < b)) {
                top = votes;
                best = Some(name);
            }
        }
        for id in self.touched_apps.drain(..) {
            self.app_counts[id.index()] = 0;
        }
        for id in self.touched_labels.drain(..) {
            self.label_counts[id.index()] = 0;
        }
        best
    }

    /// Drain the accumulated votes into a [`Recognition`] in
    /// [`Recognition::normalized`] order, resetting the scratch for the
    /// next query. `labels`/`apps` resolve interned ids to names.
    pub(crate) fn finish(
        &mut self,
        labels: &[AppLabel],
        apps: &[String],
        matched_points: usize,
        total_points: usize,
    ) -> Recognition {
        let mut app_votes: Vec<(String, u32)> = Vec::with_capacity(self.touched_apps.len());
        for id in self.touched_apps.drain(..) {
            let c = &mut self.app_counts[id.index()];
            app_votes.push((apps[id.index()].clone(), *c));
            *c = 0;
        }
        let mut label_votes: Vec<(AppLabel, u32)> = Vec::with_capacity(self.touched_labels.len());
        for id in self.touched_labels.drain(..) {
            let c = &mut self.label_counts[id.index()];
            label_votes.push((labels[id.index()].clone(), *c));
            *c = 0;
        }

        // Sort once, directly in the normalized order (same comparators as
        // `Recognition::normalized`, which is then a no-op on this value).
        app_votes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        label_votes.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| (&a.0.app, &a.0.input).cmp(&(&b.0.app, &b.0.input)))
        });

        let verdict = match app_votes.first() {
            None => Verdict::Unknown,
            Some(&(_, top)) => {
                // The tied prefix is already name-sorted.
                let mut tied: Vec<String> = app_votes
                    .iter()
                    .take_while(|&&(_, v)| v == top)
                    .map(|(a, _)| a.clone())
                    .collect();
                if tied.len() == 1 {
                    Verdict::Recognized(tied.pop().expect("one tied app"))
                } else {
                    Verdict::Ambiguous(tied)
                }
            }
        };

        Recognition {
            verdict,
            app_votes,
            label_votes,
            matched_points,
            total_points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab(app: &str, input: &str) -> AppLabel {
        AppLabel::new(app, input)
    }

    #[test]
    fn finish_resets_for_reuse() {
        let labels = [lab("sp", "X"), lab("bt", "X")];
        let apps = ["sp".to_string(), "bt".to_string()];
        let mut s = VoteScratch::default();
        s.ensure(2, 2);
        s.begin_point();
        s.vote_label(LabelId::from_index(0));
        s.vote_app_deduped(AppNameId::from_index(0));
        let r = s.finish(&labels, &apps, 1, 1);
        assert_eq!(r.verdict, Verdict::Recognized("sp".into()));

        // Second use sees a clean slate.
        let r = s.finish(&labels, &apps, 0, 3);
        assert_eq!(r.verdict, Verdict::Unknown);
        assert!(r.app_votes.is_empty());
        assert_eq!(r.total_points, 3);
    }

    #[test]
    fn per_point_app_dedup() {
        // Two inputs of the same app on one entry: one app vote.
        let labels = [lab("ft", "X"), lab("ft", "Y")];
        let apps = ["ft".to_string()];
        let mut s = VoteScratch::default();
        s.ensure(2, 1);
        s.begin_point();
        for i in 0..2 {
            s.vote_label(LabelId::from_index(i));
            s.vote_app_deduped(AppNameId::from_index(0));
        }
        let r = s.finish(&labels, &apps, 1, 1);
        assert_eq!(r.app_votes, vec![("ft".into(), 1)]);
        assert_eq!(r.label_votes.len(), 2);
    }

    #[test]
    fn tie_produces_sorted_ambiguous() {
        let labels = [lab("sp", "X"), lab("bt", "X")];
        let apps = ["sp".to_string(), "bt".to_string()];
        let mut s = VoteScratch::default();
        s.ensure(2, 2);
        for i in 0..2 {
            s.begin_point();
            s.vote_label(LabelId::from_index(i));
            s.vote_app_deduped(AppNameId::from_index(i));
        }
        let r = s.finish(&labels, &apps, 2, 2);
        // normalized(): lexicographic tie array.
        assert_eq!(r.verdict, Verdict::Ambiguous(vec!["bt".into(), "sp".into()]));
        assert_eq!(r.best(), Some("bt"));
    }
}
