//! First-confident-verdict-wins stacking of recognizer backends.
//!
//! A `recognizer.v1` manifest (the `efd-catalog` crate) declares an
//! ordered stack — typically exact dictionary → combo → ml fallback —
//! and [`StackedRecognizer`] is its served form: one [`Recognize`]
//! whose answer is the first stage's verdict that clears that stage's
//! confidence bar.
//!
//! ## Precedence semantics
//!
//! Stages evaluate top to bottom. A stage **wins** when its verdict is
//! `Recognized` *and* its matched-point fraction
//! (`matched_points / total_points`) is at least the stage's
//! `min_confidence`. The first winner's recognition is returned
//! unchanged — later stages are not even consulted, so stacking adds
//! zero cost to the common case where the primary dictionary knows the
//! answer.
//!
//! If **no** stage wins, the *primary* (first) stage's recognition is
//! returned. Falling back to the last stage's guess would turn every
//! never-seen execution into whatever the ml fallback hallucinates;
//! returning the primary's `Unknown`/`Ambiguous` keeps the paper's
//! abstention safeguard — and makes the stack *conformant*: wherever the
//! primary is confident, the stack answers exactly as the primary (the
//! `stacked.rs` conformance test pins this).
//!
//! Scratch discipline: stages share the caller's [`VoteScratch`]
//! sequentially; [`VoteScratch::finish`] resets it, so reuse across
//! stages is safe by the engine-API contract.

use std::sync::Arc;

use efd_core::engine::{Recognize, VoteScratch};
use efd_core::{Query, Recognition, Verdict};

/// One stage of a stack: a named engine plus its confidence bar.
#[derive(Clone)]
pub struct StackedStage {
    /// Display name (`exact`, `combo`, `knn(k=3)`, ...) for status
    /// surfaces.
    pub name: String,
    /// The engine this stage answers through.
    pub engine: Arc<dyn Recognize + Send + Sync>,
    /// Minimum matched-point fraction for this stage's `Recognized`
    /// verdict to end evaluation (`0.0` = any recognition wins).
    pub min_confidence: f64,
}

impl std::fmt::Debug for StackedStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StackedStage")
            .field("name", &self.name)
            .field("min_confidence", &self.min_confidence)
            .finish()
    }
}

/// A precedence-ordered recognizer stack (see module docs).
#[derive(Debug, Clone)]
pub struct StackedRecognizer {
    stages: Vec<StackedStage>,
}

impl StackedRecognizer {
    /// Build from stages in precedence order.
    ///
    /// # Panics
    ///
    /// Panics on an empty stack — a manifest is validated to have at
    /// least one stage before it gets here.
    pub fn new(stages: Vec<StackedStage>) -> Self {
        assert!(!stages.is_empty(), "a recognizer stack needs at least one stage");
        Self { stages }
    }

    /// The stages, precedence order.
    pub fn stages(&self) -> &[StackedStage] {
        &self.stages
    }

    /// `name(conf) > name(conf) > ...` — the status-line rendering.
    pub fn describe(&self) -> String {
        self.stages
            .iter()
            .map(|s| format!("{}({})", s.name, s.min_confidence))
            .collect::<Vec<_>>()
            .join(" > ")
    }

    /// Does `rec` clear `min_confidence` as a winning verdict?
    fn confident(rec: &Recognition, min_confidence: f64) -> bool {
        if !matches!(rec.verdict, Verdict::Recognized(_)) {
            return false;
        }
        if rec.total_points == 0 {
            return false;
        }
        rec.matched_points as f64 / rec.total_points as f64 >= min_confidence
    }
}

impl Recognize for StackedRecognizer {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        let mut primary = None;
        for (i, stage) in self.stages.iter().enumerate() {
            let rec = stage.engine.recognize_into(query, scratch);
            if Self::confident(&rec, stage.min_confidence) {
                return rec;
            }
            if i == 0 {
                primary = Some(rec);
            }
        }
        primary.expect("stack is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_core::dictionary::EfdDictionary;
    use efd_core::observation::{LabeledObservation, ObsPoint};
    use efd_core::rounding::RoundingDepth;
    use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};

    const W: Interval = Interval::PAPER_DEFAULT;

    fn learn(dict: &mut EfdDictionary, app: &str, means: &[f64]) {
        let points = means
            .iter()
            .enumerate()
            .map(|(n, m)| ObsPoint {
                metric: MetricId(0),
                node: NodeId(n as u16),
                interval: W,
                mean: *m,
            })
            .collect();
        dict.learn(&LabeledObservation {
            label: AppLabel::new(app, "X"),
            query: Query { points },
        });
    }

    fn query(means: &[f64]) -> Query {
        Query {
            points: means
                .iter()
                .enumerate()
                .map(|(n, m)| ObsPoint {
                    metric: MetricId(0),
                    node: NodeId(n as u16),
                    interval: W,
                    mean: *m,
                })
                .collect(),
        }
    }

    fn stage(name: &str, dict: EfdDictionary, min_confidence: f64) -> StackedStage {
        StackedStage {
            name: name.into(),
            engine: Arc::new(dict),
            min_confidence,
        }
    }

    #[test]
    fn first_confident_stage_wins() {
        let mut primary = EfdDictionary::new(RoundingDepth::new(2));
        learn(&mut primary, "ft", &[1000.0, 1000.0]);
        let mut fallback = EfdDictionary::new(RoundingDepth::new(2));
        learn(&mut fallback, "sp", &[1000.0, 1000.0]);
        let stack = StackedRecognizer::new(vec![
            stage("exact", primary, 0.5),
            stage("fallback", fallback, 0.0),
        ]);
        // Primary knows the answer: fallback must never flip it.
        assert_eq!(stack.recognize(&query(&[1000.0, 1000.0])).best(), Some("ft"));
    }

    #[test]
    fn falls_through_below_the_confidence_bar() {
        // Primary matches only 1 of 2 points: 0.5 < 0.6 bar.
        let mut primary = EfdDictionary::new(RoundingDepth::new(2));
        learn(&mut primary, "ft", &[1000.0]);
        let mut fallback = EfdDictionary::new(RoundingDepth::new(2));
        learn(&mut fallback, "sp", &[1000.0, 2000.0]);
        let stack = StackedRecognizer::new(vec![
            stage("exact", primary, 0.6),
            stage("fallback", fallback, 0.0),
        ]);
        assert_eq!(stack.recognize(&query(&[1000.0, 2000.0])).best(), Some("sp"));
    }

    #[test]
    fn unconfident_everywhere_returns_primary_abstention() {
        let mut primary = EfdDictionary::new(RoundingDepth::new(2));
        learn(&mut primary, "ft", &[9999.0]);
        let mut fallback = EfdDictionary::new(RoundingDepth::new(2));
        learn(&mut fallback, "sp", &[8888.0]);
        let stack = StackedRecognizer::new(vec![
            stage("exact", primary, 0.0),
            stage("fallback", fallback, 0.9),
        ]);
        // Neither knows the query; the answer is the PRIMARY's Unknown,
        // not the fallback's.
        let rec = stack.recognize(&query(&[1000.0]));
        assert!(matches!(rec.verdict, Verdict::Unknown), "{rec:?}");
    }

    #[test]
    fn describe_renders_precedence() {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        learn(&mut d, "ft", &[1.0]);
        let stack = StackedRecognizer::new(vec![
            stage("exact", d.clone(), 0.6),
            stage("knn(k=3)", d, 0.0),
        ]);
        assert_eq!(stack.describe(), "exact(0.6) > knn(k=3)(0)");
    }
}
