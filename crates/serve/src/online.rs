//! Served streaming recognition.
//!
//! [`efd_core::online::OnlineRecognizer`] borrows its dictionary
//! (`&'d EfdDictionary`), which pins a streaming session to one thread
//! and one dictionary for its whole life — fine in a lab harness,
//! unusable in a service where thousands of live jobs stream samples
//! while the dictionary keeps learning. [`OnlineSession`] is the served
//! variant: it holds an `Arc<`[`Snapshot`]`>`, so sessions are `'static`
//! and `Send` (they can live in a session table, migrate across worker
//! threads) and can [`OnlineSession::swap`] to a newer publication
//! mid-stream — the verdict then reflects the latest learned state.
//!
//! The session is generic over its engine: the default `Arc<Snapshot>`
//! form is unchanged, but any [`Recognize`] backend works — including
//! `Arc<dyn Recognize + Send + Sync>`, which is how the network daemon
//! keeps one per-connection session per streaming client regardless of
//! which backend `--backend` selected.
//!
//! Same memory contract as the core recognizer: no raw series are
//! buffered, memory is O(nodes × metrics).

use std::sync::Arc;

use efd_telemetry::streaming::MultiWindowAggregator;
use efd_telemetry::{Interval, MetricId, NodeId};
use efd_util::FxHashMap;

use efd_core::engine::{Recognize, VoteScratch};
use efd_core::{ObsPoint, Query, Recognition};

use crate::snapshot::Snapshot;

/// A `'static`, snapshot-backed streaming recognition session.
///
/// Feed samples as they arrive; the session emits its verdict exactly
/// once, the moment the last fingerprint window closes (the paper's
/// "within the first two minutes, while the job is still running").
///
/// Generic over the published engine `R` (default [`Snapshot`]); use
/// `OnlineSession<dyn Recognize + Send + Sync>` to stream against a
/// runtime-selected backend.
#[derive(Debug, Clone)]
pub struct OnlineSession<R: Recognize + ?Sized = Snapshot> {
    intervals: Vec<Interval>,
    aggs: FxHashMap<(NodeId, MetricId), MultiWindowAggregator>,
    points: Vec<ObsPoint>,
    expected_summaries: usize,
    emitted: bool,
    snapshot: Arc<R>,
}

impl<R: Recognize + ?Sized> OnlineSession<R> {
    /// Set up streams for `nodes × metrics`, fingerprinting `intervals`,
    /// against a published snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is empty.
    pub fn new(
        snapshot: Arc<R>,
        metrics: &[MetricId],
        nodes: &[NodeId],
        intervals: Vec<Interval>,
    ) -> Self {
        assert!(!intervals.is_empty(), "no fingerprint intervals");
        let mut aggs = FxHashMap::default();
        for &n in nodes {
            for &m in metrics {
                aggs.insert((n, m), MultiWindowAggregator::new(intervals.clone()));
            }
        }
        let expected_summaries = nodes.len() * metrics.len() * intervals.len();
        Self {
            snapshot,
            intervals,
            aggs,
            points: Vec::new(),
            expected_summaries,
            emitted: false,
        }
    }

    /// Seconds after which all windows have closed (worst case).
    pub fn horizon_s(&self) -> u32 {
        self.intervals.iter().map(|iv| iv.end).max().unwrap_or(0)
    }

    /// The snapshot verdicts are currently computed against.
    pub fn snapshot(&self) -> &Arc<R> {
        &self.snapshot
    }

    /// Point the session at a newer publication. Window means collected so
    /// far are kept — only the dictionary behind the verdict changes.
    pub fn swap(&mut self, snapshot: Arc<R>) {
        self.snapshot = snapshot;
    }

    /// Feed one sample. Returns the final recognition exactly once — when
    /// the last open window across all streams closes. Samples for
    /// undeclared `(node, metric)` streams are ignored.
    pub fn push(
        &mut self,
        node: NodeId,
        metric: MetricId,
        t: u32,
        value: f64,
    ) -> Option<Recognition> {
        if self.emitted {
            return None;
        }
        let agg = self.aggs.get_mut(&(node, metric))?;
        for summary in agg.push(t, value) {
            self.points.push(ObsPoint {
                metric,
                node,
                interval: summary.interval,
                mean: summary.mean(),
            });
        }
        if self.points.len() >= self.expected_summaries {
            self.emitted = true;
            return Some(self.recognize_now());
        }
        None
    }

    /// Recognition over the windows closed *so far* (early peek; may be
    /// `Unknown` simply because no window has closed yet).
    pub fn current(&self) -> Recognition {
        self.recognize_now()
    }

    /// Number of window means collected so far.
    pub fn collected(&self) -> usize {
        self.points.len()
    }

    /// Force a verdict from whatever has been collected, flushing all
    /// still-open windows (job ended early).
    pub fn finish(&mut self) -> Recognition {
        if !self.emitted {
            let mut flushed: Vec<ObsPoint> = Vec::new();
            for ((node, metric), agg) in self.aggs.iter_mut() {
                for summary in agg.finish() {
                    flushed.push(ObsPoint {
                        metric: *metric,
                        node: *node,
                        interval: summary.interval,
                        mean: summary.mean(),
                    });
                }
            }
            self.points.extend(flushed);
            self.emitted = true;
        }
        self.recognize_now()
    }

    fn recognize_now(&self) -> Recognition {
        let q = Query {
            points: self.points.clone(),
        };
        self.snapshot.recognize(&q)
    }
}

/// A streaming session as an engine backend: ad-hoc queries are answered
/// against the publication the session **currently** holds (the same
/// snapshot its streaming verdict would use), so a session table can be
/// served through the one engine API alongside every other backend.
/// Stream state (collected window means) is not consulted — pass a query.
impl<R: Recognize + ?Sized> Recognize for OnlineSession<R> {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        self.snapshot.recognize_into(query, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_core::{EfdDictionary, LabeledObservation, RoundingDepth, Verdict};
    use efd_telemetry::AppLabel;

    const M: MetricId = MetricId(0);
    const W: Interval = Interval::PAPER_DEFAULT;

    fn snapshot_with(apps: &[(&str, f64)]) -> Arc<Snapshot> {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        for &(app, mean) in apps {
            d.learn(&LabeledObservation {
                label: AppLabel::new(app, "X"),
                query: Query::from_node_means(M, W, &[mean, mean]),
            });
        }
        Arc::new(Snapshot::freeze(&d, 4))
    }

    #[test]
    fn emits_once_when_window_closes() {
        let snap = snapshot_with(&[("ft", 6000.0)]);
        let mut s = OnlineSession::new(snap, &[M], &[NodeId(0), NodeId(1)], vec![W]);
        assert_eq!(s.horizon_s(), 120);
        let mut verdict = None;
        for t in 0..=150u32 {
            for n in [NodeId(0), NodeId(1)] {
                let v = if t < 60 { 50_000.0 } else { 6010.0 };
                if let Some(r) = s.push(n, M, t, v) {
                    assert!(verdict.is_none(), "double emit");
                    verdict = Some((t, r));
                }
            }
        }
        let (t, r) = verdict.expect("no verdict by horizon");
        assert_eq!(t, 120);
        assert_eq!(r.verdict, Verdict::Recognized("ft".into()));
    }

    #[test]
    fn session_is_send_and_static() {
        // The whole point of the served variant: sessions can move to
        // another thread while streaming.
        let snap = snapshot_with(&[("ft", 6000.0)]);
        let mut s = OnlineSession::new(snap, &[M], &[NodeId(0)], vec![W]);
        for t in 0..90u32 {
            s.push(NodeId(0), M, t, 6005.0);
        }
        let handle = std::thread::spawn(move || s.finish());
        let r = handle.join().expect("session thread");
        assert_eq!(r.verdict, Verdict::Recognized("ft".into()));
    }

    #[test]
    fn swap_mid_stream_uses_newer_dictionary() {
        // Stream an app the first publication does not know yet.
        let before = snapshot_with(&[("ft", 6000.0)]);
        let mut s = OnlineSession::new(before, &[M], &[NodeId(0)], vec![W]);
        for t in 0..100u32 {
            s.push(NodeId(0), M, t, 8110.0);
        }
        assert_eq!(s.finish().verdict, Verdict::Unknown);

        // Same stream, but the dictionary learned "cg" mid-flight.
        let before = snapshot_with(&[("ft", 6000.0)]);
        let mut s = OnlineSession::new(before, &[M], &[NodeId(0)], vec![W]);
        for t in 0..100u32 {
            s.push(NodeId(0), M, t, 8110.0);
            if t == 50 {
                s.swap(snapshot_with(&[("ft", 6000.0), ("cg", 8110.0)]));
            }
        }
        assert_eq!(s.finish().verdict, Verdict::Recognized("cg".into()));
    }

    #[test]
    fn undeclared_stream_ignored() {
        let snap = snapshot_with(&[("ft", 6000.0)]);
        let mut s = OnlineSession::new(snap, &[M], &[NodeId(0)], vec![W]);
        assert!(s.push(NodeId(9), M, 0, 1.0).is_none());
        assert_eq!(s.collected(), 0);
        assert_eq!(s.current().verdict, Verdict::Unknown);
    }
}
