//! Batch recognition: fan a slice of queries out over worker threads.
//!
//! SIREN-style serving receives recognition work in batches (a scheduler
//! tick, a telemetry flush), not one query at a time. [`BatchRecognizer`]
//! answers a `&[Query]` with [`efd_util::parallel_map_init`]: dynamic
//! load balancing (queries differ in node count and match rate), one
//! [`crate::VoteScratch`] per worker, results in input order. Thread
//! count follows `efd_util::num_threads` (`EFD_THREADS` overrides).

use std::sync::Arc;

use efd_core::{Query, Recognition};
use efd_util::parallel_map_init;

use crate::snapshot::Snapshot;
use crate::votes::VoteScratch;

/// Parallel batch front end over a published [`Snapshot`].
///
/// Cloning is cheap (an `Arc` bump); clones serve the same snapshot until
/// one of them [`swap`](BatchRecognizer::swap)s in a newer publication.
///
/// ```
/// use std::sync::Arc;
/// use efd_core::{EfdDictionary, Query, RoundingDepth};
/// use efd_serve::{BatchRecognizer, Snapshot};
/// use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
///
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// dict.insert_raw(MetricId(0), NodeId(0), Interval::PAPER_DEFAULT, 6020.0,
///                 &AppLabel::new("ft", "X"));
/// let server = BatchRecognizer::new(Arc::new(Snapshot::freeze(&dict, 8)));
///
/// // 64 noisy queries; every mean still rounds to the 6000.0 key at depth 2.
/// let batch: Vec<Query> = (0..64)
///     .map(|i| Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT,
///                                     &[5980.0 + (i % 60) as f64]))
///     .collect();
/// let answers = server.recognize_batch(&batch);
/// assert_eq!(answers.len(), 64);
/// assert!(answers.iter().all(|r| r.best() == Some("ft")));
/// ```
#[derive(Debug, Clone)]
pub struct BatchRecognizer {
    snapshot: Arc<Snapshot>,
}

impl BatchRecognizer {
    /// Serve the given snapshot.
    pub fn new(snapshot: Arc<Snapshot>) -> Self {
        Self { snapshot }
    }

    /// The snapshot currently served.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snapshot
    }

    /// Swap in a newer publication. In-flight batches on other clones
    /// finish against the snapshot they started with (RCU semantics).
    pub fn swap(&mut self, snapshot: Arc<Snapshot>) {
        self.snapshot = snapshot;
    }

    /// Recognize every query, in input order, across worker threads.
    pub fn recognize_batch(&self, queries: &[Query]) -> Vec<Recognition> {
        parallel_map_init(queries, VoteScratch::default, |scratch, q| {
            self.snapshot.recognize_with(q, scratch)
        })
    }

    /// Scored-verdict-only batch ([`efd_core::Recognition::best`] per
    /// query): skips assembling full vote tables for endpoints that only
    /// need the answer the paper's evaluation scores. The per-query hot
    /// path is allocation-free ([`crate::Snapshot::best_with`]); only the
    /// returned answers allocate.
    pub fn best_batch(&self, queries: &[Query]) -> Vec<Option<String>> {
        parallel_map_init(queries, VoteScratch::default, |scratch, q| {
            self.snapshot.best_with(q, scratch).map(str::to_string)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_core::{EfdDictionary, LabeledObservation, RoundingDepth};
    use efd_telemetry::{AppLabel, Interval, MetricId};

    const M: MetricId = MetricId(0);
    const W: Interval = Interval::PAPER_DEFAULT;

    fn snapshot() -> Arc<Snapshot> {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        for (app, mean) in [("ft", 6020.0), ("cg", 8110.0), ("lu", 4320.0)] {
            d.learn(&LabeledObservation {
                label: AppLabel::new(app, "X"),
                query: Query::from_node_means(M, W, &[mean; 4]),
            });
        }
        Arc::new(Snapshot::freeze(&d, 8))
    }

    #[test]
    fn batch_matches_one_at_a_time() {
        let server = BatchRecognizer::new(snapshot());
        let batch: Vec<Query> = [6010.0, 8090.0, 4310.0, 1.0]
            .iter()
            .map(|&m| Query::from_node_means(M, W, &[m; 4]))
            .collect();
        let answers = server.recognize_batch(&batch);
        assert_eq!(answers.len(), batch.len());
        for (q, a) in batch.iter().zip(&answers) {
            assert_eq!(a, &server.snapshot().recognize(q));
        }
        let bests = server.best_batch(&batch);
        assert_eq!(
            bests,
            vec![Some("ft".into()), Some("cg".into()), Some("lu".into()), None]
        );
    }

    #[test]
    fn swap_publishes_new_snapshot() {
        let mut server = BatchRecognizer::new(snapshot());
        let q = Query::from_node_means(M, W, &[9990.0; 4]);
        assert_eq!(server.recognize_batch(std::slice::from_ref(&q))[0].best(), None);

        let mut d = server.snapshot().to_dictionary();
        d.learn(&LabeledObservation {
            label: AppLabel::new("kripke", "L"),
            query: Query::from_node_means(M, W, &[9985.0; 4]),
        });
        server.swap(Arc::new(Snapshot::freeze(&d, 8)));
        assert_eq!(
            server.recognize_batch(std::slice::from_ref(&q))[0].best(),
            Some("kripke")
        );
    }

    #[test]
    fn empty_batch() {
        let server = BatchRecognizer::new(snapshot());
        assert!(server.recognize_batch(&[]).is_empty());
    }
}
