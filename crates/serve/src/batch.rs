//! Batch recognition: fan a slice of queries out over worker threads.
//!
//! SIREN-style serving receives recognition work in batches (a scheduler
//! tick, a telemetry flush), not one query at a time. [`BatchRecognizer`]
//! answers a `&[Query]` with [`efd_util::parallel_map_init`]: dynamic
//! load balancing (queries differ in node count and match rate), one
//! [`VoteScratch`] per worker, results in input order. Thread count
//! follows `efd_util::num_threads` (`EFD_THREADS` overrides).
//!
//! The recognizer is generic over **any** engine backend
//! (`R: Recognize + Sync`, defaulting to [`Snapshot`]) — including trait
//! objects, so a runtime-selected `Arc<dyn Recognize + Send + Sync>`
//! serves through the same front end as a statically-typed snapshot
//! (`efd serve --backend …` does exactly that).

use std::fmt;
use std::sync::Arc;

use efd_core::engine::{Recognize, VoteScratch};
use efd_core::{Query, Recognition};
use efd_util::parallel_map_init;

use crate::snapshot::Snapshot;

/// Parallel batch front end over a published engine backend.
///
/// Cloning is cheap (an `Arc` bump); clones serve the same backend until
/// one of them [`swap`](BatchRecognizer::swap)s in a newer publication
/// (RCU semantics: in-flight batches finish on the backend they started
/// with).
///
/// ```
/// use std::sync::Arc;
/// use efd_core::{EfdDictionary, Query, RoundingDepth};
/// use efd_serve::{BatchRecognizer, Snapshot};
/// use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
///
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// dict.insert_raw(MetricId(0), NodeId(0), Interval::PAPER_DEFAULT, 6020.0,
///                 &AppLabel::new("ft", "X"));
/// let server = BatchRecognizer::new(Arc::new(Snapshot::freeze(&dict, 8)));
///
/// // 64 noisy queries; every mean still rounds to the 6000.0 key at depth 2.
/// let batch: Vec<Query> = (0..64)
///     .map(|i| Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT,
///                                     &[5980.0 + (i % 60) as f64]))
///     .collect();
/// let answers = server.recognize_batch(&batch);
/// assert_eq!(answers.len(), 64);
/// assert!(answers.iter().all(|r| r.best() == Some("ft")));
/// ```
///
/// Runtime backend selection through the object-safe trait:
///
/// ```
/// use std::sync::Arc;
/// use efd_core::{EfdDictionary, Query, Recognize, RoundingDepth};
/// use efd_serve::{BatchRecognizer, ShardedDictionary, Snapshot};
/// use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
///
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// dict.insert_raw(MetricId(0), NodeId(0), Interval::PAPER_DEFAULT, 6020.0,
///                 &AppLabel::new("ft", "X"));
/// let backend: Arc<dyn Recognize + Send + Sync> = if true {
///     Arc::new(Snapshot::freeze(&dict, 8))
/// } else {
///     Arc::new(ShardedDictionary::from_parts(dict.to_parts(), 8))
/// };
/// let server = BatchRecognizer::new(backend);
/// let q = Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[6004.0]);
/// assert_eq!(server.recognize_batch(std::slice::from_ref(&q))[0].best(), Some("ft"));
/// ```
pub struct BatchRecognizer<R: ?Sized = Snapshot> {
    backend: Arc<R>,
}

impl<R: ?Sized> Clone for BatchRecognizer<R> {
    fn clone(&self) -> Self {
        Self {
            backend: Arc::clone(&self.backend),
        }
    }
}

impl<R: ?Sized> fmt::Debug for BatchRecognizer<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchRecognizer").finish_non_exhaustive()
    }
}

impl<R: Recognize + Send + Sync + ?Sized> BatchRecognizer<R> {
    /// Serve the given backend.
    pub fn new(backend: Arc<R>) -> Self {
        Self { backend }
    }

    /// The backend currently served.
    pub fn backend(&self) -> &Arc<R> {
        &self.backend
    }

    /// Swap in a newer publication. In-flight batches on other clones
    /// finish against the backend they started with (RCU semantics).
    pub fn swap(&mut self, backend: Arc<R>) {
        self.backend = backend;
    }

    /// Recognize every query, in input order, across worker threads.
    ///
    /// Internally the batch is processed in **key-locality order**:
    /// queries sorted by their first point's raw key fields, so
    /// neighboring workers probe neighboring key records / shard lines
    /// instead of striding the whole store per query. Answers are
    /// scattered back to input order — the ordering is a cache strategy,
    /// never visible in results.
    pub fn recognize_batch(&self, queries: &[Query]) -> Vec<Recognition> {
        let order = locality_order(queries);
        let answered = parallel_map_init(&order, VoteScratch::default, |scratch, &i| {
            (i, self.backend.recognize_into(&queries[i], scratch))
        });
        scatter(answered, queries.len())
    }
}

/// Query indices sorted by the first point's raw key fields — the same
/// `(metric, node, start, end, mean)` prefix the stores sort and hash
/// by, so adjacent batch items probe adjacent storage.
fn locality_order(queries: &[Query]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..queries.len()).collect();
    order.sort_by_key(|&i| {
        queries[i].points.first().map(|p| {
            (
                p.metric.0,
                p.node.0,
                p.interval.start,
                p.interval.end,
                p.mean.to_bits(),
            )
        })
    });
    order
}

/// Scatter `(input index, answer)` pairs back into input order.
fn scatter<T>(answered: Vec<(usize, T)>, len: usize) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..len).map(|_| None).collect();
    for (i, r) in answered {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every query answered exactly once"))
        .collect()
}

/// A batch front end is itself an engine backend (single queries hit the
/// underlying backend directly), so recognizers compose anywhere a
/// [`Recognize`] is expected.
impl<R: Recognize + Sync + ?Sized> Recognize for BatchRecognizer<R> {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        self.backend.recognize_into(query, scratch)
    }
}

impl BatchRecognizer<Snapshot> {
    /// The snapshot currently served (alias of
    /// [`BatchRecognizer::backend`] for the default instantiation).
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.backend
    }

    /// Scored-verdict-only batch ([`efd_core::Recognition::best`] per
    /// query): skips assembling full vote tables for endpoints that only
    /// need the answer the paper's evaluation scores. The per-query hot
    /// path is allocation-free ([`crate::Snapshot::best_with`]); only the
    /// returned answers allocate.
    pub fn best_batch(&self, queries: &[Query]) -> Vec<Option<String>> {
        let order = locality_order(queries);
        let answered = parallel_map_init(&order, VoteScratch::default, |scratch, &i| {
            (
                i,
                self.backend.best_with(&queries[i], scratch).map(str::to_string),
            )
        });
        scatter(answered, queries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_core::{EfdDictionary, LabeledObservation, RoundingDepth};
    use efd_telemetry::{AppLabel, Interval, MetricId};

    const M: MetricId = MetricId(0);
    const W: Interval = Interval::PAPER_DEFAULT;

    fn snapshot() -> Arc<Snapshot> {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        for (app, mean) in [("ft", 6020.0), ("cg", 8110.0), ("lu", 4320.0)] {
            d.learn(&LabeledObservation {
                label: AppLabel::new(app, "X"),
                query: Query::from_node_means(M, W, &[mean; 4]),
            });
        }
        Arc::new(Snapshot::freeze(&d, 8))
    }

    #[test]
    fn batch_matches_one_at_a_time() {
        let server = BatchRecognizer::new(snapshot());
        let batch: Vec<Query> = [6010.0, 8090.0, 4310.0, 1.0]
            .iter()
            .map(|&m| Query::from_node_means(M, W, &[m; 4]))
            .collect();
        let answers = server.recognize_batch(&batch);
        assert_eq!(answers.len(), batch.len());
        for (q, a) in batch.iter().zip(&answers) {
            assert_eq!(a, &server.snapshot().recognize(q));
        }
        let bests = server.best_batch(&batch);
        assert_eq!(
            bests,
            vec![Some("ft".into()), Some("cg".into()), Some("lu".into()), None]
        );
    }

    #[test]
    fn dyn_backend_matches_static() {
        let snap = snapshot();
        let static_server = BatchRecognizer::new(Arc::clone(&snap));
        let dyn_backend: Arc<dyn Recognize + Send + Sync> = snap;
        let dyn_server = BatchRecognizer::new(dyn_backend);
        let batch: Vec<Query> = [6010.0, 8090.0, 1.0]
            .iter()
            .map(|&m| Query::from_node_means(M, W, &[m; 4]))
            .collect();
        assert_eq!(
            dyn_server.recognize_batch(&batch),
            static_server.recognize_batch(&batch)
        );
        // The front end is itself a backend.
        let q = &batch[0];
        assert_eq!(
            Recognize::recognize(&dyn_server, q),
            static_server.snapshot().recognize(q)
        );
    }

    #[test]
    fn swap_publishes_new_snapshot() {
        let mut server = BatchRecognizer::new(snapshot());
        let q = Query::from_node_means(M, W, &[9990.0; 4]);
        assert_eq!(server.recognize_batch(std::slice::from_ref(&q))[0].best(), None);

        let mut d = server.snapshot().to_dictionary();
        d.learn(&LabeledObservation {
            label: AppLabel::new("kripke", "L"),
            query: Query::from_node_means(M, W, &[9985.0; 4]),
        });
        server.swap(Arc::new(Snapshot::freeze(&d, 8)));
        assert_eq!(
            server.recognize_batch(std::slice::from_ref(&q))[0].best(),
            Some("kripke")
        );
    }

    #[test]
    fn empty_batch() {
        let server = BatchRecognizer::new(snapshot());
        assert!(server.recognize_batch(&[]).is_empty());
    }
}
