//! One `KeyStore` contract behind every snapshot vote path.
//!
//! The owned [`crate::Snapshot`] (hash-partitioned maps of decoded
//! entries) and the zero-copy [`crate::EfdbSnapshot`] (binary search over
//! raw EFDB key records) answer queries through the same two-phase shape:
//! probe a fingerprint per query point, then accumulate label and app
//! votes in a [`VoteScratch`]. [`KeyStore`] is that shape as a trait, and
//! [`recognize_with`] / [`best_with`] are the *single* vote kernel both
//! backends run — probe loop, wide/scalar counter selection, and
//! [`VoteScratch::finish`] live here once, so a fix or a fast path lands
//! in every backend at the same time.
//!
//! The kernel picks the widened SWAR counter path
//! ([`VoteScratch::vote_label_wide`]) whenever the query is small enough
//! that no label's packed 16-bit lane can saturate (one vote per label
//! per matched point, so `points.len() <= WIDE_VOTE_LIMIT` bounds every
//! lane), and falls back to the exact scalar path otherwise.

use efd_core::engine::VoteScratch;
use efd_core::{Fingerprint, Query, Recognition, RoundingDepth};
use efd_telemetry::AppLabel;

/// The storage contract behind a served snapshot: resolve a fingerprint
/// and vote its stored labels/apps, whatever the backing representation
/// (decoded shard maps, raw EFDB bytes, …).
///
/// Implementations supply per-key *voting*, not per-key *data access*, so
/// a zero-copy store can walk its postings in place without materializing
/// a label list. The shared kernels [`recognize_with`] and [`best_with`]
/// turn any `KeyStore` into the engine API's recognition semantics; a
/// backend's `Recognize::recognize_into` is one call into them.
pub trait KeyStore {
    /// Rounding depth the stored keys were built with (query means are
    /// rounded to this depth before probing).
    fn depth(&self) -> RoundingDepth;

    /// Labels in interned order (resolves `LabelId` → name pairs).
    fn labels(&self) -> &[AppLabel];

    /// Application names in tie-break (interned) order.
    fn apps(&self) -> &[String];

    /// Probe `fp` and, if present, vote its labels and its
    /// **deduplicated** apps into `scratch` (one app vote per matched
    /// point, however many labels share the app). Label votes go through
    /// [`VoteScratch::vote_label_wide`] when `wide` is set, the scalar
    /// path otherwise. Returns whether the key exists.
    fn vote(&self, fp: &Fingerprint, scratch: &mut VoteScratch, wide: bool) -> bool;

    /// Probe `fp` and vote only its deduplicated apps — the verdict-only
    /// fast path behind `best`-style calls. Returns whether the key
    /// exists.
    fn vote_apps(&self, fp: &Fingerprint, scratch: &mut VoteScratch) -> bool;
}

/// Whether a query is small enough for the widened counter path: every
/// label gets at most one vote per matched point, so the point count
/// bounds every 16-bit lane.
#[inline]
fn use_wide(query: &Query) -> bool {
    query.points.len() <= VoteScratch::WIDE_VOTE_LIMIT
}

/// The shared vote kernel: full [`Recognition`] over any [`KeyStore`].
///
/// Rounds each query point at the store's depth, probes it, accumulates
/// votes (wide counters when the query size permits), and finishes in
/// [`Recognition::normalized`] order — the engine API's answer contract.
pub fn recognize_with<S: KeyStore + ?Sized>(
    store: &S,
    query: &Query,
    scratch: &mut VoteScratch,
) -> Recognition {
    scratch.ensure(store.labels().len(), store.apps().len());
    let wide = use_wide(query);
    let depth = store.depth();
    let mut matched = 0usize;
    for p in &query.points {
        let Some(fp) = Fingerprint::from_raw(p.metric, p.node, p.interval, p.mean, depth) else {
            continue;
        };
        if store.vote(&fp, scratch, wide) {
            matched += 1;
        }
    }
    scratch.finish(store.labels(), store.apps(), matched, query.points.len())
}

/// The shared verdict-only kernel: the most-voted application over any
/// [`KeyStore`] (ties broken lexicographically), `None` when nothing
/// matched. Agrees with `recognize_with(store, query, scratch).best()`
/// by construction; no vote tables, no strings.
pub fn best_with<'s, S: KeyStore + ?Sized>(
    store: &'s S,
    query: &Query,
    scratch: &mut VoteScratch,
) -> Option<&'s str> {
    scratch.ensure(store.labels().len(), store.apps().len());
    let depth = store.depth();
    for p in &query.points {
        let Some(fp) = Fingerprint::from_raw(p.metric, p.node, p.interval, p.mean, depth) else {
            continue;
        };
        store.vote_apps(&fp, scratch);
    }
    scratch.finish_best(store.apps())
}
