//! The live, concurrently-mutable form of a dictionary.
//!
//! [`ShardedDictionary`] partitions fingerprint keys across N hash
//! shards, each behind its own `RwLock`, plus one `RwLock`ed label
//! interner. Writers (`learn`, `insert_raw`) take the interner briefly
//! and then exactly one shard write lock, so learners touching different
//! keys proceed in parallel; readers (`recognize`) take only read locks
//! and never block each other. For read-mostly traffic, freeze a
//! [`Snapshot`] with [`ShardedDictionary::snapshot`] and serve that
//! lock-free instead — the live form is for the window where learning and
//! recognition overlap.
//!
//! Lock order is always interner → shard, and at most one shard lock is
//! held at a time, so the structure is deadlock-free by construction.

use std::sync::RwLock;

use efd_core::dictionary::{AppNameId, LabelId};
use efd_core::engine::{Learn, Recognize, VoteScratch};
use efd_core::{
    DictionaryParts, EfdDictionary, Fingerprint, LabeledObservation, Query, Recognition,
    RoundingDepth,
};
use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};
use efd_util::FxHashMap;

use crate::snapshot::Snapshot;
use crate::{shard_bits_for, shard_of};

/// The shared label/application interner. Kept outside the shards so one
/// `LabelId` names the same label in every shard.
#[derive(Debug, Default)]
struct LabelTable {
    labels: Vec<AppLabel>,
    label_ids: FxHashMap<AppLabel, LabelId>,
    apps: Vec<String>,
    app_ids: FxHashMap<String, AppNameId>,
    label_app: Vec<AppNameId>,
}

impl LabelTable {
    fn intern(&mut self, label: &AppLabel) -> LabelId {
        if let Some(&id) = self.label_ids.get(label) {
            return id;
        }
        let app_id = match self.app_ids.get(&label.app) {
            Some(&a) => a,
            None => {
                let a = AppNameId::from_index(self.apps.len());
                self.apps.push(label.app.clone());
                self.app_ids.insert(label.app.clone(), a);
                a
            }
        };
        let id = LabelId::from_index(self.labels.len());
        self.labels.push(label.clone());
        self.label_ids.insert(label.clone(), id);
        self.label_app.push(app_id);
        id
    }
}

/// One hash partition: the key→labels map behind its own lock.
type Shard = RwLock<FxHashMap<Fingerprint, Vec<LabelId>>>;

/// A hash-sharded dictionary supporting concurrent learning and
/// recognition.
///
/// Answers are oracle-equivalent: after any interleaving of concurrent
/// `learn` calls, recognition equals a single-threaded
/// [`EfdDictionary`] that learned the same observations (in any order),
/// modulo [`Recognition::normalized`] ordering — key/label *content* is
/// order-independent, and tie-breaks no longer depend on learn order.
///
/// ```
/// use std::thread;
/// use efd_core::{LabeledObservation, Query, RoundingDepth};
/// use efd_serve::{Recognize, ShardedDictionary};
/// use efd_telemetry::{AppLabel, Interval, MetricId};
///
/// let dict = ShardedDictionary::new(RoundingDepth::new(2), 8);
/// // Two threads learn disjoint applications concurrently.
/// thread::scope(|s| {
///     for (app, mean) in [("ft", 6020.0), ("cg", 8110.0)] {
///         let dict = &dict;
///         s.spawn(move || {
///             dict.learn(&LabeledObservation {
///                 label: AppLabel::new(app, "X"),
///                 query: Query::from_node_means(
///                     MetricId(0), Interval::PAPER_DEFAULT, &[mean; 4]),
///             });
///         });
///     }
/// });
/// let q = Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[8090.0; 4]);
/// assert_eq!(dict.recognize(&q).best(), Some("cg"));
/// ```
#[derive(Debug)]
pub struct ShardedDictionary {
    depth: RoundingDepth,
    shard_bits: u32,
    shards: Box<[Shard]>,
    table: RwLock<LabelTable>,
}

impl ShardedDictionary {
    /// Empty sharded dictionary pruning at `depth`, with `shards` hash
    /// partitions (rounded up to a power of two, clamped to
    /// [`crate::MAX_SHARD_BITS`] bits).
    pub fn new(depth: RoundingDepth, shards: usize) -> Self {
        let shard_bits = shard_bits_for(shards);
        let shards = (0..(1usize << shard_bits))
            .map(|_| RwLock::new(FxHashMap::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            depth,
            shard_bits,
            shards,
            table: RwLock::new(LabelTable::default()),
        }
    }

    /// Freeze a learned [`EfdDictionary`] into shards **without
    /// re-learning**: entries are redistributed by key hash, labels keep
    /// their interned ids.
    ///
    /// # Panics
    ///
    /// Panics on internally inconsistent parts (out-of-range ids), like
    /// [`EfdDictionary::from_parts`].
    pub fn from_parts(parts: DictionaryParts, shards: usize) -> Self {
        // Canonicalize through the core dictionary: one shared
        // implementation of key merging, per-list dedup, and consistency
        // validation (which is where the documented panics originate).
        let parts = EfdDictionary::from_parts(parts).into_parts();
        let me = Self::new(parts.depth, shards);
        {
            let mut table = me.table.write().expect("label table poisoned");
            table.label_ids = parts
                .labels
                .iter()
                .enumerate()
                .map(|(i, l)| (l.clone(), LabelId::from_index(i)))
                .collect();
            table.app_ids = parts
                .apps
                .iter()
                .enumerate()
                .map(|(i, a)| (a.clone(), AppNameId::from_index(i)))
                .collect();
            table.labels = parts.labels;
            table.apps = parts.apps;
            table.label_app = parts.label_app;
            for (fp, ids) in parts.entries {
                me.shards[shard_of(&fp, me.shard_bits)]
                    .write()
                    .expect("shard poisoned")
                    .insert(fp, ids);
            }
        }
        me
    }

    /// The rounding depth this dictionary was built with.
    pub fn depth(&self) -> RoundingDepth {
        self.depth
    }

    /// Number of hash partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of keys across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard poisoned").len())
            .sum()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys per shard, for load-balance inspection.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard poisoned").len())
            .collect()
    }

    /// Intern `label`, taking the interner write lock only when the label
    /// is genuinely new (double-checked).
    fn intern(&self, label: &AppLabel) -> LabelId {
        if let Some(&id) = self
            .table
            .read()
            .expect("label table poisoned")
            .label_ids
            .get(label)
        {
            return id;
        }
        self.table.write().expect("label table poisoned").intern(label)
    }

    /// Insert an interned label under a key, taking exactly that key's
    /// shard write lock. Duplicate `(key, label)` pairs are ignored — the
    /// paper's pruning, same as [`EfdDictionary::insert_raw`].
    fn insert_id(&self, fp: Fingerprint, id: LabelId) {
        let mut shard = self.shards[shard_of(&fp, self.shard_bits)]
            .write()
            .expect("shard poisoned");
        let list = shard.entry(fp).or_default();
        if !list.contains(&id) {
            list.push(id);
        }
    }

    /// Insert one raw mean under `label` (concurrent-safe). Returns
    /// `false` (no-op) for non-finite means; duplicate `(key, label)`
    /// pairs are ignored — same pruning semantics as
    /// [`EfdDictionary::insert_raw`].
    pub fn insert_raw(
        &self,
        metric: MetricId,
        node: NodeId,
        interval: Interval,
        raw_mean: f64,
        label: &AppLabel,
    ) -> bool {
        let Some(fp) = Fingerprint::from_raw(metric, node, interval, raw_mean, self.depth) else {
            return false;
        };
        self.insert_id(fp, self.intern(label));
        true
    }

    /// Learn every point of a labeled observation (concurrent-safe; the
    /// label is interned once, then each point locks exactly one shard).
    pub fn learn(&self, obs: &LabeledObservation) {
        let id = self.intern(&obs.label);
        for p in &obs.query.points {
            let Some(fp) = Fingerprint::from_raw(p.metric, p.node, p.interval, p.mean, self.depth)
            else {
                continue;
            };
            self.insert_id(fp, id);
        }
    }

    /// Learn a batch (sequentially; callers wanting parallelism spawn
    /// their own threads — every method here is `&self`).
    pub fn learn_all(&self, observations: &[LabeledObservation]) {
        for o in observations {
            self.learn(o);
        }
    }

    /// Publish the current state as an immutable [`Snapshot`].
    ///
    /// Shards are copied one at a time under their read locks while the
    /// interner read lock pins the label set, so the snapshot is
    /// per-shard atomic; entries landing in an already-copied shard during
    /// the copy are picked up by the next publication. Learners inserting
    /// under *already-known* labels stall only on the one shard currently
    /// being copied; a learner interning a **new** label needs the interner
    /// write lock and therefore waits for the whole copy.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_parts(self.to_parts(), self.shard_count())
    }

    /// Copy the current state out as [`DictionaryParts`] — the input to
    /// snapshots, EFDB dumps, and WAL segment freezes. Same locking
    /// discipline (and therefore the same per-shard-atomic caveat) as
    /// [`ShardedDictionary::snapshot`]. Entries are emitted in
    /// deterministic packed-key order.
    pub fn to_parts(&self) -> DictionaryParts {
        let table = self.table.read().expect("label table poisoned");
        let mut entries: Vec<(Fingerprint, Vec<LabelId>)> = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.read().expect("shard poisoned");
            entries.extend(shard.iter().map(|(fp, ids)| (*fp, ids.clone())));
        }
        entries.sort_by_key(|(fp, _)| fp.pack());
        DictionaryParts {
            depth: self.depth,
            entries,
            labels: table.labels.clone(),
            apps: table.apps.clone(),
            label_app: table.label_app.clone(),
        }
    }

    /// Strip the given label ids from every shard, dropping keys whose
    /// lists empty out. Returns the number of keys dropped entirely.
    fn strip_ids(&self, victims: &[LabelId]) -> usize {
        let mut dropped = 0usize;
        for shard in self.shards.iter() {
            let mut shard = shard.write().expect("shard poisoned");
            shard.retain(|_, ids| {
                ids.retain(|id| !victims.contains(id));
                if ids.is_empty() {
                    dropped += 1;
                    false
                } else {
                    true
                }
            });
        }
        dropped
    }

    /// Forget every label of application `app` (concurrent-safe). Returns
    /// the number of keys dropped entirely, like
    /// [`efd_core::maintenance::forget_app`].
    ///
    /// Unlike the core rebuild, the interner is left intact, so the
    /// surviving labels keep their ids and tie-break order — eviction
    /// never perturbs how the remaining applications rank.
    pub fn forget_app(&self, app: &str) -> usize {
        let victims: Vec<LabelId> = {
            let table = self.table.read().expect("label table poisoned");
            let Some(&app_id) = table.app_ids.get(app) else {
                return 0;
            };
            (0..table.labels.len())
                .map(LabelId::from_index)
                .filter(|id| table.label_app[id.index()] == app_id)
                .collect()
        };
        self.strip_ids(&victims)
    }

    /// Forget one specific label (application + input), concurrent-safe.
    /// Returns the number of keys dropped entirely, like
    /// [`efd_core::maintenance::forget_label`]. The interner keeps the
    /// label's id, so survivors' tie-break order is untouched.
    pub fn forget_label(&self, app: &str, input: &str) -> usize {
        let victim = {
            let table = self.table.read().expect("label table poisoned");
            match table.label_ids.get(&AppLabel::new(app, input)) {
                Some(&id) => id,
                None => return 0,
            }
        };
        self.strip_ids(&[victim])
    }

    /// Collapse back into a single-threaded [`EfdDictionary`]. Entries are
    /// emitted in deterministic packed-key order (the concurrent learn
    /// order is not recorded).
    pub fn into_dictionary(self) -> EfdDictionary {
        let table = self.table.into_inner().expect("label table poisoned");
        let mut entries: Vec<(Fingerprint, Vec<LabelId>)> = Vec::new();
        for shard in self.shards.into_vec() {
            let shard = shard.into_inner().expect("shard poisoned");
            entries.extend(shard);
        }
        entries.sort_by_key(|(fp, _)| fp.pack());
        EfdDictionary::from_parts(DictionaryParts {
            depth: self.depth,
            entries,
            labels: table.labels,
            apps: table.apps,
            label_app: table.label_app,
        })
    }
}

/// The live form as an engine backend.
///
/// `recognize_into` holds the interner read lock for the duration (so
/// vote counters can be sized once) and takes each point's shard read
/// lock briefly. Concurrent writers may publish entries between points —
/// recognition against a moving dictionary is per-shard atomic, not a
/// global point-in-time view; freeze a [`Snapshot`] when that matters.
impl Recognize for ShardedDictionary {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        let table = self.table.read().expect("label table poisoned");
        scratch.ensure(table.labels.len(), table.apps.len());
        let mut matched = 0usize;
        for p in &query.points {
            let Some(fp) = Fingerprint::from_raw(p.metric, p.node, p.interval, p.mean, self.depth)
            else {
                continue;
            };
            let shard = self.shards[shard_of(&fp, self.shard_bits)]
                .read()
                .expect("shard poisoned");
            let Some(ids) = shard.get(&fp) else {
                continue;
            };
            matched += 1;
            scratch.begin_point();
            for &id in ids {
                scratch.vote_label(id);
                scratch.vote_app_deduped(table.label_app[id.index()]);
            }
        }
        scratch.finish(&table.labels, &table.apps, matched, query.points.len())
    }
}

/// Exclusive-access learning via the engine contract. The inherent
/// [`ShardedDictionary::learn`] family stays the concurrent API (`&self`,
/// callable from many threads); the trait form simply forwards, so the
/// sharded dictionary slots into any `E: Learn` harness.
impl Learn for ShardedDictionary {
    fn learn(&mut self, obs: &LabeledObservation) {
        ShardedDictionary::learn(self, obs);
    }

    fn learn_all(&mut self, observations: &[LabeledObservation]) {
        ShardedDictionary::learn_all(self, observations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: MetricId = MetricId(0);
    const W: Interval = Interval::PAPER_DEFAULT;

    fn obs(app: &str, input: &str, means: &[f64]) -> LabeledObservation {
        LabeledObservation {
            label: AppLabel::new(app, input),
            query: Query::from_node_means(M, W, means),
        }
    }

    fn observations() -> Vec<LabeledObservation> {
        vec![
            obs("ft", "X", &[6020.0, 6020.0, 6020.0, 6020.0]),
            obs("ft", "Y", &[6023.0, 6019.0, 6021.0, 6018.0]),
            obs("sp", "X", &[7617.0, 7520.0, 7520.0, 7121.0]),
            obs("bt", "X", &[7638.0, 7540.0, 7540.0, 7140.0]),
            obs("miniAMR", "X", &[7820.0; 4]),
            obs("miniAMR", "Z", &[10980.0; 4]),
        ]
    }

    fn oracle() -> EfdDictionary {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        d.learn_all(&observations());
        d
    }

    fn queries() -> Vec<Query> {
        vec![
            Query::from_node_means(M, W, &[6031.0, 5988.0, 6007.0, 6044.0]),
            Query::from_node_means(M, W, &[7601.0, 7512.0, 7533.0, 7098.0]),
            Query::from_node_means(M, W, &[10951.0, 11020.0, 10990.0, 11043.0]),
            Query::from_node_means(M, W, &[6000.0, 6000.0, 6000.0, 7800.0]),
            Query::from_node_means(M, W, &[1.0, 2.0, 3.0, 4.0]),
        ]
    }

    #[test]
    fn sequential_learn_matches_oracle() {
        let sharded = ShardedDictionary::new(RoundingDepth::new(2), 8);
        sharded.learn_all(&observations());
        let oracle = oracle();
        assert_eq!(sharded.len(), oracle.len());
        for q in queries() {
            assert_eq!(sharded.recognize(&q), oracle.recognize(&q).normalized());
        }
    }

    #[test]
    fn from_parts_distributes_without_relearning() {
        let oracle = oracle();
        let sharded = ShardedDictionary::from_parts(oracle.to_parts(), 4);
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(sharded.len(), oracle.len());
        assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), oracle.len());
        for q in queries() {
            assert_eq!(sharded.recognize(&q), oracle.recognize(&q).normalized());
        }
    }

    #[test]
    fn snapshot_and_into_dictionary_round_trip() {
        let sharded = ShardedDictionary::new(RoundingDepth::new(2), 8);
        sharded.learn_all(&observations());
        let snap = sharded.snapshot();
        let oracle = oracle();
        for q in queries() {
            assert_eq!(snap.recognize(&q), oracle.recognize(&q).normalized());
        }
        let merged = sharded.into_dictionary();
        assert_eq!(merged.len(), oracle.len());
        for q in queries() {
            assert_eq!(
                merged.recognize(&q).normalized(),
                oracle.recognize(&q).normalized()
            );
        }
    }

    #[test]
    fn duplicate_key_label_pairs_prune() {
        let sharded = ShardedDictionary::new(RoundingDepth::new(2), 2);
        let label = AppLabel::new("ft", "X");
        for _ in 0..3 {
            assert!(sharded.insert_raw(M, NodeId(0), W, 6020.0, &label));
        }
        assert_eq!(sharded.len(), 1);
        assert!(!sharded.insert_raw(M, NodeId(0), W, f64::NAN, &label));
    }

    #[test]
    fn single_shard_degenerates_gracefully() {
        let sharded = ShardedDictionary::new(RoundingDepth::new(2), 1);
        sharded.learn_all(&observations());
        assert_eq!(sharded.shard_count(), 1);
        let oracle = oracle();
        for q in queries() {
            assert_eq!(sharded.recognize(&q), oracle.recognize(&q).normalized());
        }
    }
}
