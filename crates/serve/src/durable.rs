//! Durable serving: a [`ShardedDictionary`] whose every learn (and
//! forget) is written ahead to an [`efd_core::wal`] directory before it
//! mutates the live shards.
//!
//! [`DurableDictionary`] is the serve-layer face of the WAL:
//!
//! * **Open = recover.** [`DurableDictionary::open`] replays the
//!   directory (newest segment + log tail) into the shards, so a
//!   restarted service answers exactly as the durably-acknowledged
//!   prefix of its previous life.
//! * **Log before apply.** [`DurableDictionary::learn`] appends the
//!   operation record (synced per the [`efd_core::wal::SyncPolicy`]) and only then
//!   touches the shards — on `Ok`, the operation survives a crash.
//! * **Freeze when fat.** When the log outgrows its threshold, learns
//!   freeze the current state into an immutable EFDB segment and reset
//!   the log.
//!
//! ## Locking
//!
//! The WAL handle sits in a `Mutex` that is held across *append +
//! apply*: durable writers serialize. That is deliberate — if a freeze
//! could interleave between another writer's append and its shard
//! insert, the frozen segment would miss an acknowledged operation,
//! and the log reset would then discard its record: durability lost.
//! One lock makes `segment ∪ log ⊇ acknowledged` an invariant.
//! Readers ([`Recognize`]) never touch that mutex — recognition runs at
//! full concurrency against the shards, exactly as without a WAL.

use std::path::Path;
use std::sync::Mutex;

use efd_core::engine::{Learn, Recognize, VoteScratch};
use efd_core::wal::{self, LearnRecord, Recovery, WalDir, WalError, WalOptions, WalRecord};
use efd_core::{LabeledObservation, Query, Recognition, RoundingDepth};
use efd_telemetry::metric::MetricCatalog;

use crate::ShardedDictionary;

/// A sharded dictionary with write-ahead durability.
///
/// ```no_run
/// use efd_core::wal::WalOptions;
/// use efd_core::RoundingDepth;
/// use efd_serve::DurableDictionary;
/// use efd_telemetry::catalog::small_catalog;
///
/// let catalog = small_catalog();
/// let (served, recovery) = DurableDictionary::open(
///     "wal-dir".as_ref(),
///     RoundingDepth::new(2),
///     8,
///     &catalog,
///     WalOptions::default(),
/// ).unwrap();
/// assert_eq!(recovery.replayed, 0);
/// ```
#[derive(Debug)]
pub struct DurableDictionary {
    dict: ShardedDictionary,
    wal: Mutex<WalDir>,
    catalog: MetricCatalog,
}

impl DurableDictionary {
    /// Open (or create) the WAL directory and serve its recovered state.
    ///
    /// A fresh directory starts empty at `default_depth`; an existing
    /// one recovers at its logged depth (torn tails truncated, the fault
    /// reported in the returned [`Recovery`]). Segment bytes are loaded
    /// through the checked-buffer view (`efd_core::binfmt::check`): the
    /// file is validated once and decoded straight into dictionary parts,
    /// with no intermediate owned `Efdb` materialization.
    pub fn open(
        dir: &Path,
        default_depth: RoundingDepth,
        shards: usize,
        catalog: &MetricCatalog,
        options: WalOptions,
    ) -> Result<(DurableDictionary, Recovery), WalError> {
        let (wal, recovery) = WalDir::open(dir, default_depth, catalog, options)?;
        let dict = ShardedDictionary::from_parts(recovery.dictionary.to_parts(), shards);
        Ok((
            DurableDictionary {
                dict,
                wal: Mutex::new(wal),
                catalog: catalog.clone(),
            },
            recovery,
        ))
    }

    /// The live dictionary being served.
    pub fn dictionary(&self) -> &ShardedDictionary {
        &self.dict
    }

    /// Append a record, apply `apply` to the shards, and freeze a segment
    /// if the log crossed its threshold — all under the WAL mutex (see
    /// the module docs for why apply happens under the lock).
    fn logged(&self, rec: &WalRecord, apply: impl FnOnce(&ShardedDictionary)) -> Result<(), WalError> {
        let mut wal = self.wal.lock().expect("wal poisoned");
        wal.append(rec)?;
        apply(&self.dict);
        if wal.should_freeze() {
            wal.freeze(&self.dict.to_parts(), &self.catalog)?;
        }
        Ok(())
    }

    /// Durably learn one observation: on `Ok`, the learn is in the log
    /// (synced per policy) *and* visible to concurrent recognition.
    pub fn learn(&self, obs: &LabeledObservation) -> Result<(), WalError> {
        let rec = WalRecord::Learn(LearnRecord::from_observation(obs, &self.catalog));
        self.logged(&rec, |d| d.learn(obs))
    }

    /// Durably forget an application (see
    /// [`ShardedDictionary::forget_app`]). Logged so the eviction
    /// survives recovery — an unlogged forget would resurrect on replay.
    pub fn forget_app(&self, app: &str) -> Result<usize, WalError> {
        let mut dropped = 0;
        self.logged(
            &WalRecord::ForgetApp { app: app.to_string() },
            |d| dropped = d.forget_app(app),
        )?;
        Ok(dropped)
    }

    /// Durably forget one label (application + input); logged, like
    /// [`DurableDictionary::forget_app`].
    pub fn forget_label(&self, app: &str, input: &str) -> Result<usize, WalError> {
        let mut dropped = 0;
        self.logged(
            &WalRecord::ForgetLabel {
                app: app.to_string(),
                input: input.to_string(),
            },
            |d| dropped = d.forget_label(app, input),
        )?;
        Ok(dropped)
    }

    /// Flush any batched appends to disk ([`efd_core::wal::SyncPolicy::EveryN`] /
    /// [`efd_core::wal::SyncPolicy::Never`] leave a tail unsynced between flushes).
    pub fn sync(&self) -> Result<(), WalError> {
        self.wal.lock().expect("wal poisoned").sync()
    }

    /// Freeze the current state into a segment now, regardless of log
    /// size (e.g. on graceful shutdown, to make the next cold start a
    /// pure EFDB load).
    pub fn freeze(&self) -> Result<(), WalError> {
        let mut wal = self.wal.lock().expect("wal poisoned");
        wal.freeze(&self.dict.to_parts(), &self.catalog)?;
        Ok(())
    }

    /// Compact the directory: merge newest segment + log into one
    /// canonical EFDB segment, removing superseded files.
    pub fn compact(&self) -> Result<wal::CompactReport, WalError> {
        let mut wal = self.wal.lock().expect("wal poisoned");
        let parts = self.dict.to_parts();
        let keys = parts.entries.len();
        let segment = wal.freeze(&parts, &self.catalog)?;
        let mut removed = 0;
        for entry in std::fs::read_dir(wal.dir()).into_iter().flatten().flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().to_string();
            if name.starts_with("segment-")
                && name.ends_with(".efdb")
                && path != segment
                && std::fs::remove_file(&path).is_ok()
            {
                removed += 1;
            }
        }
        Ok(wal::CompactReport {
            segment,
            removed,
            keys,
            replayed: 0,
        })
    }
}

/// Read path: plain sharded recognition, WAL never involved.
impl Recognize for DurableDictionary {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        self.dict.recognize_into(query, scratch)
    }
}

/// Engine-contract learning.
///
/// # Panics
///
/// The trait's `learn` is infallible, but durability is not: a WAL
/// append failure here **panics** rather than silently dropping the
/// write-ahead guarantee. Callers that want to handle I/O errors use the
/// inherent fallible [`DurableDictionary::learn`].
impl Learn for DurableDictionary {
    fn learn(&mut self, obs: &LabeledObservation) {
        DurableDictionary::learn(self, obs).expect("WAL append failed; durability guarantee broken");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_core::wal::SyncPolicy;
    use efd_telemetry::catalog::small_catalog;
    use efd_telemetry::{AppLabel, Interval, MetricId};

    fn obs(app: &str, input: &str, means: &[f64]) -> LabeledObservation {
        LabeledObservation {
            label: AppLabel::new(app, input),
            query: Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, means),
        }
    }

    #[test]
    fn learn_crash_reopen_round_trip() {
        let catalog = small_catalog();
        let dir = std::env::temp_dir().join(format!("efd-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let depth = RoundingDepth::new(2);
        let options = WalOptions {
            sync: SyncPolicy::Always,
            ..WalOptions::default()
        };

        {
            let (served, rec) =
                DurableDictionary::open(&dir, depth, 4, &catalog, options).unwrap();
            assert_eq!(rec.replayed, 0);
            served.learn(&obs("ft", "X", &[6020.0; 4])).unwrap();
            served.learn(&obs("cg", "X", &[8110.0; 4])).unwrap();
            assert_eq!(served.forget_app("cg").unwrap(), 4);
            // Dropped without sync/close: SyncPolicy::Always already
            // made every operation durable.
        }

        let (served, rec) = DurableDictionary::open(&dir, depth, 4, &catalog, options).unwrap();
        assert_eq!(rec.replayed, 3);
        let q_ft = Query::from_node_means(
            MetricId(0),
            Interval::PAPER_DEFAULT,
            &[6031.0, 5988.0, 6007.0, 6044.0],
        );
        let q_cg = Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[8110.0; 4]);
        assert_eq!(served.recognize(&q_ft).best(), Some("ft"));
        assert_eq!(
            served.recognize(&q_cg).best(),
            None,
            "forgotten app must not resurrect on recovery"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
