//! The daemon's metric surface: every instrument the server touches,
//! pre-registered at start so the hot path is pure atomics (no registry
//! lock, no name lookup per request).
//!
//! Exported families (all documented with example queries in
//! `docs/METRICS.md`):
//!
//! * `efd_requests_total{command}` — requests answered, per command.
//! * `efd_verdicts_total{verdict}` — recognition verdicts returned.
//! * `efd_request_duration_seconds` — end-to-end request latency.
//! * `efd_stream_time_to_first_verdict_seconds` — stream open → first
//!   verdict.
//! * `efd_queue_depth` — accepted connections awaiting a worker.
//! * `efd_active_connections` — connections currently on a worker.
//! * `efd_connections_total` — connections accepted since start.
//! * `efd_protocol_errors_total{kind}` — frame/grammar violations.
//! * `efd_snapshot_swaps_total` / `efd_snapshot_generation` — hot-swap
//!   republications and the current generation.
//! * `efd_catalog_info{version}` — the served catalog artifact version
//!   (constant `1`; the label carries the information).
//! * `efd_drift_alarm` plus the `efd_drift_*_rate` /
//!   `efd_drift_baseline_*` / `efd_drift_window_samples` family — the
//!   live drift monitor's judgement against the published baseline.
//! * `efd_scrapes_total` — `/metrics` scrapes served.

use std::sync::{Arc, Mutex};

use efd_telemetry::prom::{Counter, FloatGauge, Gauge, Histogram, Registry};

use super::drift::{DriftSnapshot, DriftState};
use super::protocol::{Command, COMMANDS};

/// Latency buckets for `efd_request_duration_seconds`: 25 µs … 1 s,
/// roughly ×2–×2.5 steps — tight enough at the bottom to resolve the
/// ~10 µs dictionary hit from syscall overhead, wide enough at the top
/// to catch a stalled worker.
pub const DURATION_BUCKETS: [f64; 12] = [
    25e-6, 50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.25, 1.0,
];

/// Buckets for `efd_stream_time_to_first_verdict_seconds`: a stream's
/// first verdict lands when its fingerprint window closes, so this is
/// seconds-to-minutes territory (the paper's "within the first two
/// minutes"), not microseconds.
pub const TTFV_BUCKETS: [f64; 9] = [0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 150.0];

/// Protocol-error kinds, in registration order (`kind` label values).
pub const ERROR_KINDS: [&str; 8] = [
    "torn",
    "oversized",
    "empty",
    "malformed",
    "unknown-metric",
    "bad-state",
    "read-only",
    "idle-timeout",
];

/// Verdict label values, in registration order.
pub const VERDICT_KINDS: [&str; 3] = ["recognized", "ambiguous", "unknown"];

/// All daemon instruments, handle-cached over one [`Registry`].
#[derive(Debug)]
pub struct DaemonMetrics {
    registry: Registry,
    requests: [Arc<Counter>; COMMANDS.len()],
    verdicts: [Arc<Counter>; VERDICT_KINDS.len()],
    errors: [Arc<Counter>; ERROR_KINDS.len()],
    /// End-to-end request latency histogram.
    pub request_duration: Arc<Histogram>,
    /// Stream open → first verdict latency histogram.
    pub time_to_first_verdict: Arc<Histogram>,
    /// Connections accepted but not yet claimed by a worker.
    pub queue_depth: Arc<Gauge>,
    /// Connections currently being served.
    pub active_connections: Arc<Gauge>,
    /// Connections accepted since daemon start.
    pub connections_total: Arc<Counter>,
    /// Engine republications since start (initial publish excluded).
    pub swaps_total: Arc<Counter>,
    /// Current engine generation (starts at 1).
    pub generation: Arc<Gauge>,
    /// Drift judgement: 1 while the monitor is in alarm, else 0.
    pub drift_alarm: Arc<Gauge>,
    /// Verdicts currently in the drift window.
    pub drift_window_samples: Arc<Gauge>,
    /// Live unknown-verdict rate over the drift window.
    pub drift_unknown_rate: Arc<FloatGauge>,
    /// Live ambiguous-verdict rate over the drift window.
    pub drift_ambiguous_rate: Arc<FloatGauge>,
    /// Published baseline unknown rate (0 when no baseline).
    pub drift_baseline_unknown_rate: Arc<FloatGauge>,
    /// Published baseline ambiguous rate (0 when no baseline).
    pub drift_baseline_ambiguous_rate: Arc<FloatGauge>,
    /// `/metrics` scrapes served.
    pub scrapes_total: Arc<Counter>,
    /// Served catalog artifact version (`hpc-apps@v3`), rendered as the
    /// `efd_catalog_info{version=...}` label. The vendored registry keys
    /// series by label at registration, so a value that changes on every
    /// hot swap is rendered by hand in [`DaemonMetrics::render`] instead.
    version: Mutex<Option<String>>,
}

impl Default for DaemonMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl DaemonMetrics {
    /// Register every family and cache the instrument handles.
    pub fn new() -> Self {
        let registry = Registry::new();
        let requests = COMMANDS.map(|c| {
            registry.counter(
                "efd_requests_total",
                "Requests answered, by protocol command.",
                &[("command", c.name())],
            )
        });
        let verdicts = VERDICT_KINDS.map(|v| {
            registry.counter(
                "efd_verdicts_total",
                "Recognition verdicts returned.",
                &[("verdict", v)],
            )
        });
        let errors = ERROR_KINDS.map(|k| {
            registry.counter(
                "efd_protocol_errors_total",
                "Protocol violations and dropped connections, by kind.",
                &[("kind", k)],
            )
        });
        let request_duration = registry.histogram(
            "efd_request_duration_seconds",
            "End-to-end request latency (frame decoded to response flushed).",
            &[],
            &DURATION_BUCKETS,
        );
        let time_to_first_verdict = registry.histogram(
            "efd_stream_time_to_first_verdict_seconds",
            "Stream open to first verdict (the paper's during-execution latency).",
            &[],
            &TTFV_BUCKETS,
        );
        let queue_depth = registry.gauge(
            "efd_queue_depth",
            "Accepted connections awaiting a worker.",
            &[],
        );
        let active_connections = registry.gauge(
            "efd_active_connections",
            "Connections currently being served.",
            &[],
        );
        let connections_total = registry.counter(
            "efd_connections_total",
            "Connections accepted since daemon start.",
            &[],
        );
        let swaps_total = registry.counter(
            "efd_snapshot_swaps_total",
            "Engine hot-swap republications since start.",
            &[],
        );
        let generation = registry.gauge(
            "efd_snapshot_generation",
            "Current published engine generation.",
            &[],
        );
        let drift_alarm = registry.gauge(
            "efd_drift_alarm",
            "1 while live verdict rates exceed the published baseline.",
            &[],
        );
        let drift_window_samples = registry.gauge(
            "efd_drift_window_samples",
            "Verdicts currently in the drift monitor's sliding window.",
            &[],
        );
        let drift_unknown_rate = registry.float_gauge(
            "efd_drift_unknown_rate",
            "Live unknown-verdict rate over the drift window.",
            &[],
        );
        let drift_ambiguous_rate = registry.float_gauge(
            "efd_drift_ambiguous_rate",
            "Live ambiguous-verdict rate over the drift window.",
            &[],
        );
        let drift_baseline_unknown_rate = registry.float_gauge(
            "efd_drift_baseline_unknown_rate",
            "Unknown rate recorded when the served version was published.",
            &[],
        );
        let drift_baseline_ambiguous_rate = registry.float_gauge(
            "efd_drift_baseline_ambiguous_rate",
            "Ambiguous rate recorded when the served version was published.",
            &[],
        );
        let scrapes_total = registry.counter(
            "efd_scrapes_total",
            "Prometheus /metrics scrapes served.",
            &[],
        );
        DaemonMetrics {
            registry,
            requests,
            verdicts,
            errors,
            request_duration,
            time_to_first_verdict,
            queue_depth,
            active_connections,
            connections_total,
            swaps_total,
            generation,
            drift_alarm,
            drift_window_samples,
            drift_unknown_rate,
            drift_ambiguous_rate,
            drift_baseline_unknown_rate,
            drift_baseline_ambiguous_rate,
            scrapes_total,
            version: Mutex::new(None),
        }
    }

    /// Record the served catalog version (`None` outside the catalog).
    pub fn set_version(&self, version: Option<String>) {
        *self.version.lock().expect("version lock") = version;
    }

    /// The served catalog version, if any.
    pub fn version(&self) -> Option<String> {
        self.version.lock().expect("version lock").clone()
    }

    /// Push a drift reading into the gauge family.
    pub fn observe_drift(&self, snap: &DriftSnapshot) {
        self.drift_alarm.set(i64::from(snap.state == DriftState::Alarm));
        self.drift_window_samples.set(snap.samples as i64);
        self.drift_unknown_rate.set(snap.unknown_rate);
        self.drift_ambiguous_rate.set(snap.ambiguous_rate);
        let (bu, ba) = match snap.baseline {
            Some(b) => (b.unknown_rate, b.ambiguous_rate),
            None => (0.0, 0.0),
        };
        self.drift_baseline_unknown_rate.set(bu);
        self.drift_baseline_ambiguous_rate.set(ba);
    }

    /// Count one request of the given command.
    pub fn count_request(&self, c: Command) {
        self.requests[c.index()].inc();
    }

    /// Count one verdict by its label (`recognized`/`ambiguous`/`unknown`).
    pub fn count_verdict(&self, label: &str) {
        if let Some(i) = VERDICT_KINDS.iter().position(|k| *k == label) {
            self.verdicts[i].inc();
        }
    }

    /// Count one protocol error by kind (must be one of [`ERROR_KINDS`]).
    pub fn count_error(&self, kind: &str) {
        if let Some(i) = ERROR_KINDS.iter().position(|k| *k == kind) {
            self.errors[i].inc();
        }
    }

    /// Requests answered across all commands (the daemon's STATS line).
    pub fn requests_total(&self) -> u64 {
        self.requests.iter().map(|c| c.get()).sum()
    }

    /// Verdicts returned across all kinds.
    pub fn verdicts_total(&self) -> u64 {
        self.verdicts.iter().map(|c| c.get()).sum()
    }

    /// Render the full Prometheus text exposition, closed by the
    /// hand-rendered `efd_catalog_info` family (its `version` label
    /// changes on hot swap, which the registry's fixed series can't).
    pub fn render(&self) -> String {
        let mut out = self.registry.render();
        let version = self.version();
        out.push_str("# HELP efd_catalog_info Served catalog artifact version.\n");
        out.push_str("# TYPE efd_catalog_info gauge\n");
        out.push_str(&format!(
            "efd_catalog_info{{version=\"{}\"}} 1\n",
            version.as_deref().unwrap_or("-")
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_feed_the_exposition() {
        let m = DaemonMetrics::new();
        m.count_request(Command::Recognize);
        m.count_request(Command::Recognize);
        m.count_request(Command::Ping);
        m.count_verdict("recognized");
        m.count_error("torn");
        m.queue_depth.set(2);
        m.request_duration.observe(0.0001);
        assert_eq!(m.requests_total(), 3);
        let text = m.render();
        for needle in [
            "efd_requests_total{command=\"recognize\"} 2",
            "efd_requests_total{command=\"ping\"} 1",
            "efd_verdicts_total{verdict=\"recognized\"} 1",
            "efd_protocol_errors_total{kind=\"torn\"} 1",
            "efd_queue_depth 2",
            "efd_request_duration_seconds_count 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn unknown_labels_are_ignored_not_panics() {
        let m = DaemonMetrics::new();
        m.count_verdict("confident"); // future verdict kind
        m.count_error("cosmic-ray");
        assert_eq!(m.verdicts_total(), 0);
    }
}
