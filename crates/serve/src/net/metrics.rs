//! The daemon's metric surface: every instrument the server touches,
//! pre-registered at start so the hot path is pure atomics (no registry
//! lock, no name lookup per request).
//!
//! Exported families (all documented with example queries in
//! `docs/METRICS.md`):
//!
//! * `efd_requests_total{command}` — requests answered, per command.
//! * `efd_verdicts_total{verdict}` — recognition verdicts returned.
//! * `efd_request_duration_seconds` — end-to-end request latency.
//! * `efd_stream_time_to_first_verdict_seconds` — stream open → first
//!   verdict.
//! * `efd_queue_depth` — accepted connections awaiting a worker.
//! * `efd_active_connections` — connections currently on a worker.
//! * `efd_connections_total` — connections accepted since start.
//! * `efd_protocol_errors_total{kind}` — frame/grammar violations.
//! * `efd_snapshot_swaps_total` / `efd_snapshot_generation` — hot-swap
//!   republications and the current generation.
//! * `efd_scrapes_total` — `/metrics` scrapes served.

use std::sync::Arc;

use efd_telemetry::prom::{Counter, Gauge, Histogram, Registry};

use super::protocol::{Command, COMMANDS};

/// Latency buckets for `efd_request_duration_seconds`: 25 µs … 1 s,
/// roughly ×2–×2.5 steps — tight enough at the bottom to resolve the
/// ~10 µs dictionary hit from syscall overhead, wide enough at the top
/// to catch a stalled worker.
pub const DURATION_BUCKETS: [f64; 12] = [
    25e-6, 50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.25, 1.0,
];

/// Buckets for `efd_stream_time_to_first_verdict_seconds`: a stream's
/// first verdict lands when its fingerprint window closes, so this is
/// seconds-to-minutes territory (the paper's "within the first two
/// minutes"), not microseconds.
pub const TTFV_BUCKETS: [f64; 9] = [0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 150.0];

/// Protocol-error kinds, in registration order (`kind` label values).
pub const ERROR_KINDS: [&str; 8] = [
    "torn",
    "oversized",
    "empty",
    "malformed",
    "unknown-metric",
    "bad-state",
    "read-only",
    "idle-timeout",
];

/// Verdict label values, in registration order.
pub const VERDICT_KINDS: [&str; 3] = ["recognized", "ambiguous", "unknown"];

/// All daemon instruments, handle-cached over one [`Registry`].
#[derive(Debug)]
pub struct DaemonMetrics {
    registry: Registry,
    requests: [Arc<Counter>; COMMANDS.len()],
    verdicts: [Arc<Counter>; VERDICT_KINDS.len()],
    errors: [Arc<Counter>; ERROR_KINDS.len()],
    /// End-to-end request latency histogram.
    pub request_duration: Arc<Histogram>,
    /// Stream open → first verdict latency histogram.
    pub time_to_first_verdict: Arc<Histogram>,
    /// Connections accepted but not yet claimed by a worker.
    pub queue_depth: Arc<Gauge>,
    /// Connections currently being served.
    pub active_connections: Arc<Gauge>,
    /// Connections accepted since daemon start.
    pub connections_total: Arc<Counter>,
    /// Engine republications since start (initial publish excluded).
    pub swaps_total: Arc<Counter>,
    /// Current engine generation (starts at 1).
    pub generation: Arc<Gauge>,
    /// `/metrics` scrapes served.
    pub scrapes_total: Arc<Counter>,
}

impl Default for DaemonMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl DaemonMetrics {
    /// Register every family and cache the instrument handles.
    pub fn new() -> Self {
        let registry = Registry::new();
        let requests = COMMANDS.map(|c| {
            registry.counter(
                "efd_requests_total",
                "Requests answered, by protocol command.",
                &[("command", c.name())],
            )
        });
        let verdicts = VERDICT_KINDS.map(|v| {
            registry.counter(
                "efd_verdicts_total",
                "Recognition verdicts returned.",
                &[("verdict", v)],
            )
        });
        let errors = ERROR_KINDS.map(|k| {
            registry.counter(
                "efd_protocol_errors_total",
                "Protocol violations and dropped connections, by kind.",
                &[("kind", k)],
            )
        });
        let request_duration = registry.histogram(
            "efd_request_duration_seconds",
            "End-to-end request latency (frame decoded to response flushed).",
            &[],
            &DURATION_BUCKETS,
        );
        let time_to_first_verdict = registry.histogram(
            "efd_stream_time_to_first_verdict_seconds",
            "Stream open to first verdict (the paper's during-execution latency).",
            &[],
            &TTFV_BUCKETS,
        );
        let queue_depth = registry.gauge(
            "efd_queue_depth",
            "Accepted connections awaiting a worker.",
            &[],
        );
        let active_connections = registry.gauge(
            "efd_active_connections",
            "Connections currently being served.",
            &[],
        );
        let connections_total = registry.counter(
            "efd_connections_total",
            "Connections accepted since daemon start.",
            &[],
        );
        let swaps_total = registry.counter(
            "efd_snapshot_swaps_total",
            "Engine hot-swap republications since start.",
            &[],
        );
        let generation = registry.gauge(
            "efd_snapshot_generation",
            "Current published engine generation.",
            &[],
        );
        let scrapes_total = registry.counter(
            "efd_scrapes_total",
            "Prometheus /metrics scrapes served.",
            &[],
        );
        DaemonMetrics {
            registry,
            requests,
            verdicts,
            errors,
            request_duration,
            time_to_first_verdict,
            queue_depth,
            active_connections,
            connections_total,
            swaps_total,
            generation,
            scrapes_total,
        }
    }

    /// Count one request of the given command.
    pub fn count_request(&self, c: Command) {
        self.requests[c.index()].inc();
    }

    /// Count one verdict by its label (`recognized`/`ambiguous`/`unknown`).
    pub fn count_verdict(&self, label: &str) {
        if let Some(i) = VERDICT_KINDS.iter().position(|k| *k == label) {
            self.verdicts[i].inc();
        }
    }

    /// Count one protocol error by kind (must be one of [`ERROR_KINDS`]).
    pub fn count_error(&self, kind: &str) {
        if let Some(i) = ERROR_KINDS.iter().position(|k| *k == kind) {
            self.errors[i].inc();
        }
    }

    /// Requests answered across all commands (the daemon's STATS line).
    pub fn requests_total(&self) -> u64 {
        self.requests.iter().map(|c| c.get()).sum()
    }

    /// Verdicts returned across all kinds.
    pub fn verdicts_total(&self) -> u64 {
        self.verdicts.iter().map(|c| c.get()).sum()
    }

    /// Render the full Prometheus text exposition.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_feed_the_exposition() {
        let m = DaemonMetrics::new();
        m.count_request(Command::Recognize);
        m.count_request(Command::Recognize);
        m.count_request(Command::Ping);
        m.count_verdict("recognized");
        m.count_error("torn");
        m.queue_depth.set(2);
        m.request_duration.observe(0.0001);
        assert_eq!(m.requests_total(), 3);
        let text = m.render();
        for needle in [
            "efd_requests_total{command=\"recognize\"} 2",
            "efd_requests_total{command=\"ping\"} 1",
            "efd_verdicts_total{verdict=\"recognized\"} 1",
            "efd_protocol_errors_total{kind=\"torn\"} 1",
            "efd_queue_depth 2",
            "efd_request_duration_seconds_count 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn unknown_labels_are_ignored_not_panics() {
        let m = DaemonMetrics::new();
        m.count_verdict("confident"); // future verdict kind
        m.count_error("cosmic-ray");
        assert_eq!(m.verdicts_total(), 0);
    }
}
