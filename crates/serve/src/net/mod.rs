//! Network serving: the socket-facing layer over the engine API.
//!
//! * [`protocol`] — length-prefixed frame codec and the line grammar
//!   (`RECOGNIZE`, `STREAM`/`PUSH`/`FINISH`, `LEARN`, `SWAP`, ...).
//! * [`server`] — the daemon: acceptor + fixed worker pool, hot
//!   snapshot swap by `Arc` republication, idle-timeout discipline,
//!   and a same-port HTTP `/metrics` + `/healthz` endpoint.
//! * [`metrics`] — the Prometheus instrument set the daemon exports.
//! * [`drift`] — the sliding-window drift monitor judging live verdict
//!   rates against the served catalog version's published baseline.
//! * [`loadgen`] — the pipelined/paced client that produces
//!   `BENCH_8.json`.
//!
//! Everything here is `std`-only: `TcpListener`, threads, atomics. The
//! protocol is deliberately small enough to speak from a test with raw
//! socket writes, which is how the robustness suite drives torn and
//! malformed frames.

pub mod drift;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use drift::{DriftBaseline, DriftConfig, DriftMonitor, DriftSnapshot, DriftState};
pub use metrics::DaemonMetrics;
pub use protocol::{FrameError, FrameReader, Request, MAX_FRAME};
pub use server::{load_engine, BackendKind, Engine, ServeSummary, Server, ServerConfig};
