//! Live drift detection: is traffic departing from the published
//! version's baseline?
//!
//! When a dictionary version is published (`efd catalog publish`), its
//! abstention **baseline** — the unknown/ambiguous rates measured
//! against held-out queries at publish time — is recorded in the catalog
//! index and travels with the artifact into the daemon. The
//! [`DriftMonitor`] then watches *live* verdicts in a sliding window: an
//! unknown or ambiguous rate sitting more than [`DriftConfig::margin`]
//! above baseline means the workload population has moved — new
//! applications, new input sizes, new phase behaviour — and a re-learned
//! dictionary version is due. That is exactly the operational signal the
//! scenario suite's concept-drift arm (`efd_workload::scenario`)
//! simulates, and the serve-layer test injects.
//!
//! ## Alarm semantics
//!
//! * **Warming** — fewer than [`DriftConfig::min_samples`] verdicts in
//!   the window; no judgement yet (a freshly swapped version always
//!   starts here, so a swap *clears* an alarm until fresh evidence
//!   accumulates against the new version's baseline).
//! * **Ok** — warmed, and both live rates are within `baseline + margin`.
//! * **Alarm** — warmed, and either rate exceeds its bound.
//!
//! Without a baseline (an artifact published `--baseline none`, or a
//! plain `--load` outside the catalog) the monitor never alarms — there
//! is nothing sound to compare to.
//!
//! The monitor is a fixed ring of verdict classes under a `Mutex`; a
//! few dozen nanoseconds per verdict against a mutex held for a handful
//! of instructions, which is noise next to a socket round trip. State
//! transitions are returned from [`DriftMonitor::record`] so the server
//! can log them exactly once per edge, not per request.

use std::sync::Mutex;

/// The published version's reference rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftBaseline {
    /// Fraction of baseline queries answered `Unknown`.
    pub unknown_rate: f64,
    /// Fraction of baseline queries answered `Ambiguous`.
    pub ambiguous_rate: f64,
}

/// Monitor tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Sliding-window size in verdicts.
    pub window: usize,
    /// Verdicts required before the monitor judges at all.
    pub min_samples: usize,
    /// How far above baseline a live rate may sit before alarm.
    pub margin: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            window: 512,
            min_samples: 128,
            margin: 0.15,
        }
    }
}

/// Monitor judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftState {
    /// Not enough window samples yet.
    Warming,
    /// Live rates within bounds.
    Ok,
    /// A live rate exceeds baseline + margin.
    Alarm,
}

impl DriftState {
    /// Lowercase name for status lines and metrics.
    pub fn name(self) -> &'static str {
        match self {
            DriftState::Warming => "warming",
            DriftState::Ok => "ok",
            DriftState::Alarm => "alarm",
        }
    }
}

/// A point-in-time reading of the monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSnapshot {
    /// Current judgement.
    pub state: DriftState,
    /// Verdicts currently in the window.
    pub samples: usize,
    /// Live unknown rate over the window (0 when empty).
    pub unknown_rate: f64,
    /// Live ambiguous rate over the window (0 when empty).
    pub ambiguous_rate: f64,
    /// The baseline being judged against, if any.
    pub baseline: Option<DriftBaseline>,
}

/// Verdict classes the window tracks (the tie/`Ambiguous` rate is the
/// paper's tie-array case; `Recognized` is everything else).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Recognized,
    Ambiguous,
    Unknown,
}

struct Window {
    ring: Vec<Class>,
    /// Next write position.
    head: usize,
    /// Entries filled (saturates at ring capacity).
    filled: usize,
    unknown: usize,
    ambiguous: usize,
    baseline: Option<DriftBaseline>,
    /// Last judged state, for edge detection.
    last: DriftState,
}

/// Sliding-window drift monitor (see module docs).
pub struct DriftMonitor {
    cfg: DriftConfig,
    inner: Mutex<Window>,
}

impl std::fmt::Debug for DriftMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("DriftMonitor")
            .field("cfg", &self.cfg)
            .field("snapshot", &snap)
            .finish()
    }
}

impl DriftMonitor {
    /// A monitor with no baseline yet (never alarms until
    /// [`DriftMonitor::rebaseline`] installs one).
    pub fn new(cfg: DriftConfig) -> Self {
        let window = cfg.window.max(1);
        Self {
            cfg: DriftConfig { window, ..cfg },
            inner: Mutex::new(Window {
                ring: Vec::with_capacity(window),
                head: 0,
                filled: 0,
                unknown: 0,
                ambiguous: 0,
                baseline: None,
                last: DriftState::Warming,
            }),
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.cfg
    }

    /// Install a new baseline and clear the window — called on every
    /// publication, so the new version is judged only by traffic it
    /// answered itself.
    pub fn rebaseline(&self, baseline: Option<DriftBaseline>) {
        let mut w = self.inner.lock().expect("drift lock");
        w.ring.clear();
        w.head = 0;
        w.filled = 0;
        w.unknown = 0;
        w.ambiguous = 0;
        w.baseline = baseline;
        w.last = DriftState::Warming;
    }

    /// Record one verdict by its stable label (`recognized` /
    /// `ambiguous` / `unknown`). Returns `Some((from, to))` when this
    /// verdict changed the judgement — the server logs exactly those
    /// edges.
    pub fn record(&self, verdict_label: &str) -> Option<(DriftState, DriftState)> {
        let class = match verdict_label {
            "unknown" => Class::Unknown,
            "ambiguous" => Class::Ambiguous,
            _ => Class::Recognized,
        };
        let mut w = self.inner.lock().expect("drift lock");
        if w.ring.len() < self.cfg.window {
            w.ring.push(class);
        } else {
            let head = w.head;
            match w.ring[head] {
                Class::Unknown => w.unknown -= 1,
                Class::Ambiguous => w.ambiguous -= 1,
                Class::Recognized => {}
            }
            w.ring[head] = class;
        }
        w.head = (w.head + 1) % self.cfg.window;
        w.filled = (w.filled + 1).min(self.cfg.window);
        match class {
            Class::Unknown => w.unknown += 1,
            Class::Ambiguous => w.ambiguous += 1,
            Class::Recognized => {}
        }
        let state = self.judge(&w);
        if state != w.last {
            let from = w.last;
            w.last = state;
            Some((from, state))
        } else {
            None
        }
    }

    fn judge(&self, w: &Window) -> DriftState {
        let Some(b) = w.baseline else {
            return if w.filled < self.cfg.min_samples {
                DriftState::Warming
            } else {
                DriftState::Ok
            };
        };
        if w.filled < self.cfg.min_samples {
            return DriftState::Warming;
        }
        let n = w.filled as f64;
        let unknown = w.unknown as f64 / n;
        let ambiguous = w.ambiguous as f64 / n;
        if unknown > b.unknown_rate + self.cfg.margin
            || ambiguous > b.ambiguous_rate + self.cfg.margin
        {
            DriftState::Alarm
        } else {
            DriftState::Ok
        }
    }

    /// Current judgement and window rates.
    pub fn snapshot(&self) -> DriftSnapshot {
        let w = self.inner.lock().expect("drift lock");
        let n = w.filled.max(1) as f64;
        DriftSnapshot {
            state: self.judge(&w),
            samples: w.filled,
            unknown_rate: if w.filled == 0 { 0.0 } else { w.unknown as f64 / n },
            ambiguous_rate: if w.filled == 0 { 0.0 } else { w.ambiguous as f64 / n },
            baseline: w.baseline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: usize, min_samples: usize, margin: f64) -> DriftConfig {
        DriftConfig {
            window,
            min_samples,
            margin,
        }
    }

    #[test]
    fn warms_then_alarms_on_unknown_surge() {
        let m = DriftMonitor::new(cfg(8, 4, 0.1));
        m.rebaseline(Some(DriftBaseline {
            unknown_rate: 0.0,
            ambiguous_rate: 0.0,
        }));
        assert_eq!(m.snapshot().state, DriftState::Warming);
        for _ in 0..4 {
            m.record("recognized");
        }
        assert_eq!(m.snapshot().state, DriftState::Ok);
        // Flood unknowns; the edge fires exactly once.
        let mut edges = 0;
        for _ in 0..8 {
            if let Some((from, to)) = m.record("unknown") {
                assert_eq!((from, to), (DriftState::Ok, DriftState::Alarm));
                edges += 1;
            }
        }
        assert_eq!(edges, 1, "one log line per edge");
        let snap = m.snapshot();
        assert_eq!(snap.state, DriftState::Alarm);
        assert_eq!(snap.unknown_rate, 1.0, "window fully displaced");
    }

    #[test]
    fn window_slides_and_recovers() {
        let m = DriftMonitor::new(cfg(4, 2, 0.1));
        m.rebaseline(Some(DriftBaseline {
            unknown_rate: 0.0,
            ambiguous_rate: 0.0,
        }));
        for _ in 0..4 {
            m.record("unknown");
        }
        assert_eq!(m.snapshot().state, DriftState::Alarm);
        // Healthy traffic displaces the bad window.
        let mut cleared = false;
        for _ in 0..4 {
            if let Some((_, to)) = m.record("recognized") {
                cleared = to == DriftState::Ok;
            }
        }
        assert!(cleared);
        assert_eq!(m.snapshot().state, DriftState::Ok);
        assert_eq!(m.snapshot().unknown_rate, 0.0);
    }

    #[test]
    fn no_baseline_never_alarms() {
        let m = DriftMonitor::new(cfg(4, 2, 0.1));
        for _ in 0..16 {
            m.record("unknown");
        }
        assert_eq!(m.snapshot().state, DriftState::Ok, "nothing to compare against");
    }

    #[test]
    fn rebaseline_clears_the_alarm() {
        let m = DriftMonitor::new(cfg(4, 2, 0.1));
        m.rebaseline(Some(DriftBaseline {
            unknown_rate: 0.0,
            ambiguous_rate: 0.0,
        }));
        for _ in 0..4 {
            m.record("unknown");
        }
        assert_eq!(m.snapshot().state, DriftState::Alarm);
        // A swap to a re-learned version rebaselines: alarm clears into
        // warming until the new version earns a judgement.
        m.rebaseline(Some(DriftBaseline {
            unknown_rate: 0.1,
            ambiguous_rate: 0.1,
        }));
        let snap = m.snapshot();
        assert_eq!(snap.state, DriftState::Warming);
        assert_eq!(snap.samples, 0);
    }

    #[test]
    fn ambiguous_rate_alarms_independently() {
        let m = DriftMonitor::new(cfg(8, 4, 0.05));
        m.rebaseline(Some(DriftBaseline {
            unknown_rate: 0.5,
            ambiguous_rate: 0.0,
        }));
        for _ in 0..8 {
            m.record("ambiguous");
        }
        assert_eq!(m.snapshot().state, DriftState::Alarm);
        assert_eq!(m.snapshot().ambiguous_rate, 1.0);
    }
}
