//! Closed/paced-loop load generator for the recognition daemon.
//!
//! Each connection thread keeps up to `pipeline` requests in flight
//! (responses are matched FIFO — the protocol answers in order on a
//! connection), which removes the per-request RTT bound that would
//! otherwise cap a closed loop at `connections / RTT` regardless of
//! server capacity. With `target_qps` set, sends are paced on a fixed
//! schedule split evenly across connections and the measured latency
//! includes any queueing the daemon builds up at that rate — the
//! number `BENCH_8.json` reports.

use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use super::protocol::{write_frame, FrameError, FrameReader};

/// What to drive at the daemon.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `127.0.0.1:7070`.
    pub addr: String,
    /// Concurrent connections (threads).
    pub connections: usize,
    /// Wall-clock send window.
    pub duration: Duration,
    /// Total target request rate across all connections; `None` drives
    /// as fast as the pipeline allows.
    pub target_qps: Option<u64>,
    /// Max in-flight requests per connection.
    pub pipeline: usize,
    /// Request payloads, cycled round-robin (each thread starts at a
    /// different offset so the mix interleaves).
    pub payloads: Vec<String>,
}

impl LoadgenConfig {
    /// Defaults: 4 connections, 5 s, unpaced, pipeline 32, `PING`s.
    pub fn new(addr: impl Into<String>) -> Self {
        LoadgenConfig {
            addr: addr.into(),
            connections: 4,
            duration: Duration::from_secs(5),
            target_qps: None,
            pipeline: 32,
            payloads: vec!["PING".to_string()],
        }
    }
}

/// Latency percentiles in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Worst observed.
    pub max: f64,
}

/// Aggregate result of one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests written.
    pub sent: u64,
    /// Responses read.
    pub received: u64,
    /// `ERR` responses plus requests left unanswered at drain end.
    pub errors: u64,
    /// Verdict mix among `OK`/`VERDICT` responses:
    /// `[recognized, ambiguous, unknown]`.
    pub verdicts: [u64; 3],
    /// The configured send window.
    pub duration: Duration,
    /// `received / duration` — sustained verdicts per second.
    pub qps: f64,
    /// Response latency percentiles (send → response read).
    pub latency: Percentiles,
}

#[derive(Default)]
struct ConnStats {
    sent: u64,
    received: u64,
    errors: u64,
    verdicts: [u64; 3],
    latency_s: Vec<f64>,
}

/// Run the load, blocking until every connection drains or times out.
/// Errors if no connection could be established or no response ever
/// arrived (the CI smoke treats that as daemon-down).
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if cfg.payloads.is_empty() {
        return Err("loadgen needs at least one payload".into());
    }
    let conns = cfg.connections.max(1);
    let interval = cfg
        .target_qps
        .map(|q| Duration::from_secs_f64(conns as f64 / (q.max(1)) as f64));
    let deadline = Instant::now() + cfg.duration;
    let stats: Vec<Result<ConnStats, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|i| {
                let cfg = &*cfg;
                scope.spawn(move || drive(cfg, i, interval, deadline))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen thread")).collect()
    });

    let mut total = ConnStats::default();
    let mut first_err = None;
    for s in stats {
        match s {
            Ok(s) => {
                total.sent += s.sent;
                total.received += s.received;
                total.errors += s.errors;
                for k in 0..3 {
                    total.verdicts[k] += s.verdicts[k];
                }
                total.latency_s.extend(s.latency_s);
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if total.received == 0 {
        return Err(first_err
            .unwrap_or_else(|| format!("no responses from {}", cfg.addr)));
    }
    total
        .latency_s
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |q: f64| -> f64 {
        let n = total.latency_s.len();
        let idx = ((q * (n - 1) as f64).round() as usize).min(n - 1);
        total.latency_s[idx]
    };
    Ok(LoadgenReport {
        sent: total.sent,
        received: total.received,
        errors: total.errors,
        verdicts: total.verdicts,
        duration: cfg.duration,
        qps: total.received as f64 / cfg.duration.as_secs_f64().max(1e-9),
        latency: Percentiles {
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            p999: pct(0.999),
            max: *total.latency_s.last().expect("nonempty"),
        },
    })
}

fn drive(
    cfg: &LoadgenConfig,
    index: usize,
    interval: Option<Duration>,
    deadline: Instant,
) -> Result<ConnStats, String> {
    let mut stream =
        TcpStream::connect(&cfg.addr).map_err(|e| format!("connect {}: {e}", cfg.addr))?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|e| e.to_string())?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = FrameReader::new();
    let mut st = ConnStats::default();
    let mut inflight: VecDeque<Instant> = VecDeque::new();
    let pipeline = cfg.pipeline.max(1);
    let mut next_send = Instant::now();
    let mut i = index; // offset so threads interleave the payload mix

    'run: loop {
        // Fill the send window (respecting pacing if configured).
        let mut wrote = false;
        while inflight.len() < pipeline {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if let Some(iv) = interval {
                if now < next_send {
                    break;
                }
                next_send += iv;
            }
            let payload = &cfg.payloads[i % cfg.payloads.len()];
            i += 1;
            if write_frame(&mut writer, payload.as_bytes()).is_err() {
                break 'run;
            }
            st.sent += 1;
            inflight.push_back(Instant::now());
            wrote = true;
        }
        if wrote && writer.flush().is_err() {
            break 'run;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if inflight.is_empty() {
            // Paced and not due yet: sleep out the gap.
            let until = interval.map(|_| next_send).unwrap_or(deadline).min(deadline);
            std::thread::sleep(until.saturating_duration_since(now).min(Duration::from_millis(5)));
            continue;
        }
        match reader.read_frame(&mut stream) {
            Ok(Some(payload)) => record(&mut st, &mut inflight, payload),
            Ok(None) => break,                    // daemon closed
            Err(FrameError::Timeout) => continue, // keep pacing/deadline checks
            Err(_) => break,
        }
    }

    // Drain what is still in flight (bounded grace).
    let grace = Instant::now() + Duration::from_secs(2);
    while !inflight.is_empty() && Instant::now() < grace {
        match reader.read_frame(&mut stream) {
            Ok(Some(payload)) => record(&mut st, &mut inflight, payload),
            Ok(None) => break,
            Err(FrameError::Timeout) => continue,
            Err(_) => break,
        }
    }
    st.errors += inflight.len() as u64; // unanswered = dropped
    Ok(st)
}

fn record(st: &mut ConnStats, inflight: &mut VecDeque<Instant>, payload: &[u8]) {
    let Some(sent_at) = inflight.pop_front() else {
        st.errors += 1; // response with no matching request
        return;
    };
    st.received += 1;
    st.latency_s.push(sent_at.elapsed().as_secs_f64());
    let text = String::from_utf8_lossy(payload);
    let mut toks = text.split_ascii_whitespace();
    match toks.next() {
        Some("OK") | Some("VERDICT") => {
            match toks.nth(3) {
                Some("recognized") => st.verdicts[0] += 1,
                Some("ambiguous") => st.verdicts[1] += 1,
                _ => st.verdicts[2] += 1,
            }
        }
        Some("ERR") => st.errors += 1,
        _ => {} // PONG/ACK/STATS/...: counted as received only
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_indexing_is_sane() {
        // Exercise the report math through a fake single-conn result by
        // driving the private helpers directly.
        let mut st = ConnStats::default();
        let mut inflight = VecDeque::new();
        for _ in 0..4 {
            inflight.push_back(Instant::now());
        }
        record(&mut st, &mut inflight, b"OK 1 2 2 recognized ft");
        record(&mut st, &mut inflight, b"OK 1 0 2 unknown");
        record(&mut st, &mut inflight, b"VERDICT 2 2 2 ambiguous bt,sp");
        record(&mut st, &mut inflight, b"ERR malformed nope");
        assert_eq!(st.received, 4);
        assert_eq!(st.verdicts, [1, 1, 1]);
        assert_eq!(st.errors, 1);
        assert_eq!(st.latency_s.len(), 4);
        // Unmatched response counts as an error, not a panic.
        record(&mut st, &mut inflight, b"PONG");
        assert_eq!(st.errors, 2);
    }
}
