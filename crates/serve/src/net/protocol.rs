//! Wire protocol: length-prefixed frames carrying a UTF-8 line grammar.
//!
//! A frame is a little-endian `u32` payload length followed by exactly
//! that many bytes of UTF-8 text. The prefix is bounded by
//! [`MAX_FRAME`] (1 MiB) and must be nonzero, which makes the framing
//! self-validating: a client that writes garbage almost always produces
//! an oversized prefix and is rejected with a structured error instead
//! of making the server buffer gigabytes. The bound also disambiguates
//! plain-HTTP probes — the first four bytes of `GET /metrics HTTP/1.1`
//! decode to the little-endian integer `0x2054_4547`, far above
//! [`MAX_FRAME`], so one listening port can serve both the frame
//! protocol and a `/metrics` scrape endpoint without a reserved byte.
//!
//! Payloads are single lines of space-separated tokens:
//!
//! ```text
//! PING
//! RECOGNIZE <metric> <start> <end> <mean0> [mean1 ...]
//! STREAM <metric> <nodes> <start> <end>
//! PUSH <node> <t> <value>
//! FINISH
//! LEARN <app> <input> <metric> <start> <end> <mean0> [mean1 ...]
//! SWAP [<path>]
//! STATS
//! SHUTDOWN
//! ```
//!
//! and responses mirror the shape (`<gen>` is the snapshot generation
//! the answer was computed against — the hot-swap tests pivot on it):
//!
//! ```text
//! PONG
//! OK <gen> <matched> <total> recognized <app> | ambiguous <a,b,..> | unknown
//! OPENED <gen> <horizon_s>
//! ACK <collected>
//! VERDICT <gen> <matched> <total> <same tail as OK>
//! LEARNED <keys>
//! SWAPPED <gen> <keys>
//! STATS gen=<g> keys=<k> backend=<name> requests=<n>
//! BYE
//! ERR <kind> <message>
//! ```
//!
//! Token grammar restriction: metric, application, and input names must
//! not contain whitespace (true of every catalog metric and of the
//! synthetic workload labels). Ambiguous verdict apps are joined with
//! `,` and therefore must not contain commas either.

use std::io::{self, Read, Write};

use efd_core::{Recognition, Verdict};

/// Hard ceiling on a frame payload (1 MiB). A `RECOGNIZE` for 4096
/// nodes is ~100 KB, so real traffic sits far below; anything above is
/// a protocol violation, not a big request.
pub const MAX_FRAME: u32 = 1 << 20;

/// Everything that can go wrong while reading one frame.
#[derive(Debug)]
pub enum FrameError {
    /// The read timed out (`WouldBlock`/`TimedOut`). Reader state is
    /// preserved — call [`FrameReader::read_frame`] again to resume.
    /// [`FrameReader::mid_frame`] tells whether a partial frame is
    /// pending (a slow-loris indicator).
    Timeout,
    /// The peer closed the connection in the middle of a frame (after a
    /// partial length prefix or a partial payload).
    Torn,
    /// The length prefix exceeds [`MAX_FRAME`]; the value is carried
    /// for diagnostics.
    Oversized(u32),
    /// A zero-length frame; the grammar has no empty request.
    Empty,
    /// Any other I/O error (reset, broken pipe, ...).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Timeout => write!(f, "read timed out"),
            FrameError::Torn => write!(f, "connection closed mid-frame"),
            FrameError::Oversized(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte limit")
            }
            FrameError::Empty => write!(f, "zero-length frame"),
            FrameError::Io(e) => write!(f, "{e}"),
        }
    }
}

/// A resumable frame decoder for one connection.
///
/// Read timeouts are how the server implements idle accounting (each
/// worker reads with a short timeout and tallies quiet ticks), so the
/// decoder must survive a timeout at *any* byte boundary — including
/// inside the 4-byte prefix — and continue exactly where it stopped.
/// All partial state lives here, not on the stack of a blocked read.
#[derive(Debug)]
pub struct FrameReader {
    prefix: [u8; 4],
    prefix_got: usize,
    payload: Vec<u8>,
    payload_got: usize,
    /// `Some(len)` once the prefix is complete and validated.
    expecting: Option<usize>,
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameReader {
    /// A fresh decoder positioned at a frame boundary.
    pub fn new() -> Self {
        FrameReader {
            prefix: [0; 4],
            prefix_got: 0,
            payload: Vec::new(),
            payload_got: 0,
            expecting: None,
        }
    }

    /// True if a frame is partially read (prefix or payload bytes seen,
    /// frame not complete).
    pub fn mid_frame(&self) -> bool {
        self.prefix_got > 0 || self.expecting.is_some()
    }

    /// Read until one complete frame, EOF at a frame boundary, or an
    /// error. `Ok(Some(payload))` borrows this reader and is valid
    /// until the next call; `Ok(None)` is a clean close.
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<Option<&[u8]>, FrameError> {
        while self.expecting.is_none() {
            match r.read(&mut self.prefix[self.prefix_got..]) {
                Ok(0) => {
                    return if self.prefix_got == 0 {
                        Ok(None)
                    } else {
                        Err(FrameError::Torn)
                    };
                }
                Ok(n) => {
                    self.prefix_got += n;
                    if self.prefix_got == 4 {
                        let len = u32::from_le_bytes(self.prefix);
                        if len > MAX_FRAME {
                            return Err(FrameError::Oversized(len));
                        }
                        if len == 0 {
                            return Err(FrameError::Empty);
                        }
                        self.expecting = Some(len as usize);
                        self.payload.resize(len as usize, 0);
                        self.payload_got = 0;
                    }
                }
                Err(e) => return Err(map_io(e)),
            }
        }
        let len = self.expecting.expect("prefix complete");
        while self.payload_got < len {
            match r.read(&mut self.payload[self.payload_got..len]) {
                Ok(0) => return Err(FrameError::Torn),
                Ok(n) => self.payload_got += n,
                Err(e) => return Err(map_io(e)),
            }
        }
        // Frame complete: reset to the next boundary before handing the
        // payload out (the buffer itself survives until the next call).
        self.prefix_got = 0;
        self.expecting = None;
        Ok(Some(&self.payload[..len]))
    }
}

fn map_io(e: io::Error) -> FrameError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FrameError::Timeout,
        io::ErrorKind::Interrupted => FrameError::Timeout,
        _ => FrameError::Io(e),
    }
}

/// Write one frame: length prefix + payload, no flush (callers batch
/// behind a `BufWriter` and flush per response).
///
/// # Panics
///
/// Panics if `payload` is empty or exceeds [`MAX_FRAME`] — both are
/// caller bugs, not runtime conditions.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(!payload.is_empty(), "empty frame");
    assert!(payload.len() <= MAX_FRAME as usize, "oversized frame");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// The protocol command of a request, used for per-command metrics
/// labels. Declared separately from [`Request`] so counters can be
/// pre-registered for every command at daemon start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `PING`
    Ping,
    /// `RECOGNIZE`
    Recognize,
    /// `STREAM`
    Stream,
    /// `PUSH`
    Push,
    /// `FINISH`
    Finish,
    /// `LEARN`
    Learn,
    /// `SWAP`
    Swap,
    /// `STATS`
    Stats,
    /// `STATUS`
    Status,
    /// `SHUTDOWN`
    Shutdown,
}

/// Every command, in a fixed order (metric registration order).
pub const COMMANDS: [Command; 10] = [
    Command::Ping,
    Command::Recognize,
    Command::Stream,
    Command::Push,
    Command::Finish,
    Command::Learn,
    Command::Swap,
    Command::Stats,
    Command::Status,
    Command::Shutdown,
];

impl Command {
    /// Lowercase label value for `efd_requests_total{command=...}`.
    pub fn name(self) -> &'static str {
        match self {
            Command::Ping => "ping",
            Command::Recognize => "recognize",
            Command::Stream => "stream",
            Command::Push => "push",
            Command::Finish => "finish",
            Command::Learn => "learn",
            Command::Swap => "swap",
            Command::Stats => "stats",
            Command::Status => "status",
            Command::Shutdown => "shutdown",
        }
    }

    /// Index into [`COMMANDS`]-ordered metric arrays.
    pub fn index(self) -> usize {
        COMMANDS.iter().position(|c| *c == self).expect("in COMMANDS")
    }
}

/// A parsed request. Metric names stay as strings here — resolution
/// against the catalog happens in the server, where an unknown name
/// becomes a structured `ERR unknown-metric`.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One-shot recognition of per-node window means.
    Recognize {
        /// Catalog metric name.
        metric: String,
        /// Window start (seconds).
        start: u32,
        /// Window end (seconds, exclusive).
        end: u32,
        /// One window mean per node.
        means: Vec<f64>,
    },
    /// Open this connection's streaming session.
    Stream {
        /// Catalog metric name.
        metric: String,
        /// Number of nodes streaming samples.
        nodes: u16,
        /// Fingerprint window start.
        start: u32,
        /// Fingerprint window end.
        end: u32,
    },
    /// Feed one raw 1 Hz sample into the open session.
    Push {
        /// Node index within the declared stream.
        node: u16,
        /// Sample timestamp (seconds since job start).
        t: u32,
        /// Sampled metric value.
        value: f64,
    },
    /// Force a verdict from the open session, flushing open windows.
    Finish,
    /// Write-ahead learn one labeled observation (durable mode only).
    Learn {
        /// Application name.
        app: String,
        /// Input-size label.
        input: String,
        /// Catalog metric name.
        metric: String,
        /// Window start.
        start: u32,
        /// Window end.
        end: u32,
        /// One window mean per node.
        means: Vec<f64>,
    },
    /// Republish the engine from a dictionary file (empty path = the
    /// daemon's `--load` path).
    Swap {
        /// Dictionary path, or empty for the configured reload path.
        path: String,
    },
    /// One-line daemon status.
    Stats,
    /// Catalog version + drift judgement status line.
    Status,
    /// Graceful daemon shutdown.
    Shutdown,
}

impl Request {
    /// The command this request carries (metrics label).
    pub fn command(&self) -> Command {
        match self {
            Request::Ping => Command::Ping,
            Request::Recognize { .. } => Command::Recognize,
            Request::Stream { .. } => Command::Stream,
            Request::Push { .. } => Command::Push,
            Request::Finish => Command::Finish,
            Request::Learn { .. } => Command::Learn,
            Request::Swap { .. } => Command::Swap,
            Request::Stats => Command::Stats,
            Request::Status => Command::Status,
            Request::Shutdown => Command::Shutdown,
        }
    }

    /// Parse one request line. Errors are human-readable fragments for
    /// an `ERR malformed <why>` response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut it = line.split_ascii_whitespace();
        let verb = it.next().ok_or("blank request")?;
        match verb {
            "PING" => end(it, Request::Ping),
            "RECOGNIZE" => {
                let metric = word(&mut it, "metric")?;
                let (start, end) = window(&mut it)?;
                let means = means(it)?;
                Ok(Request::Recognize {
                    metric,
                    start,
                    end,
                    means,
                })
            }
            "STREAM" => {
                let metric = word(&mut it, "metric")?;
                let nodes: u16 = num(&mut it, "nodes")?;
                if nodes == 0 {
                    return Err("STREAM needs at least one node".into());
                }
                let (start, e) = window(&mut it)?;
                end(
                    it,
                    Request::Stream {
                        metric,
                        nodes,
                        start,
                        end: e,
                    },
                )
            }
            "PUSH" => {
                let node: u16 = num(&mut it, "node")?;
                let t: u32 = num(&mut it, "t")?;
                let value: f64 = num(&mut it, "value")?;
                if !value.is_finite() {
                    return Err("PUSH value must be finite".into());
                }
                end(it, Request::Push { node, t, value })
            }
            "FINISH" => end(it, Request::Finish),
            "LEARN" => {
                let app = word(&mut it, "app")?;
                let input = word(&mut it, "input")?;
                let metric = word(&mut it, "metric")?;
                let (start, end) = window(&mut it)?;
                let means = means(it)?;
                Ok(Request::Learn {
                    app,
                    input,
                    metric,
                    start,
                    end,
                    means,
                })
            }
            "SWAP" => {
                let path = it.next().unwrap_or("").to_string();
                end(it, Request::Swap { path })
            }
            "STATS" => end(it, Request::Stats),
            "STATUS" => end(it, Request::Status),
            "SHUTDOWN" => end(it, Request::Shutdown),
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

fn end<'a>(
    mut it: impl Iterator<Item = &'a str>,
    req: Request,
) -> Result<Request, String> {
    match it.next() {
        None => Ok(req),
        Some(extra) => Err(format!("unexpected trailing token {extra:?}")),
    }
}

fn word<'a>(it: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<String, String> {
    it.next()
        .map(str::to_string)
        .ok_or_else(|| format!("missing {what}"))
}

fn num<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<T, String> {
    let tok = it.next().ok_or_else(|| format!("missing {what}"))?;
    tok.parse()
        .map_err(|_| format!("bad {what} {tok:?}"))
}

fn window<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<(u32, u32), String> {
    let start: u32 = num(it, "window start")?;
    let end: u32 = num(it, "window end")?;
    if end <= start {
        return Err(format!("bad window [{start}:{end}] (end must exceed start)"));
    }
    Ok((start, end))
}

fn means<'a>(it: impl Iterator<Item = &'a str>) -> Result<Vec<f64>, String> {
    let mut out = Vec::new();
    for tok in it {
        let v: f64 = tok.parse().map_err(|_| format!("bad mean {tok:?}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite mean {tok:?}"));
        }
        out.push(v);
    }
    if out.is_empty() {
        return Err("need at least one mean".into());
    }
    if out.len() > u16::MAX as usize {
        return Err("too many node means".into());
    }
    Ok(out)
}

/// Render the verdict tail shared by `OK` and `VERDICT` responses. The
/// recognition is normalized first so the ambiguous array is in the
/// deterministic lexicographic order every backend agrees on.
pub fn verdict_tail(rec: &Recognition) -> String {
    match &rec.verdict {
        Verdict::Recognized(app) => format!("recognized {app}"),
        Verdict::Ambiguous(apps) => {
            let mut sorted = apps.clone();
            sorted.sort();
            format!("ambiguous {}", sorted.join(","))
        }
        // `Verdict` is non-exhaustive: future variants degrade to the
        // safeguard bucket rather than a protocol break.
        _ => "unknown".to_string(),
    }
}

/// Stable label value for per-verdict counters: `recognized`,
/// `ambiguous`, or `unknown`.
pub fn verdict_label(rec: &Recognition) -> &'static str {
    match &rec.verdict {
        Verdict::Recognized(_) => "recognized",
        Verdict::Ambiguous(_) => "ambiguous",
        _ => "unknown",
    }
}

/// Render a full `OK`/`VERDICT` response line.
pub fn render_answer(head: &str, gen: u64, rec: &Recognition) -> String {
    format!(
        "{head} {gen} {} {} {}",
        rec.matched_points,
        rec.total_points,
        verdict_tail(rec)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"PING").unwrap();
        write_frame(&mut buf, b"STATS").unwrap();
        let mut r = FrameReader::new();
        let mut cur = std::io::Cursor::new(buf);
        assert_eq!(r.read_frame(&mut cur).unwrap(), Some(&b"PING"[..]));
        assert_eq!(r.read_frame(&mut cur).unwrap(), Some(&b"STATS"[..]));
        assert_eq!(r.read_frame(&mut cur).unwrap(), None, "clean EOF");
    }

    #[test]
    fn torn_prefix_and_payload_are_distinguished_from_clean_eof() {
        // 2 of 4 prefix bytes, then EOF.
        let mut r = FrameReader::new();
        let mut cur = std::io::Cursor::new(vec![4u8, 0]);
        assert!(matches!(r.read_frame(&mut cur), Err(FrameError::Torn)));
        // Full prefix promising 4 bytes, only 2 delivered.
        let mut r = FrameReader::new();
        let mut cur = std::io::Cursor::new(vec![4u8, 0, 0, 0, b'P', b'I']);
        assert!(matches!(r.read_frame(&mut cur), Err(FrameError::Torn)));
    }

    #[test]
    fn oversized_and_empty_prefixes_are_rejected() {
        let mut r = FrameReader::new();
        let huge = (MAX_FRAME + 1).to_le_bytes().to_vec();
        let mut cur = std::io::Cursor::new(huge);
        assert!(matches!(
            r.read_frame(&mut cur),
            Err(FrameError::Oversized(n)) if n == MAX_FRAME + 1
        ));
        let mut r = FrameReader::new();
        let mut cur = std::io::Cursor::new(0u32.to_le_bytes().to_vec());
        assert!(matches!(r.read_frame(&mut cur), Err(FrameError::Empty)));
    }

    #[test]
    fn http_get_prefix_reads_as_oversized() {
        // The sniffing invariant the dual-protocol port relies on.
        let n = u32::from_le_bytes(*b"GET ");
        assert!(n > MAX_FRAME);
    }

    #[test]
    fn reader_resumes_across_byte_dribble() {
        // One byte at a time through a reader that yields between reads —
        // the slow-loris read path.
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "dry"));
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut framed = Vec::new();
        write_frame(&mut framed, b"PING").unwrap();
        let mut src = OneByte(&framed, 0);
        let mut r = FrameReader::new();
        let mut timeouts = 0;
        loop {
            match r.read_frame(&mut src) {
                Ok(Some(p)) => {
                    assert_eq!(p, b"PING");
                    break;
                }
                Err(FrameError::Timeout) => timeouts += 1,
                other => panic!("unexpected {other:?}"),
            }
            assert!(timeouts < 3, "must finish before going dry");
        }
        assert!(r.mid_frame() || timeouts == 0);
    }

    #[test]
    fn request_grammar_parses_and_rejects() {
        assert_eq!(Request::parse("PING").unwrap(), Request::Ping);
        assert_eq!(
            Request::parse("RECOGNIZE mem_free 60 120 6000.5 6010").unwrap(),
            Request::Recognize {
                metric: "mem_free".into(),
                start: 60,
                end: 120,
                means: vec![6000.5, 6010.0],
            }
        );
        assert_eq!(
            Request::parse("STREAM vmstat::nr_dirty 4 60 120").unwrap(),
            Request::Stream {
                metric: "vmstat::nr_dirty".into(),
                nodes: 4,
                start: 60,
                end: 120,
            }
        );
        assert_eq!(
            Request::parse("PUSH 3 61 8110.25").unwrap(),
            Request::Push {
                node: 3,
                t: 61,
                value: 8110.25,
            }
        );
        assert_eq!(
            Request::parse("SWAP").unwrap(),
            Request::Swap { path: String::new() }
        );
        for bad in [
            "",
            "NOPE",
            "PING extra",
            "RECOGNIZE m 120 60 1.0", // inverted window
            "RECOGNIZE m 60 120",     // no means
            "RECOGNIZE m 60 120 NaN",
            "STREAM m 0 60 120", // zero nodes
            "PUSH 1 2",
            "PUSH 1 2 inf",
            "LEARN app X m 60 120",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn verdict_rendering_is_deterministic() {
        let rec = Recognition {
            verdict: Verdict::Ambiguous(vec!["sp".into(), "bt".into()]),
            app_votes: vec![],
            label_votes: vec![],
            matched_points: 4,
            total_points: 6,
        };
        assert_eq!(render_answer("OK", 7, &rec), "OK 7 4 6 ambiguous bt,sp");
        assert_eq!(verdict_label(&rec), "ambiguous");
    }
}
