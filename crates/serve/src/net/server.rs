//! The recognition daemon: `TcpListener` + fixed worker pool over the
//! engine API.
//!
//! ## Thread model
//!
//! One nonblocking acceptor thread polls `accept()` (and the SIGHUP
//! reload flag) on a short tick and pushes accepted sockets onto a
//! `Mutex<VecDeque<TcpStream>>` guarded by a condvar — the queue depth
//! is exported as `efd_queue_depth`. A fixed pool of worker threads
//! (each owning one reusable [`VoteScratch`]) pops connections and
//! serves each one to completion: connections are long-lived and carry
//! many requests, so per-connection (not per-request) dispatch keeps
//! the hot path free of cross-thread handoff.
//!
//! ## Hot swap
//!
//! The engine lives behind `RwLock<Arc<Published>>`, where `Published`
//! pairs the engine with a monotonically increasing generation. A
//! request clones the `Arc` once and computes its whole answer against
//! that publication — republication ([`Server::publish`], the `SWAP`
//! command, or SIGHUP via [`Server::hup_flag`]) swaps the `Arc` and
//! can never tear an in-flight answer. Every response carries the
//! generation it was computed against, which is what the hot-swap test
//! asserts on.
//!
//! ## Idle discipline
//!
//! Workers read with a 100 ms timeout and tally quiet ticks; a
//! connection idle past [`ServerConfig::idle_timeout`] — including one
//! dribbling a frame a byte at a time (slow loris) — is dropped and
//! counted in `efd_protocol_errors_total{kind="idle-timeout"}`.
//!
//! ## One port, two protocols
//!
//! The first four bytes of a connection are sniffed: a valid frame
//! prefix is ≤ [`MAX_FRAME`], while `GET `/`HEAD` decode far above it,
//! so plain-HTTP scrapes of `/metrics` and `/healthz` share the
//! recognition port. The sniffed bytes are consumed and replayed into
//! whichever handler wins (a `Chain` reader for the frame path), so a
//! peer that closes after 1–3 bytes is classified as a torn frame
//! immediately instead of holding the worker to the idle timeout.

use std::collections::VecDeque;
use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use efd_core::engine::{Recognize, VoteScratch};
use efd_core::{binfmt, serialize, LabeledObservation, Query};
use efd_telemetry::{AppLabel, Interval, MetricCatalog, MetricId, NodeId};

use super::drift::{DriftBaseline, DriftConfig, DriftMonitor, DriftSnapshot};
use super::metrics::DaemonMetrics;
use super::protocol::{
    render_answer, verdict_label, write_frame, FrameError, FrameReader, Request, MAX_FRAME,
};
use crate::{ComboSnapshot, DurableDictionary, EfdbSnapshot, OnlineSession, ShardedDictionary, Snapshot};

/// Worker read-timeout tick: the granularity of idle accounting and
/// shutdown observation.
const READ_TICK: Duration = Duration::from_millis(100);
/// Acceptor poll tick (nonblocking `accept` + reload-flag check).
const ACCEPT_TICK: Duration = Duration::from_millis(2);
/// Cap on `STREAM` node counts — bounds per-session memory.
const MAX_STREAM_NODES: u16 = 4096;
/// Cap on a buffered HTTP request head.
const MAX_HTTP_HEAD: usize = 8 * 1024;

/// Which engine backend the daemon serves (and reloads on `SWAP`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Immutable published [`Snapshot`] (the default).
    Snapshot,
    /// Live [`ShardedDictionary`] behind per-shard `RwLock`s.
    Sharded,
    /// Conjunctive [`ComboSnapshot`].
    Combo,
    /// Zero-copy [`EfdbSnapshot`] straight over EFDB bytes.
    Efdb,
}

impl BackendKind {
    /// Parse a `--backend` value.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "snapshot" => Some(BackendKind::Snapshot),
            "sharded" => Some(BackendKind::Sharded),
            "combo" => Some(BackendKind::Combo),
            "efdb" => Some(BackendKind::Efdb),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Snapshot => "snapshot",
            BackendKind::Sharded => "sharded",
            BackendKind::Combo => "combo",
            BackendKind::Efdb => "efdb",
        }
    }
}

/// A publishable engine: the recognizer every request answers through,
/// plus the optional durable learner (`--wal` mode) that accepts
/// `LEARN` requests.
#[derive(Clone)]
pub struct Engine {
    /// The recognition backend behind the engine API.
    pub recognizer: Arc<dyn Recognize + Send + Sync>,
    /// Present only in durable (`--wal`) mode; `LEARN` writes ahead
    /// through it, and reads see learns immediately (the recognizer
    /// *is* the durable dictionary's sharded live form).
    pub learner: Option<Arc<DurableDictionary>>,
    /// Key count at publication time (live key count in durable mode
    /// comes from [`Engine::keys_now`]).
    pub keys: usize,
    /// Short backend kind name for `STATS` (`snapshot`, `efdb`, ...).
    pub kind: &'static str,
    /// Served catalog artifact version (`hpc-apps@v3`) or manifest
    /// identity; `None` for plain file-backed engines.
    pub version: Option<String>,
    /// Abstention baseline recorded when the served version was
    /// published; drives the drift monitor. `None` = never alarm.
    pub baseline: Option<DriftBaseline>,
}

impl Engine {
    /// An immutable (file-backed) engine.
    pub fn fixed(
        recognizer: Arc<dyn Recognize + Send + Sync>,
        keys: usize,
        kind: &'static str,
    ) -> Self {
        Engine {
            recognizer,
            learner: None,
            keys,
            kind,
            version: None,
            baseline: None,
        }
    }

    /// Tag the engine with the catalog version it serves.
    pub fn with_version(mut self, version: impl Into<String>) -> Self {
        self.version = Some(version.into());
        self
    }

    /// Attach the published version's abstention baseline.
    pub fn with_baseline(mut self, baseline: DriftBaseline) -> Self {
        self.baseline = Some(baseline);
        self
    }

    /// Version for status lines: the catalog ref, or `-` outside the
    /// catalog.
    pub fn version_label(&self) -> &str {
        self.version.as_deref().unwrap_or("-")
    }

    /// A durable engine: serves and learns through one
    /// [`DurableDictionary`].
    pub fn durable(d: Arc<DurableDictionary>) -> Self {
        let keys = d.dictionary().len();
        Engine {
            recognizer: d.clone(),
            learner: Some(d),
            keys,
            kind: "durable",
            version: None,
            baseline: None,
        }
    }

    /// Current key count: live in durable mode, frozen otherwise.
    pub fn keys_now(&self) -> usize {
        match &self.learner {
            Some(d) => d.dictionary().len(),
            None => self.keys,
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("kind", &self.kind)
            .field("keys", &self.keys)
            .field("durable", &self.learner.is_some())
            .field("version", &self.version)
            .field("baseline", &self.baseline)
            .finish()
    }
}

/// Load a dictionary file into an engine of the requested backend —
/// the same loader the `SWAP` command and SIGHUP reload use, so a
/// republished engine is built exactly like the original.
pub fn load_engine(
    path: &Path,
    backend: BackendKind,
    catalog: &MetricCatalog,
    shards: usize,
) -> Result<Engine, String> {
    let shown = path.display();
    let raw = std::fs::read(path).map_err(|e| format!("{shown}: {e}"))?;
    let is_efdb = raw.starts_with(&binfmt::MAGIC);
    if backend == BackendKind::Efdb {
        if !is_efdb {
            return Err(format!(
                "{shown}: --backend efdb serves EFDB bytes in place; --load a .efdb file"
            ));
        }
        let snap = EfdbSnapshot::load(raw, catalog).map_err(|e| format!("{shown}: {e}"))?;
        let keys = snap.len();
        return Ok(Engine::fixed(Arc::new(snap), keys, "efdb"));
    }
    // Snapshot fast path: EFDB sections build the snapshot directly.
    if backend == BackendKind::Snapshot && is_efdb {
        let efdb = binfmt::read(&raw).map_err(|e| format!("{shown}: {e}"))?;
        let snap =
            Snapshot::from_efdb(&efdb, catalog, shards).map_err(|e| format!("{shown}: {e}"))?;
        let keys = snap.len();
        return Ok(Engine::fixed(Arc::new(snap), keys, "snapshot"));
    }
    let dict = if is_efdb {
        binfmt::read_dictionary(&raw, catalog).map_err(|e| format!("{shown}: {e}"))?
    } else {
        let text = std::str::from_utf8(&raw).map_err(|e| format!("{shown}: {e}"))?;
        serialize::from_json(text, catalog).map_err(|e| format!("{shown}: {e}"))?
    };
    let keys = dict.len();
    Ok(match backend {
        BackendKind::Snapshot => {
            Engine::fixed(Arc::new(Snapshot::freeze(&dict, shards)), keys, "snapshot")
        }
        BackendKind::Sharded => Engine::fixed(
            Arc::new(ShardedDictionary::from_parts(dict.to_parts(), shards)),
            keys,
            "sharded",
        ),
        BackendKind::Combo => {
            let combo = efd_core::multi::ComboDictionary::from_single_metric(&dict)
                .ok_or_else(|| {
                    format!("{shown}: --backend combo needs a non-empty single-metric dictionary")
                })?;
            let keys = combo.len();
            Engine::fixed(Arc::new(ComboSnapshot::freeze(combo)), keys, "combo")
        }
        BackendKind::Efdb => unreachable!("handled above"),
    })
}

/// A pluggable engine loader: how `SWAP path` / SIGHUP rebuild an
/// engine from a path. Manifest serving installs one that treats the
/// path as a `recognizer.v1` manifest; without one, paths load through
/// [`load_engine`].
pub type EngineLoader = Arc<dyn Fn(&Path) -> Result<Engine, String> + Send + Sync>;

/// Daemon configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker-thread count (min 1).
    pub workers: usize,
    /// Drop a connection after this much continuous quiet.
    pub idle_timeout: Duration,
    /// Shard fan-out for snapshots built on reload.
    pub shards: usize,
    /// Backend built by `SWAP`/SIGHUP reloads.
    pub backend: BackendKind,
    /// Metric-name resolution for requests.
    pub catalog: MetricCatalog,
    /// Path reloaded by SIGHUP and a bare `SWAP` (normally the daemon's
    /// `--load` or `--manifest` argument).
    pub reload_path: Option<PathBuf>,
    /// Drift-monitor tuning (window, warm-up floor, alarm margin).
    pub drift: DriftConfig,
    /// Custom engine loader for reloads (manifest mode); `None` loads
    /// dictionary files via [`load_engine`].
    pub loader: Option<EngineLoader>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("idle_timeout", &self.idle_timeout)
            .field("shards", &self.shards)
            .field("backend", &self.backend)
            .field("reload_path", &self.reload_path)
            .field("drift", &self.drift)
            .field("loader", &self.loader.as_ref().map(|_| "<custom>"))
            .finish_non_exhaustive()
    }
}

impl ServerConfig {
    /// Defaults: 4 workers, 30 s idle timeout, 8 shards, snapshot
    /// backend, no reload path, default drift tuning.
    pub fn new(catalog: MetricCatalog) -> Self {
        ServerConfig {
            workers: 4,
            idle_timeout: Duration::from_secs(30),
            shards: 8,
            backend: BackendKind::Snapshot,
            catalog,
            reload_path: None,
            drift: DriftConfig::default(),
            loader: None,
        }
    }
}

/// One published engine generation.
struct Published {
    gen: u64,
    engine: Engine,
}

struct Shared {
    cfg: ServerConfig,
    published: RwLock<Arc<Published>>,
    metrics: DaemonMetrics,
    drift: DriftMonitor,
    shutdown: AtomicBool,
    hup: Arc<AtomicBool>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
}

impl Shared {
    fn current(&self) -> Arc<Published> {
        self.published.read().expect("published lock").clone()
    }

    fn publish(&self, engine: Engine) -> u64 {
        let version = engine.version.clone();
        let baseline = engine.baseline;
        let mut w = self.published.write().expect("published lock");
        let gen = w.gen + 1;
        *w = Arc::new(Published { gen, engine });
        drop(w);
        self.metrics.generation.set(gen as i64);
        self.metrics.swaps_total.inc();
        // The new version is judged only by traffic it answered itself:
        // rebaseline clears the window (and any standing alarm).
        self.metrics.set_version(version);
        self.drift.rebaseline(baseline);
        self.metrics.observe_drift(&self.drift.snapshot());
        gen
    }

    /// Build an engine from a path the way this daemon was configured
    /// to: through the custom loader (manifest mode) or [`load_engine`].
    fn load(&self, path: &Path) -> Result<Engine, String> {
        match &self.cfg.loader {
            Some(loader) => loader(path),
            None => load_engine(path, self.cfg.backend, &self.cfg.catalog, self.cfg.shards),
        }
    }

    fn reload(&self) -> Result<u64, String> {
        let path = self
            .cfg
            .reload_path
            .as_ref()
            .ok_or("no reload path configured")?;
        if self.current().engine.learner.is_some() {
            return Err("durable mode learns in place; reload does not apply".into());
        }
        let engine = self.load(path)?;
        Ok(self.publish(engine))
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }
}

/// Totals reported when the daemon exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered over the daemon's lifetime.
    pub requests: u64,
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
}

/// A running recognition daemon. Dropping the handle does **not** stop
/// the daemon — call [`Server::shutdown`] then [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port), publish
    /// the initial engine as generation 1, and start the acceptor and
    /// worker threads.
    pub fn start(addr: &str, cfg: ServerConfig, engine: Engine) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| format!("{addr}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("{addr}: {e}"))?;
        let metrics = DaemonMetrics::new();
        metrics.generation.set(1);
        metrics.set_version(engine.version.clone());
        let drift = DriftMonitor::new(cfg.drift);
        drift.rebaseline(engine.baseline);
        metrics.observe_drift(&drift.snapshot());
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            published: RwLock::new(Arc::new(Published { gen: 1, engine })),
            metrics,
            drift,
            shutdown: AtomicBool::new(false),
            hup: Arc::new(AtomicBool::new(false)),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        let s = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("efd-accept".into())
                .spawn(move || accept_loop(&s, listener))
                .map_err(|e| format!("spawn acceptor: {e}"))?,
        );
        for i in 0..workers {
            let s = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("efd-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .map_err(|e| format!("spawn worker: {e}"))?,
            );
        }
        Ok(Server {
            shared,
            addr: local,
            threads,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The flag a SIGHUP handler sets to request a reload; the acceptor
    /// polls and clears it.
    pub fn hup_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.hup)
    }

    /// The daemon's metric surface (tests read gauges directly).
    pub fn metrics(&self) -> &DaemonMetrics {
        &self.shared.metrics
    }

    /// Render the Prometheus exposition (same text `/metrics` serves).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.render()
    }

    /// Current published engine generation.
    pub fn generation(&self) -> u64 {
        self.shared.current().gen
    }

    /// Current drift-monitor reading (tests assert on state edges).
    pub fn drift_snapshot(&self) -> DriftSnapshot {
        self.shared.drift.snapshot()
    }

    /// Atomically republish a new engine; returns its generation.
    pub fn publish(&self, engine: Engine) -> u64 {
        self.shared.publish(engine)
    }

    /// Reload the configured path (what SIGHUP does, synchronously).
    pub fn reload(&self) -> Result<u64, String> {
        self.shared.reload()
    }

    /// Signal shutdown: stop accepting, let workers finish their
    /// current connection, then exit. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop();
    }

    /// True until shutdown has been signalled.
    pub fn running(&self) -> bool {
        !self.shared.stopping()
    }

    /// Block until every daemon thread has exited.
    pub fn join(self) -> ServeSummary {
        for t in self.threads {
            let _ = t.join();
        }
        ServeSummary {
            requests: self.shared.metrics.requests_total(),
            connections: self.shared.metrics.connections_total.get(),
        }
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    while !shared.stopping() {
        if shared.hup.swap(false, Ordering::SeqCst) {
            match shared.reload() {
                Ok(gen) => eprintln!("reloaded: generation {gen}"),
                Err(e) => eprintln!("warning: reload failed: {e}"),
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.connections_total.inc();
                let mut q = shared.queue.lock().expect("queue lock");
                q.push_back(stream);
                shared.metrics.queue_depth.set(q.len() as i64);
                drop(q);
                shared.queue_cv.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_TICK),
            // Transient accept errors (EMFILE, aborted handshake):
            // back off and keep serving.
            Err(_) => thread::sleep(ACCEPT_TICK),
        }
    }
    shared.queue_cv.notify_all();
}

fn worker_loop(shared: &Shared) {
    let mut scratch = VoteScratch::default();
    loop {
        let conn = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(s) = q.pop_front() {
                    shared.metrics.queue_depth.set(q.len() as i64);
                    break Some(s);
                }
                if shared.stopping() {
                    break None;
                }
                let (guard, _timeout) = shared
                    .queue_cv
                    .wait_timeout(q, READ_TICK)
                    .expect("queue lock");
                q = guard;
            }
        };
        let Some(stream) = conn else { return };
        shared.metrics.active_connections.add(1);
        let _ = handle_conn(shared, stream, &mut scratch);
        shared.metrics.active_connections.add(-1);
    }
}

/// Serve one connection to completion (sniffs frame protocol vs HTTP).
/// The sniffed bytes are consumed here and replayed into the winning
/// handler.
fn handle_conn(shared: &Shared, mut stream: TcpStream, scratch: &mut VoteScratch) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_TICK))?;
    let mut first = [0u8; 4];
    let mut got = 0;
    let mut idle = Duration::ZERO;
    while got < 4 {
        if shared.stopping() {
            return Ok(());
        }
        match stream.read(&mut first[got..]) {
            Ok(0) => {
                // Closed before a full sniff window: silent if no byte
                // ever arrived, torn if the prefix was cut short.
                if got > 0 {
                    shared.metrics.count_error("torn");
                }
                return Ok(());
            }
            Ok(n) => {
                got += n;
                idle = Duration::ZERO;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                idle += READ_TICK;
                if idle >= shared.cfg.idle_timeout {
                    shared.metrics.count_error("idle-timeout");
                    return Ok(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if &first == b"GET " || &first == b"HEAD" {
        return handle_http(shared, stream, &first);
    }
    frame_loop(shared, stream, scratch, idle, first)
}

/// Per-connection streaming state: one open [`OnlineSession`] plus the
/// generation and wall-clock instant it was opened against.
struct StreamState {
    sess: OnlineSession<dyn Recognize + Send + Sync>,
    metric: MetricId,
    gen: u64,
    opened: Instant,
}

enum Action {
    Continue,
    ShutdownDaemon,
}

struct Reply {
    text: String,
    action: Action,
}

fn reply(text: String) -> Reply {
    Reply {
        text,
        action: Action::Continue,
    }
}

fn frame_loop(
    shared: &Shared,
    stream: TcpStream,
    scratch: &mut VoteScratch,
    mut idle: Duration,
    sniffed: [u8; 4],
) -> io::Result<()> {
    let mut reader = FrameReader::new();
    let mut writer = BufWriter::new(stream.try_clone()?);
    // Replay the sniffed bytes (the first frame's length prefix) ahead
    // of the live stream.
    let mut src = io::Cursor::new(sniffed).chain(stream);
    let mut session: Option<StreamState> = None;
    loop {
        if shared.stopping() {
            return Ok(());
        }
        let started;
        let out = match reader.read_frame(&mut src) {
            Ok(None) => return Ok(()), // clean close at a frame boundary
            Ok(Some(payload)) => {
                idle = Duration::ZERO;
                started = Instant::now();
                dispatch(shared, payload, &mut session, scratch)
            }
            Err(FrameError::Timeout) => {
                idle += READ_TICK;
                if idle >= shared.cfg.idle_timeout {
                    shared.metrics.count_error("idle-timeout");
                    return Ok(());
                }
                continue;
            }
            Err(FrameError::Torn) => {
                shared.metrics.count_error("torn");
                return Ok(());
            }
            Err(FrameError::Oversized(n)) => {
                shared.metrics.count_error("oversized");
                // Best-effort structured refusal; the peer may already
                // be gone, and we drop the connection either way (the
                // stream position is unrecoverable).
                let msg = format!("ERR oversized frame length {n} exceeds {MAX_FRAME} bytes");
                let _ = write_frame(&mut writer, msg.as_bytes()).and_then(|_| writer.flush());
                return Ok(());
            }
            Err(FrameError::Empty) => {
                shared.metrics.count_error("empty");
                let _ = write_frame(&mut writer, b"ERR empty zero-length frame")
                    .and_then(|_| writer.flush());
                return Ok(());
            }
            Err(FrameError::Io(_)) => return Ok(()), // reset/broken pipe: clean drop
        };
        write_frame(&mut writer, out.text.as_bytes())?;
        writer.flush()?;
        shared.metrics.request_duration.observe_duration(started.elapsed());
        match out.action {
            Action::Continue => {}
            Action::ShutdownDaemon => {
                shared.stop();
                return Ok(());
            }
        }
    }
}

/// Answer one request. Infallible by construction: every failure mode
/// is a structured `ERR <kind> <message>` response.
fn dispatch(
    shared: &Shared,
    payload: &[u8],
    session: &mut Option<StreamState>,
    scratch: &mut VoteScratch,
) -> Reply {
    let line = match std::str::from_utf8(payload) {
        Ok(l) => l,
        Err(_) => {
            shared.metrics.count_error("malformed");
            return reply("ERR malformed payload is not UTF-8".into());
        }
    };
    let req = match Request::parse(line) {
        Ok(r) => r,
        Err(why) => {
            shared.metrics.count_error("malformed");
            return reply(format!("ERR malformed {why}"));
        }
    };
    shared.metrics.count_request(req.command());
    match req {
        Request::Ping => reply("PONG".into()),
        Request::Recognize {
            metric,
            start,
            end,
            means,
        } => {
            let Some(m) = shared.cfg.catalog.id(&metric) else {
                return unknown_metric(shared, &metric);
            };
            let q = Query::from_node_means(m, Interval::new(start, end), &means);
            let p = shared.current();
            let rec = p.engine.recognizer.recognize_into(&q, scratch).normalized();
            note_verdict(shared, &rec);
            reply(render_answer("OK", p.gen, &rec))
        }
        Request::Stream {
            metric,
            nodes,
            start,
            end,
        } => {
            if session.is_some() {
                shared.metrics.count_error("bad-state");
                return reply("ERR bad-state a stream is already open on this connection".into());
            }
            if nodes > MAX_STREAM_NODES {
                shared.metrics.count_error("malformed");
                return reply(format!(
                    "ERR malformed STREAM nodes {nodes} exceeds the {MAX_STREAM_NODES} cap"
                ));
            }
            let Some(m) = shared.cfg.catalog.id(&metric) else {
                return unknown_metric(shared, &metric);
            };
            let p = shared.current();
            let node_ids: Vec<NodeId> = (0..nodes).map(NodeId).collect();
            let sess = OnlineSession::new(
                Arc::clone(&p.engine.recognizer),
                &[m],
                &node_ids,
                vec![Interval::new(start, end)],
            );
            let horizon = sess.horizon_s();
            *session = Some(StreamState {
                sess,
                metric: m,
                gen: p.gen,
                opened: Instant::now(),
            });
            reply(format!("OPENED {} {horizon}", p.gen))
        }
        Request::Push { node, t, value } => {
            let Some(st) = session.as_mut() else {
                shared.metrics.count_error("bad-state");
                return reply("ERR bad-state no open stream (send STREAM first)".into());
            };
            follow_swap(shared, st);
            match st.sess.push(NodeId(node), st.metric, t, value) {
                Some(rec) => {
                    let rec = rec.normalized();
                    let st = session.take().expect("checked above");
                    stream_verdict(shared, &st, &rec)
                }
                None => reply(format!("ACK {}", st.sess.collected())),
            }
        }
        Request::Finish => {
            let Some(mut st) = session.take() else {
                shared.metrics.count_error("bad-state");
                return reply("ERR bad-state no open stream to finish".into());
            };
            follow_swap(shared, &mut st);
            let rec = st.sess.finish().normalized();
            stream_verdict(shared, &st, &rec)
        }
        Request::Learn {
            app,
            input,
            metric,
            start,
            end,
            means,
        } => {
            let p = shared.current();
            let Some(learner) = p.engine.learner.as_ref() else {
                shared.metrics.count_error("read-only");
                return reply(
                    "ERR read-only this daemon serves an immutable snapshot \
                     (start with --wal to accept LEARN)"
                        .into(),
                );
            };
            let Some(m) = shared.cfg.catalog.id(&metric) else {
                return unknown_metric(shared, &metric);
            };
            let obs = LabeledObservation {
                label: AppLabel::new(&app, &input),
                query: Query::from_node_means(m, Interval::new(start, end), &means),
            };
            match learner.learn(&obs) {
                Ok(()) => reply(format!("LEARNED {}", learner.dictionary().len())),
                Err(e) => reply(format!("ERR io {e}")),
            }
        }
        Request::Swap { path } => {
            if shared.current().engine.learner.is_some() {
                shared.metrics.count_error("bad-state");
                return reply(
                    "ERR bad-state durable mode learns in place; SWAP applies to \
                     file-backed engines"
                        .into(),
                );
            }
            let outcome = if path.is_empty() {
                shared.reload()
            } else {
                shared
                    .load(Path::new(&path))
                    .map(|engine| shared.publish(engine))
            };
            match outcome {
                Ok(gen) => {
                    let p = shared.current();
                    reply(format!(
                        "SWAPPED {gen} {} {}",
                        p.engine.keys,
                        p.engine.version_label()
                    ))
                }
                Err(e) => reply(format!("ERR swap-failed {e}")),
            }
        }
        Request::Stats => {
            let p = shared.current();
            reply(format!(
                "STATS gen={} keys={} backend={} version={} connections={} requests={}",
                p.gen,
                p.engine.keys_now(),
                p.engine.kind,
                p.engine.version_label(),
                shared.metrics.connections_total.get(),
                shared.metrics.requests_total(),
            ))
        }
        Request::Status => {
            let p = shared.current();
            let snap = shared.drift.snapshot();
            let (bu, ba) = match snap.baseline {
                Some(b) => (format!("{:.4}", b.unknown_rate), format!("{:.4}", b.ambiguous_rate)),
                None => ("-".to_string(), "-".to_string()),
            };
            reply(format!(
                "STATUS gen={} version={} backend={} keys={} drift={} samples={} \
                 unknown_rate={:.4} ambiguous_rate={:.4} \
                 baseline_unknown={bu} baseline_ambiguous={ba}",
                p.gen,
                p.engine.version_label(),
                p.engine.kind,
                p.engine.keys_now(),
                snap.state.name(),
                snap.samples,
                snap.unknown_rate,
                snap.ambiguous_rate,
            ))
        }
        Request::Shutdown => Reply {
            text: "BYE".into(),
            action: Action::ShutdownDaemon,
        },
    }
}

fn unknown_metric(shared: &Shared, metric: &str) -> Reply {
    shared.metrics.count_error("unknown-metric");
    reply(format!("ERR unknown-metric {metric:?} is not in the catalog"))
}

/// Re-point an open stream at the latest publication (window means
/// collected so far are kept — only the dictionary changes).
fn follow_swap(shared: &Shared, st: &mut StreamState) {
    let p = shared.current();
    if p.gen != st.gen {
        st.sess.swap(Arc::clone(&p.engine.recognizer));
        st.gen = p.gen;
    }
}

fn stream_verdict(shared: &Shared, st: &StreamState, rec: &efd_core::Recognition) -> Reply {
    shared
        .metrics
        .time_to_first_verdict
        .observe_duration(st.opened.elapsed());
    note_verdict(shared, rec);
    reply(render_answer("VERDICT", st.gen, rec))
}

/// Count a verdict and feed the drift monitor; a judgement edge
/// (ok → alarm, alarm → ok, ...) is logged exactly once.
fn note_verdict(shared: &Shared, rec: &efd_core::Recognition) {
    let label = verdict_label(rec);
    shared.metrics.count_verdict(label);
    if let Some((from, to)) = shared.drift.record(label) {
        let snap = shared.drift.snapshot();
        eprintln!(
            "drift: {} -> {} (version={} unknown_rate={:.3} ambiguous_rate={:.3} window={})",
            from.name(),
            to.name(),
            shared.metrics.version().as_deref().unwrap_or("-"),
            snap.unknown_rate,
            snap.ambiguous_rate,
            snap.samples,
        );
    }
    shared.metrics.observe_drift(&shared.drift.snapshot());
}

/// Minimal HTTP/1.1: `GET /metrics` (Prometheus text), `GET /healthz`.
/// One request per connection (`Connection: close`).
fn handle_http(shared: &Shared, mut stream: TcpStream, sniffed: &[u8; 4]) -> io::Result<()> {
    let mut head = sniffed.to_vec();
    let mut buf = [0u8; 1024];
    let mut idle = Duration::ZERO;
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > MAX_HTTP_HEAD {
            break;
        }
        if shared.stopping() {
            return Ok(());
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                idle = Duration::ZERO;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                idle += READ_TICK;
                if idle >= shared.cfg.idle_timeout {
                    shared.metrics.count_error("idle-timeout");
                    return Ok(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Ok(()),
        }
    }
    let text = String::from_utf8_lossy(&head);
    let line = text.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = match (method, path) {
        ("GET", "/metrics") | ("HEAD", "/metrics") => {
            shared.metrics.scrapes_total.inc();
            ("200 OK", shared.metrics.render())
        }
        ("GET", "/healthz") | ("HEAD", "/healthz") => ("200 OK", "ok\n".to_string()),
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    if method != "HEAD" {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}
