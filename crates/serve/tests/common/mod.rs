//! Shared harness for the daemon integration suites: tiny labeled
//! dictionaries, an [`Engine`] for every backend, a framed test client
//! speaking the wire protocol over a real socket, and polling helpers
//! for asserting on asynchronously updated daemon state.
#![allow(dead_code)] // each test crate uses a subset of the harness

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use efd_core::multi::ComboDictionary;
use efd_core::{binfmt, EfdDictionary, LabeledObservation, Query, RoundingDepth};
use efd_serve::net::protocol::{write_frame, FrameError, FrameReader};
use efd_serve::net::{Engine, Server, ServerConfig};
use efd_serve::{ComboSnapshot, EfdbSnapshot, ShardedDictionary, Snapshot};
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::{AppLabel, Interval, MetricCatalog, MetricId};

/// The metric every harness dictionary fingerprints.
pub const M: MetricId = MetricId(0);
/// Its name in [`small_catalog`] — what requests put on the wire.
pub const METRIC: &str = "nr_mapped_vmstat";
/// The fingerprint window harness entries are learned at.
pub const W: Interval = Interval::PAPER_DEFAULT;

/// The catalog every harness daemon resolves metric names against.
pub fn catalog() -> MetricCatalog {
    small_catalog()
}

/// A two-node dictionary at rounding depth 2: each `(app, mean)` learns
/// the mean on both nodes over [`W`]. Two apps at the same mean make an
/// ambiguous key; an unlearned mean makes an unknown.
pub fn dict_with(apps: &[(&str, f64)]) -> EfdDictionary {
    let mut d = EfdDictionary::new(RoundingDepth::new(2));
    for &(app, mean) in apps {
        d.learn(&LabeledObservation {
            label: AppLabel::new(app, "X"),
            query: Query::from_node_means(M, W, &[mean, mean]),
        });
    }
    d
}

/// A two-node query over [`W`] on the harness metric.
pub fn query(means: &[f64; 2]) -> Query {
    Query::from_node_means(M, W, means)
}

/// The `RECOGNIZE` line for [`query`] with the same means.
pub fn recognize_line(means: &[f64; 2]) -> String {
    format!("RECOGNIZE {METRIC} {} {} {} {}", W.start, W.end, means[0], means[1])
}

/// One engine per backend kind, all built from the same dictionary, so
/// a test can assert the identical contract across every serving form.
pub fn engines_for(dict: &EfdDictionary) -> Vec<Engine> {
    let cat = catalog();
    let keys = dict.len();
    let efdb = binfmt::write_dictionary(dict, &cat);
    let combo = ComboDictionary::from_single_metric(dict).expect("non-empty single-metric dict");
    vec![
        Engine::fixed(Arc::new(Snapshot::freeze(dict, 4)), keys, "snapshot"),
        Engine::fixed(
            Arc::new(ShardedDictionary::from_parts(dict.to_parts(), 4)),
            keys,
            "sharded",
        ),
        Engine::fixed(Arc::new(ComboSnapshot::freeze(combo)), keys, "combo"),
        Engine::fixed(
            Arc::new(EfdbSnapshot::load(efdb, &cat).expect("round-tripped EFDB bytes")),
            keys,
            "efdb",
        ),
    ]
}

/// Snapshot engine shorthand for tests that only need one backend.
pub fn snapshot_engine(dict: &EfdDictionary) -> Engine {
    Engine::fixed(Arc::new(Snapshot::freeze(dict, 4)), dict.len(), "snapshot")
}

/// Start a daemon on an ephemeral port with harness defaults; `tweak`
/// adjusts the config (idle timeout, workers, reload path, ...).
pub fn start_server(engine: Engine, tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut cfg = ServerConfig::new(catalog());
    cfg.workers = 2;
    tweak(&mut cfg);
    Server::start("127.0.0.1:0", cfg, engine).expect("daemon binds an ephemeral port")
}

/// A blocking framed client with a request/response helper.
pub struct Client {
    pub stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    /// Connect to the daemon under test.
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("read timeout");
        Client {
            stream,
            reader: FrameReader::new(),
        }
    }

    /// Send one request frame.
    pub fn send(&mut self, line: &str) {
        write_frame(&mut self.stream, line.as_bytes()).expect("write frame");
        self.stream.flush().expect("flush frame");
    }

    /// Read one response frame (panics after 10 s — a hung worker is
    /// exactly what these tests exist to catch).
    pub fn recv(&mut self) -> String {
        self.recv_or_close()
            .unwrap_or_else(|| panic!("daemon closed the connection instead of answering"))
    }

    /// Read one response, or `None` if the daemon closed the connection
    /// first. Panics on a 10 s stall.
    pub fn recv_or_close(&mut self) -> Option<String> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match self.reader.read_frame(&mut self.stream) {
                Ok(Some(payload)) => {
                    return Some(String::from_utf8(payload.to_vec()).expect("UTF-8 response"))
                }
                Ok(None) => return None,
                Err(FrameError::Timeout) => {
                    assert!(Instant::now() < deadline, "no response within 10 s");
                }
                Err(FrameError::Io(_)) => return None, // reset counts as a close
                Err(e) => panic!("client-side frame error: {e}"),
            }
        }
    }

    /// Round-trip one request.
    pub fn request(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

/// Poll until `cond` holds (10 s cap) — for daemon state that updates
/// asynchronously to the client-visible protocol, like error counters.
pub fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A fresh per-test scratch directory under the target-local tmp root.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("efd-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Write a dictionary as EFDB bytes to `dir/name`.
pub fn write_efdb(dir: &std::path::Path, name: &str, dict: &EfdDictionary) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, binfmt::write_dictionary(dict, &catalog())).expect("write efdb file");
    path
}

/// One raw HTTP/1.0-style request against the daemon port; returns
/// (status line, body).
pub fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect for http");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: efd\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("write http request");
    let mut raw = Vec::new();
    use std::io::Read;
    stream.read_to_end(&mut raw).expect("read http response");
    let text = String::from_utf8(raw).expect("UTF-8 http response");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("http response has a blank line");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}
