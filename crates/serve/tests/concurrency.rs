//! Concurrency tests: N writer threads learning disjoint label sets while
//! M reader threads recognize, then oracle equivalence — the sharded
//! structures must answer exactly like a single-threaded
//! [`EfdDictionary`] that learned the same observations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use efd_core::{EfdDictionary, LabeledObservation, Query, Recognition, RoundingDepth};
use efd_serve::{BatchRecognizer, Recognize, ShardedDictionary, Snapshot};
use efd_telemetry::{AppLabel, Interval, MetricId};
use efd_util::SplitMix64;

const M: MetricId = MetricId(0);
const W: Interval = Interval::PAPER_DEFAULT;
const NODES: usize = 4;

/// Synthetic corpus: `apps` applications × `reps` repeated executions,
/// app base levels spread far enough apart that most apps are exclusive
/// while neighbors occasionally collide (like SP/BT in the paper).
fn corpus(apps: usize, reps: usize, seed: u64) -> Vec<LabeledObservation> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();
    for a in 0..apps {
        let base = 3000.0 + 700.0 * a as f64;
        for r in 0..reps {
            let input = ["X", "Y", "Z"][r % 3];
            let means: Vec<f64> = (0..NODES)
                .map(|_| base + (rng.next_f64() - 0.5) * 60.0)
                .collect();
            out.push(LabeledObservation {
                label: AppLabel::new(format!("app{a:02}"), input),
                query: Query::from_node_means(M, W, &means),
            });
        }
    }
    out
}

/// Queries drawn near the corpus levels (mix of matches, collisions, and
/// never-seen levels).
fn queries(apps: usize, count: usize, seed: u64) -> Vec<Query> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            let a = (rng.next_u64() % (apps as u64 + 2)) as f64; // +2: unknown levels
            let base = 3000.0 + 700.0 * a;
            let means: Vec<f64> = (0..NODES)
                .map(|_| base + (rng.next_f64() - 0.5) * 80.0)
                .collect();
            Query::from_node_means(M, W, &means)
        })
        .collect()
}

fn oracle(observations: &[LabeledObservation]) -> EfdDictionary {
    let mut d = EfdDictionary::new(RoundingDepth::new(2));
    d.learn_all(observations);
    d
}

#[test]
fn concurrent_writers_and_readers_match_single_threaded_oracle() {
    const WRITERS: usize = 4;
    const READERS: usize = 2;

    let observations = corpus(12, 6, 0xC0FFEE);
    let probe_queries = queries(12, 64, 0xBEEF);
    let sharded = ShardedDictionary::new(RoundingDepth::new(2), 8);
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // N writers over DISJOINT label sets (apps partitioned round-robin
        // by index), interleaving at observation granularity.
        for w in 0..WRITERS {
            let sharded = &sharded;
            let observations = &observations;
            s.spawn(move || {
                for obs in observations.iter().filter(|o| {
                    let app_idx: usize = o.label.app[3..].parse().expect("appNN name");
                    app_idx % WRITERS == w
                }) {
                    sharded.learn(obs);
                }
            });
        }
        // M readers recognize the whole time. Verdicts on a moving
        // dictionary are transient; the invariant is that every answer is
        // well-formed and every voted app is one somebody is learning.
        for _ in 0..READERS {
            let sharded = &sharded;
            let done = &done;
            let probe_queries = &probe_queries;
            s.spawn(move || {
                let mut rounds = 0usize;
                while !done.load(Ordering::Relaxed) || rounds == 0 {
                    for q in probe_queries {
                        let r = sharded.recognize(q);
                        assert!(r.matched_points <= r.total_points);
                        for (app, votes) in &r.app_votes {
                            assert!(app.starts_with("app"), "foreign app {app:?}");
                            assert!(*votes as usize <= r.total_points);
                        }
                    }
                    rounds += 1;
                }
            });
        }
        // Writers finish (first WRITERS handles), then release readers.
        // Scope join order doesn't matter: flip `done` from a watcher.
        s.spawn(|| {
            // Busy-wait until all keys are in (writers insert, never
            // remove; the final key count equals the oracle's).
            let target = oracle(&observations).len();
            while sharded.len() < target {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    // Final state: answer-identical to the single-threaded oracle on the
    // very observations that were learned, and on fresh probe queries.
    let oracle = oracle(&observations);
    assert_eq!(sharded.len(), oracle.len());
    for obs in &observations {
        assert_eq!(
            sharded.recognize(&obs.query),
            oracle.recognize(&obs.query).normalized(),
            "learned observation {:?}",
            obs.label
        );
    }
    for q in &probe_queries {
        assert_eq!(sharded.recognize(q), oracle.recognize(q).normalized());
    }
}

#[test]
fn snapshot_batch_matches_oracle_at_every_shard_count() {
    let observations = corpus(10, 5, 0x5EED);
    let oracle = oracle(&observations);
    let probe_queries = queries(10, 256, 0xFACE);

    let expected: Vec<Recognition> = probe_queries
        .iter()
        .map(|q| oracle.recognize(q).normalized())
        .collect();

    for shards in [1usize, 2, 8, 32] {
        let snap = Arc::new(Snapshot::freeze(&oracle, shards));
        assert_eq!(snap.len(), oracle.len(), "shards={shards}");
        let server = BatchRecognizer::new(Arc::clone(&snap));
        let answers = server.recognize_batch(&probe_queries);
        assert_eq!(answers, expected, "shards={shards}");
        // The verdict-only fast path agrees with the full path.
        let bests = server.best_batch(&probe_queries);
        for (b, e) in bests.iter().zip(&expected) {
            assert_eq!(b.as_deref(), e.best(), "shards={shards}");
        }
    }
}

#[test]
fn snapshots_taken_mid_write_never_shrink() {
    let observations = corpus(8, 6, 0xABCD);
    let sharded = ShardedDictionary::new(RoundingDepth::new(2), 8);
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        s.spawn(|| {
            sharded.learn_all(&observations);
            done.store(true, Ordering::Relaxed);
        });
        s.spawn(|| {
            // Entries are only ever added; successive snapshots must be
            // monotonically non-shrinking even while writes race.
            let mut last = 0usize;
            while !done.load(Ordering::Relaxed) {
                let snap = sharded.snapshot();
                let n = snap.len();
                assert!(n >= last, "snapshot shrank: {n} < {last}");
                last = n;
            }
        });
    });

    // The final snapshot is the complete dictionary.
    let oracle = oracle(&observations);
    assert_eq!(sharded.snapshot().len(), oracle.len());
}

#[test]
fn concurrent_learning_from_frozen_parts_round_trips() {
    // Freeze a learned dictionary into shards without re-learning, keep
    // learning new apps concurrently, and thaw back.
    let observations = corpus(6, 4, 0x1234);
    let base = oracle(&observations);
    let sharded = ShardedDictionary::from_parts(base.to_parts(), 8);

    let extra = corpus(4, 4, 0x9999)
        .into_iter()
        .map(|mut o| {
            o.label = AppLabel::new(format!("new_{}", o.label.app), o.label.input);
            // Shift levels away from the base corpus.
            for p in &mut o.query.points {
                p.mean += 40_000.0;
            }
            o
        })
        .collect::<Vec<_>>();

    std::thread::scope(|s| {
        for chunk in extra.chunks(extra.len().div_ceil(3)) {
            let sharded = &sharded;
            s.spawn(move || sharded.learn_all(chunk));
        }
    });

    // Equivalent single-threaded history: base then extra.
    let mut all = observations.clone();
    all.extend(extra.iter().cloned());
    let oracle_all = oracle(&all);

    let merged = sharded.into_dictionary();
    assert_eq!(merged.len(), oracle_all.len());
    for q in queries(10, 128, 0x7777) {
        assert_eq!(
            merged.recognize(&q).normalized(),
            oracle_all.recognize(&q).normalized()
        );
    }
    for obs in &extra {
        assert_eq!(
            merged.recognize(&obs.query).best(),
            oracle_all.recognize(&obs.query).best()
        );
    }
}
