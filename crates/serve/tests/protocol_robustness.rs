//! Adversarial wire-protocol tests: torn and truncated frames,
//! oversized length prefixes, malformed payloads, bad command
//! sequences, abrupt mid-stream disconnects, and a slow-loris idle
//! client. The daemon's contract under all of them: a structured
//! `ERR <kind> <message>` response or a clean connection drop, the
//! matching `efd_protocol_errors_total{kind=...}` increment — and
//! never a panic, a wedged worker, or a hung test.
//!
//! Worker health is proven the strict way: most tests run a
//! **single-worker** daemon, so if a malformed connection could wedge
//! its worker, the follow-up well-formed connection would hang and the
//! harness's 10 s receive deadline would fail the test.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use common::*;
use efd_serve::net::{Server, MAX_FRAME};

/// A one-worker daemon over the harness corpus — the strictest setting
/// for proving workers survive and recover from bad peers.
fn one_worker_server(tweak: impl FnOnce(&mut efd_serve::net::ServerConfig)) -> Server {
    let dict = dict_with(&[("ft", 6000.0)]);
    start_server(snapshot_engine(&dict), |cfg| {
        cfg.workers = 1;
        tweak(cfg);
    })
}

/// Count of one error kind as currently exported by the daemon.
fn error_count(server: &Server, kind: &str) -> u64 {
    let needle = format!("efd_protocol_errors_total{{kind=\"{kind}\"}} ");
    server
        .metrics_text()
        .lines()
        .find_map(|l| l.strip_prefix(&needle).and_then(|v| v.parse().ok()))
        .unwrap_or(0)
}

/// Prove the (single) worker is free and sane by completing a
/// well-formed request on a fresh connection.
fn assert_daemon_healthy(server: &Server) {
    let mut probe = Client::connect(server.local_addr());
    assert_eq!(probe.request("PING"), "PONG");
}

#[test]
fn torn_length_prefix_is_counted_and_dropped_cleanly() {
    let server = one_worker_server(|_| {});
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&[42u8, 0]).expect("2 of 4 prefix bytes");
    drop(stream); // close mid-prefix
    wait_until("torn-prefix count", || error_count(&server, "torn") == 1);
    assert_daemon_healthy(&server);
    server.shutdown();
    server.join();
}

#[test]
fn truncated_payload_is_counted_and_dropped_cleanly() {
    let server = one_worker_server(|_| {});
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Promise 100 payload bytes, deliver 4, vanish.
    stream.write_all(&100u32.to_le_bytes()).expect("prefix");
    stream.write_all(b"PING").expect("partial payload");
    drop(stream);
    wait_until("torn-payload count", || error_count(&server, "torn") == 1);
    assert_daemon_healthy(&server);
    server.shutdown();
    server.join();
}

#[test]
fn oversized_prefix_gets_a_structured_refusal_then_the_connection_drops() {
    let server = one_worker_server(|_| {});
    let mut client = Client::connect(server.local_addr());
    client
        .stream
        .write_all(&(MAX_FRAME + 1).to_le_bytes())
        .expect("oversized prefix");
    let resp = client.recv_or_close().expect("structured refusal before the drop");
    assert!(
        resp.starts_with("ERR oversized"),
        "expected ERR oversized, got {resp:?}"
    );
    assert!(client.recv_or_close().is_none(), "connection must drop after refusal");
    assert_eq!(error_count(&server, "oversized"), 1);
    assert_daemon_healthy(&server);
    server.shutdown();
    server.join();
}

#[test]
fn zero_length_frame_gets_a_structured_refusal_then_the_connection_drops() {
    let server = one_worker_server(|_| {});
    let mut client = Client::connect(server.local_addr());
    client.stream.write_all(&0u32.to_le_bytes()).expect("empty prefix");
    let resp = client.recv_or_close().expect("structured refusal before the drop");
    assert!(resp.starts_with("ERR empty"), "got {resp:?}");
    assert!(client.recv_or_close().is_none(), "connection must drop after refusal");
    assert_eq!(error_count(&server, "empty"), 1);
    assert_daemon_healthy(&server);
    server.shutdown();
    server.join();
}

#[test]
fn malformed_payloads_answer_err_and_keep_the_connection_alive() {
    let server = one_worker_server(|_| {});
    let mut client = Client::connect(server.local_addr());
    let cases: Vec<String> = vec![
        "NOPE".into(),
        "PING trailing-garbage".into(),
        "RECOGNIZE".into(),                       // missing everything
        format!("RECOGNIZE {METRIC} 120 60 1.0"), // inverted window
        format!("RECOGNIZE {METRIC} 60 120"),     // no means
        format!("RECOGNIZE {METRIC} 60 120 NaN"),
        "STREAM".into(),
        format!("STREAM {METRIC} 0 60 120"),    // zero nodes
        format!("STREAM {METRIC} 9999 60 120"), // above the node cap
        "PUSH 1 2".into(),
        "PUSH 1 2 inf".into(),
        "LEARN app X m 60 120".into(), // no means
    ];
    for bad in &cases {
        let resp = client.request(bad);
        assert!(resp.starts_with("ERR malformed"), "{bad:?} answered {resp:?}");
        // Same connection keeps working after every rejection.
        assert_eq!(client.request("PING"), "PONG");
    }
    // A frame that is not UTF-8 at all.
    client.stream.write_all(&3u32.to_le_bytes()).expect("prefix");
    client.stream.write_all(&[0xFF, 0xFE, 0xFD]).expect("payload");
    let resp = client.recv();
    assert!(resp.starts_with("ERR malformed"), "got {resp:?}");
    assert_eq!(client.request("PING"), "PONG");
    assert_eq!(error_count(&server, "malformed"), cases.len() as u64 + 1);
    server.shutdown();
    server.join();
}

#[test]
fn unknown_metric_and_bad_sequences_are_structured_errors() {
    let server = one_worker_server(|_| {});
    let mut client = Client::connect(server.local_addr());
    let resp = client.request("RECOGNIZE not_a_metric 60 120 1.0 2.0");
    assert!(resp.starts_with("ERR unknown-metric"), "got {resp:?}");
    // PUSH and FINISH before STREAM.
    assert!(client.request("PUSH 0 0 1.0").starts_with("ERR bad-state"));
    assert!(client.request("FINISH").starts_with("ERR bad-state"));
    // Double STREAM on one connection.
    assert!(client
        .request(&format!("STREAM {METRIC} 1 60 120"))
        .starts_with("OPENED 1 "));
    assert!(client
        .request(&format!("STREAM {METRIC} 1 60 120"))
        .starts_with("ERR bad-state"));
    // LEARN against an immutable snapshot daemon.
    let resp = client.request(&format!("LEARN ft X {METRIC} 60 120 1.0"));
    assert!(resp.starts_with("ERR read-only"), "got {resp:?}");
    assert_eq!(error_count(&server, "bad-state"), 3);
    assert_eq!(error_count(&server, "unknown-metric"), 1);
    assert_eq!(error_count(&server, "read-only"), 1);
    drop(client); // free the single worker before probing
    assert_daemon_healthy(&server);
    server.shutdown();
    server.join();
}

#[test]
fn mid_stream_disconnect_frees_the_worker_without_a_verdict() {
    let server = one_worker_server(|_| {});
    {
        let mut client = Client::connect(server.local_addr());
        assert!(client
            .request(&format!("STREAM {METRIC} 2 60 120"))
            .starts_with("OPENED "));
        for t in 60..70u32 {
            assert!(client.request(&format!("PUSH 0 {t} 6005")).starts_with("ACK "));
        }
        // Vanish with the session open and samples buffered.
    }
    // The single worker must come back for the next connection, and the
    // abandoned session must not have produced a verdict.
    assert_daemon_healthy(&server);
    assert!(server.metrics_text().contains("efd_verdicts_total{verdict=\"recognized\"} 0"));
    server.shutdown();
    server.join();
}

#[test]
fn slow_loris_client_is_dropped_at_the_idle_timeout() {
    let server = one_worker_server(|cfg| cfg.idle_timeout = Duration::from_millis(300));
    let mut client = Client::connect(server.local_addr());
    // Dribble two prefix bytes, then go quiet mid-frame.
    client.stream.write_all(&[9u8, 0]).expect("dribble");
    wait_until("idle-timeout count", || {
        error_count(&server, "idle-timeout") == 1
    });
    assert!(
        client.recv_or_close().is_none(),
        "daemon must close the idle connection"
    );
    // The worker is free again for honest clients, and an honest client
    // that keeps talking is NOT idle-dropped.
    let mut honest = Client::connect(server.local_addr());
    for _ in 0..6 {
        assert_eq!(honest.request("PING"), "PONG");
        std::thread::sleep(Duration::from_millis(100));
    }
    assert_eq!(error_count(&server, "idle-timeout"), 1);
    server.shutdown();
    server.join();
}

#[test]
fn quiet_connection_with_no_bytes_is_also_idle_dropped() {
    // Idle accounting must cover the pre-sniff window too (a peer that
    // connects and never sends a byte).
    let server = one_worker_server(|cfg| cfg.idle_timeout = Duration::from_millis(300));
    let mut client = Client::connect(server.local_addr());
    wait_until("pre-sniff idle-timeout", || {
        error_count(&server, "idle-timeout") == 1
    });
    assert!(client.recv_or_close().is_none());
    assert_daemon_healthy(&server);
    server.shutdown();
    server.join();
}
