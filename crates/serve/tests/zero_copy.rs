//! Differential fuzz: owned vs zero-copy serving over the same bytes.
//!
//! A randomly generated dictionary is written to canonical EFDB bytes,
//! then served two ways — decoded into an owned [`Snapshot`] and mapped
//! in place by [`EfdbSnapshot`] — and both must answer every random
//! query exactly like the single-threaded [`EfdDictionary`] oracle
//! (modulo [`Recognition::normalized`] ordering, the engine API's answer
//! contract). Any divergence is a bug in one of the two [`KeyStore`]
//! implementations or in the binary format's ordering guarantees that
//! the zero-copy binary search relies on.

use efd_core::{binfmt, EfdDictionary, LabeledObservation, Query, Recognition, RoundingDepth};
use efd_serve::{EfdbSnapshot, Recognize, Snapshot, VoteScratch};
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::{AppLabel, Interval, MetricId};
use efd_util::SplitMix64;

const NODES: usize = 4;
fn intervals() -> [Interval; 2] {
    [Interval::PAPER_DEFAULT, Interval::new(60, 120)]
}

/// A random corpus spread over every metric in the small catalog, two
/// intervals, and app levels close enough that collisions happen.
fn corpus(apps: usize, reps: usize, metrics: usize, seed: u64) -> Vec<LabeledObservation> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();
    for a in 0..apps {
        let base = 3000.0 + 400.0 * a as f64;
        for r in 0..reps {
            let metric = MetricId((rng.next_u64() % metrics as u64) as u32);
            let interval = intervals()[(rng.next_u64() % 2) as usize];
            let input = ["X", "Y", "Z"][r % 3];
            let means: Vec<f64> = (0..NODES)
                .map(|_| base + (rng.next_f64() - 0.5) * 300.0)
                .collect();
            out.push(LabeledObservation {
                label: AppLabel::new(format!("app{a:02}"), input),
                query: Query::from_node_means(metric, interval, &means),
            });
        }
    }
    out
}

/// Random queries: near-corpus levels, unknown levels, unknown metrics,
/// and unknown intervals, all mixed.
fn random_queries(apps: usize, metrics: usize, count: usize, seed: u64) -> Vec<Query> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            // +2 on each axis: levels/metrics the corpus never learned.
            let a = (rng.next_u64() % (apps as u64 + 2)) as f64;
            let metric = MetricId((rng.next_u64() % (metrics as u64 + 2)) as u32);
            let interval = if rng.next_u64().is_multiple_of(8) {
                Interval::new(0, 30)
            } else {
                intervals()[(rng.next_u64() % 2) as usize]
            };
            let base = 3000.0 + 400.0 * a;
            let means: Vec<f64> = (0..NODES)
                .map(|_| base + (rng.next_f64() - 0.5) * 400.0)
                .collect();
            Query::from_node_means(metric, interval, &means)
        })
        .collect()
}

#[test]
fn owned_and_zero_copy_agree_with_the_oracle_on_random_queries() {
    let catalog = small_catalog();
    let metrics = catalog.len();
    for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
        let observations = corpus(24, 5, metrics, seed);
        let mut oracle = EfdDictionary::new(RoundingDepth::new(2));
        oracle.learn_all(&observations);

        let bytes = binfmt::write(&oracle.to_parts(), &catalog);
        let owned = Snapshot::from_efdb(&binfmt::read(&bytes).unwrap(), &catalog, 8).unwrap();
        let zero_copy = EfdbSnapshot::load(bytes, &catalog).unwrap();
        assert_eq!(zero_copy.len(), oracle.len(), "seed {seed:#x}: key count");

        let mut scratch = VoteScratch::default();
        let mut matched = 0usize;
        for (i, q) in random_queries(24, metrics, 1000, !seed).iter().enumerate() {
            let expected: Recognition = oracle.recognize(q).normalized();
            let via_owned = owned.recognize_into(q, &mut scratch);
            let via_bytes = zero_copy.recognize_into(q, &mut scratch);
            assert_eq!(via_owned, expected, "seed {seed:#x}, query #{i}: owned");
            assert_eq!(via_bytes, expected, "seed {seed:#x}, query #{i}: zero-copy");
            assert_eq!(
                zero_copy.best_with(q, &mut scratch),
                expected.best(),
                "seed {seed:#x}, query #{i}: zero-copy verdict fast path"
            );
            matched += usize::from(expected.matched_points > 0);
        }
        assert!(matched > 100, "seed {seed:#x}: degenerate query mix ({matched} hits)");
    }
}
