//! The fault-injection recovery matrix: the proof behind the WAL's
//! durability contract.
//!
//! The contract under test, for every injected fault: **recovery yields
//! exactly the prefix of operations that were durably acknowledged, and
//! post-recovery recognition is oracle-equivalent to a dictionary that
//! learned only that prefix.** Faults are injected three ways:
//!
//! * byte-level sweeps over a real log image (every truncation length,
//!   bit flips at every offset) — the disk's view;
//! * [`efd_core::wal::fault::FaultyWriter`] — the writer's view
//!   (silent truncation, short writes, in-flight corruption);
//! * filesystem-level scenarios against [`DurableDictionary`] — crash
//!   and reopen, eviction replay, stale segments from a crash between
//!   segment write and log reset.
//!
//! Oracle equivalence is conformance-suite style: compare against a
//! single-threaded [`EfdDictionary`] that applied the same operation
//! prefix, modulo [`Recognition::normalized`] ordering.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

use efd_core::engine::Recognize;
use efd_core::wal::fault::{Fault, FaultyWriter};
use efd_core::wal::{
    self, encode_log, frame_record, read_log, LearnRecord, SyncPolicy, WalDir, WalError,
    WalOptions, WalRecord, WAL_HEADER_LEN,
};
use efd_core::{binfmt, EfdDictionary, LabeledObservation, Query, Recognition, RoundingDepth};
use efd_serve::DurableDictionary;
use efd_telemetry::catalog::small_catalog;
use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::{AppLabel, Interval, MetricId};

const DEPTH: u8 = 2;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "efd-durability-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn obs(app: &str, input: &str, means: &[f64]) -> LabeledObservation {
    LabeledObservation {
        label: AppLabel::new(app, input),
        query: Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, means),
    }
}

/// A deterministic operation stream: 8 learns across 5 applications,
/// then a forget, then 2 more learns — enough structure that any
/// off-by-one in prefix recovery flips an answer.
fn op_stream() -> Vec<LabeledObservation> {
    vec![
        obs("ft", "X", &[6020.0, 6020.0, 6020.0, 6020.0]),
        obs("ft", "Y", &[6023.0, 6019.0, 6021.0, 6018.0]),
        obs("sp", "X", &[7617.0, 7520.0, 7520.0, 7121.0]),
        obs("bt", "X", &[7638.0, 7540.0, 7540.0, 7140.0]),
        obs("miniAMR", "X", &[7820.0; 4]),
        obs("miniAMR", "Z", &[10980.0; 4]),
        obs("cg", "X", &[8110.0, 8105.0, 8120.0, 8099.0]),
        obs("cg", "Y", &[9320.0, 9310.0, 9305.0, 9331.0]),
        obs("lu", "X", &[5510.0, 5505.0, 5520.0, 5516.0]),
        obs("lu", "Y", &[4420.0, 4425.0, 4410.0, 4431.0]),
    ]
}

fn probe_queries() -> Vec<Query> {
    let w = Interval::PAPER_DEFAULT;
    vec![
        Query::from_node_means(MetricId(0), w, &[6031.0, 5988.0, 6007.0, 6044.0]),
        Query::from_node_means(MetricId(0), w, &[7601.0, 7512.0, 7533.0, 7098.0]),
        Query::from_node_means(MetricId(0), w, &[10951.0, 11020.0, 10990.0, 11043.0]),
        Query::from_node_means(MetricId(0), w, &[8101.0, 8099.0, 8123.0, 8100.0]),
        Query::from_node_means(MetricId(0), w, &[5503.0, 5512.0, 5521.0, 5508.0]),
        Query::from_node_means(MetricId(0), w, &[4417.0, 4430.0, 4402.0, 4433.0]),
        Query::from_node_means(MetricId(0), w, &[1.0, 2.0, 3.0, 4.0]),
    ]
}

/// The oracle for a given acknowledged prefix length.
fn oracle_for_prefix(stream: &[LabeledObservation], n: usize) -> EfdDictionary {
    let mut d = EfdDictionary::new(RoundingDepth::new(DEPTH));
    for o in &stream[..n] {
        d.learn(o);
    }
    d
}

fn assert_oracle_equivalent(got: &EfdDictionary, oracle: &EfdDictionary, ctx: &str) {
    assert_eq!(got.len(), oracle.len(), "{ctx}: key count diverged");
    for (i, q) in probe_queries().iter().enumerate() {
        assert_eq!(
            got.recognize(q).normalized(),
            oracle.recognize(q).normalized(),
            "{ctx}: probe #{i} diverged"
        );
    }
}

fn learn_records(stream: &[LabeledObservation], catalog: &MetricCatalog) -> Vec<WalRecord> {
    stream
        .iter()
        .map(|o| WalRecord::Learn(LearnRecord::from_observation(o, catalog)))
        .collect()
}

/// Replay a log image (as `read_log` sees it) into a dictionary,
/// returning the record count that survived.
fn replay_image(bytes: &[u8], catalog: &MetricCatalog) -> (EfdDictionary, usize, Option<WalError>) {
    let replay = read_log(bytes).expect("header intact");
    let mut dict = EfdDictionary::new(replay.depth);
    for (i, rec) in replay.records.iter().enumerate() {
        wal::apply_record(&mut dict, rec, catalog, i).unwrap();
    }
    let n = replay.records.len();
    (dict, n, replay.fault)
}

#[test]
fn truncation_sweep_recovers_exactly_the_durable_prefix() {
    // Sweep EVERY byte length of the log image. For each cut, the
    // records whose frames fully fit are the "durably acknowledged"
    // prefix; recovery must reproduce exactly that oracle.
    let catalog = small_catalog();
    let stream = op_stream();
    let records = learn_records(&stream, &catalog);
    let image = encode_log(RoundingDepth::new(DEPTH), 0, &records);

    // Frame boundaries: boundary[i] = offset where record i's frame starts.
    let mut bounds = vec![WAL_HEADER_LEN];
    for r in &records {
        bounds.push(bounds.last().unwrap() + frame_record(r).len());
    }
    assert_eq!(*bounds.last().unwrap(), image.len());

    for cut in WAL_HEADER_LEN..=image.len() {
        let (dict, n, fault) = replay_image(&image[..cut], &catalog);
        let expect_n = bounds.iter().filter(|&&b| b > WAL_HEADER_LEN && b <= cut).count();
        assert_eq!(n, expect_n, "cut at {cut}");
        assert_eq!(
            fault.is_none(),
            bounds.contains(&cut),
            "cut at {cut}: fault iff mid-frame"
        );
        assert_oracle_equivalent(
            &dict,
            &oracle_for_prefix(&stream, n),
            &format!("truncation at byte {cut}"),
        );
    }
}

#[test]
fn bit_flip_sweep_never_recovers_a_wrong_dictionary() {
    // Flip one bit at every byte offset in the record region. The
    // recovered dictionary must always equal the oracle of SOME prefix —
    // the one up to the first record whose bytes were damaged — never a
    // dictionary with a corrupted mean or label smuggled in.
    let catalog = small_catalog();
    let stream = op_stream();
    let records = learn_records(&stream, &catalog);
    let image = encode_log(RoundingDepth::new(DEPTH), 0, &records);
    let mut bounds = vec![WAL_HEADER_LEN];
    for r in &records {
        bounds.push(bounds.last().unwrap() + frame_record(r).len());
    }

    for at in WAL_HEADER_LEN..image.len() {
        let mut corrupt = image.clone();
        corrupt[at] ^= 0x10;
        // The damaged record is the one whose frame contains `at`.
        let damaged = bounds.iter().filter(|&&b| b <= at).count() - 1;
        let (dict, n, fault) = replay_image(&corrupt, &catalog);
        // A flip in a length word can masquerade as a longer/shorter
        // frame, so the scan may stop at `damaged` with any tail fault —
        // but it must never sail past it with the corruption undetected,
        // and everything before the damaged record must survive.
        assert!(
            n <= damaged,
            "flip at {at}: recovered {n} records past damaged #{damaged}"
        );
        assert!(
            fault.is_some(),
            "flip at {at}: corruption skipped without a reported fault"
        );
        assert_oracle_equivalent(
            &dict,
            &oracle_for_prefix(&stream, n),
            &format!("bit flip at byte {at}"),
        );
    }
}

#[test]
fn faulty_writer_truncation_and_short_writes_keep_the_acked_prefix() {
    let catalog = small_catalog();
    let stream = op_stream();
    let records = learn_records(&stream, &catalog);
    let image = encode_log(RoundingDepth::new(DEPTH), 0, &records);

    // Silent truncation (power loss with data in the page cache): the
    // writer believes everything landed; only a prefix did. Sweep the
    // surviving length across the whole image.
    for keep in WAL_HEADER_LEN..=image.len() {
        let mut w = FaultyWriter::new(Fault::TruncateAt(keep));
        w.write_all(&encode_log(RoundingDepth::new(DEPTH), 0, &[]))
            .unwrap();
        for r in &records {
            w.write_all(&frame_record(r)).unwrap(); // always "succeeds"
        }
        let survived = w.into_bytes();
        assert_eq!(survived.len(), keep);
        let (dict, n, _) = replay_image(&survived, &catalog);
        assert_oracle_equivalent(
            &dict,
            &oracle_for_prefix(&stream, n),
            &format!("silent truncation at {keep}"),
        );
    }

    // Short write (disk full): the writer SEES the error, so records
    // before the failure are acknowledged and must all survive; the
    // failed record was never acknowledged and may be torn away.
    for keep in WAL_HEADER_LEN..=image.len() {
        let mut w = FaultyWriter::new(Fault::ShortWriteAt(keep));
        w.write_all(&encode_log(RoundingDepth::new(DEPTH), 0, &[]))
            .unwrap();
        let mut acked = 0usize;
        for r in &records {
            match w.write_all(&frame_record(r)) {
                Ok(()) => acked += 1,
                Err(_) => break,
            }
        }
        let survived = w.into_bytes();
        let (dict, n, _) = replay_image(&survived, &catalog);
        assert!(
            n >= acked,
            "short write at {keep}: lost acknowledged record ({n} < {acked})"
        );
        assert_oracle_equivalent(
            &dict,
            &oracle_for_prefix(&stream, n),
            &format!("short write at {keep}"),
        );
    }

    // In-flight bit corruption: one byte flipped while passing through
    // the writer — detected by the record CRC on replay.
    let flip_at = WAL_HEADER_LEN + frame_record(&records[0]).len() + 15;
    let mut w = FaultyWriter::new(Fault::BitFlipAt {
        offset: flip_at,
        mask: 0x08,
    });
    w.write_all(&image).unwrap();
    let (dict, n, fault) = replay_image(&w.into_bytes(), &catalog);
    assert_eq!(n, 1, "corruption in record #1 leaves only record #0");
    assert!(fault.is_some());
    assert_oracle_equivalent(&dict, &oracle_for_prefix(&stream, 1), "in-flight bit flip");
}

#[test]
fn crash_reopen_cycles_preserve_every_acknowledged_operation() {
    // Learn through a DurableDictionary under SyncPolicy::Always,
    // dropping it cold (no shutdown path) at every step count, and prove
    // the reopened service answers as the prefix oracle.
    let catalog = small_catalog();
    let stream = op_stream();
    let depth = RoundingDepth::new(DEPTH);
    let options = WalOptions {
        sync: SyncPolicy::Always,
        ..Default::default()
    };

    for crash_after in 0..=stream.len() {
        let dir = tmp_dir(&format!("crash{crash_after}"));
        {
            let (served, _) =
                DurableDictionary::open(&dir, depth, 4, &catalog, options).unwrap();
            for o in &stream[..crash_after] {
                served.learn(o).unwrap();
            }
            // `served` dropped here without sync/freeze: the "crash".
        }
        let (served, recovery) =
            DurableDictionary::open(&dir, depth, 4, &catalog, options).unwrap();
        assert_eq!(recovery.replayed, crash_after);
        assert!(recovery.tail_fault.is_none());
        let oracle = oracle_for_prefix(&stream, crash_after);
        let got = served.dictionary();
        assert_eq!(got.len(), oracle.len());
        for (i, q) in probe_queries().iter().enumerate() {
            assert_eq!(
                got.recognize(q),
                oracle.recognize(q).normalized(),
                "crash after {crash_after}: probe #{i}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn eviction_composes_with_replay_and_does_not_resurrect() {
    // The maintenance satellite: aging/eviction through the durable path
    // must survive recovery — an evicted application stays evicted, and
    // later learns still land.
    let catalog = small_catalog();
    let stream = op_stream();
    let depth = RoundingDepth::new(DEPTH);
    let options = WalOptions {
        sync: SyncPolicy::Always,
        ..Default::default()
    };
    let dir = tmp_dir("evict");

    {
        let (served, _) = DurableDictionary::open(&dir, depth, 4, &catalog, options).unwrap();
        for o in &stream[..6] {
            served.learn(o).unwrap();
        }
        assert!(served.forget_app("miniAMR").unwrap() > 0);
        // ft/Y's keys are all shared with ft/X at this depth, so the
        // label strip empties no key — the return counts dropped keys.
        assert_eq!(served.forget_label("ft", "Y").unwrap(), 0);
        // Freeze mid-life so part of the history lives in a segment and
        // part in the log tail — eviction must survive BOTH replay paths.
        served.freeze().unwrap();
        for o in &stream[6..] {
            served.learn(o).unwrap();
        }
        served.forget_app("cg").unwrap();
    }

    let (served, recovery) = DurableDictionary::open(&dir, depth, 4, &catalog, options).unwrap();
    assert_eq!(recovery.segments, 1);

    // Oracle: same operations on the single-threaded maintenance path.
    let mut oracle = oracle_for_prefix(&stream, 6);
    efd_core::maintenance::forget_app(&mut oracle, "miniAMR");
    efd_core::maintenance::forget_label(&mut oracle, "ft", "Y");
    for o in &stream[6..] {
        oracle.learn(o);
    }
    efd_core::maintenance::forget_app(&mut oracle, "cg");

    let got = served.dictionary();
    assert_eq!(got.len(), oracle.len());
    let w = Interval::PAPER_DEFAULT;
    for (means, expect) in [
        ([7821.0, 7819.0, 7820.0, 7822.0], None),      // miniAMR evicted
        ([8110.0, 8105.0, 8120.0, 8099.0], None),      // cg evicted post-freeze
        ([5503.0, 5512.0, 5521.0, 5508.0], Some("lu")), // learned post-freeze
        ([6020.0, 6020.0, 6020.0, 6020.0], Some("ft")), // ft X survives ft/Y eviction
    ] {
        let q = Query::from_node_means(MetricId(0), w, &means);
        assert_eq!(got.recognize(&q).best(), expect, "query {means:?}");
        assert_eq!(
            oracle.recognize(&q).best(),
            expect,
            "oracle disagrees for {means:?} — test premise broken"
        );
    }
    for (i, q) in probe_queries().iter().enumerate() {
        let got_r: Recognition = got.recognize(q);
        assert_eq!(got_r, oracle.recognize(q).normalized(), "probe #{i}");
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_segment_from_crash_between_freeze_and_log_reset_is_safe() {
    // Simulate the freeze crash window: the segment file was renamed
    // into place, but the process died before the log was reset — the
    // log still holds every operation the segment captured.
    let catalog = small_catalog();
    let stream = op_stream();
    let depth = RoundingDepth::new(DEPTH);
    let dir = tmp_dir("stale");
    let records = learn_records(&stream, &catalog);

    let (mut wal, _) = WalDir::open(&dir, depth, &catalog, WalOptions::default()).unwrap();
    for r in &records {
        wal.append(r).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);

    // Hand-write the stale segment exactly as freeze would, WITHOUT
    // touching the log (header still says base_segments = 0).
    let oracle = oracle_for_prefix(&stream, stream.len());
    fs::write(
        dir.join("segment-000001.efdb"),
        binfmt::write_dictionary(&oracle, &catalog),
    )
    .unwrap();

    let recovery = wal::recover(&dir, &catalog).unwrap();
    assert_eq!(recovery.segments, 1, "stale segment is seen");
    assert_eq!(recovery.replayed, records.len(), "log still replays");
    assert_oracle_equivalent(&recovery.dictionary, &oracle, "stale segment");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn on_disk_corruption_is_truncated_once_and_heals_on_append() {
    // Flip a byte of the log on disk; reopening truncates to the valid
    // prefix (reporting the fault), and the NEXT session appends cleanly
    // from the truncation point.
    let catalog = small_catalog();
    let stream = op_stream();
    let depth = RoundingDepth::new(DEPTH);
    let options = WalOptions {
        sync: SyncPolicy::Always,
        ..Default::default()
    };
    let dir = tmp_dir("heal");

    {
        let (served, _) = DurableDictionary::open(&dir, depth, 4, &catalog, options).unwrap();
        for o in &stream[..6] {
            served.learn(o).unwrap();
        }
    }
    // Corrupt a byte inside record #4's region.
    let log_path = dir.join(wal::LOG_FILE);
    let mut bytes = fs::read(&log_path).unwrap();
    let replay = read_log(&bytes).unwrap();
    assert_eq!(replay.records.len(), 6);
    let mut bound = WAL_HEADER_LEN;
    for r in &replay.records[..4] {
        bound += frame_record(r).len();
    }
    bytes[bound + 20] ^= 0x04;
    fs::write(&log_path, &bytes).unwrap();

    {
        let (served, recovery) =
            DurableDictionary::open(&dir, depth, 4, &catalog, options).unwrap();
        assert_eq!(recovery.replayed, 4, "stop at last valid record");
        assert!(
            matches!(recovery.tail_fault, Some(WalError::CorruptRecord { offset, .. })
                if offset == bound as u64),
            "fault reports the corrupt record's byte position"
        );
        assert!(recovery.truncated_bytes > 0);
        // Keep learning: appends land after the truncated prefix.
        for o in &stream[6..8] {
            served.learn(o).unwrap();
        }
    }
    let (served, recovery) = DurableDictionary::open(&dir, depth, 4, &catalog, options).unwrap();
    assert!(recovery.tail_fault.is_none(), "log healed by truncation");
    assert_eq!(recovery.replayed, 6, "4 surviving + 2 new records");
    let mut oracle = oracle_for_prefix(&stream, 4);
    for o in &stream[6..8] {
        oracle.learn(o);
    }
    let got = served.dictionary();
    assert_eq!(got.len(), oracle.len());
    for (i, q) in probe_queries().iter().enumerate() {
        assert_eq!(got.recognize(q), oracle.recognize(q).normalized(), "probe #{i}");
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_output_is_canonical_bytes_equal_to_a_from_scratch_dump() {
    // The compaction correctness oracle from the issue: for a learn-only
    // history, `compact` must produce byte-identical EFDB to dumping a
    // dictionary that learned the same stream from scratch.
    let catalog = small_catalog();
    let stream = op_stream();
    let depth = RoundingDepth::new(DEPTH);
    let dir = tmp_dir("compact");
    let options = WalOptions {
        sync: SyncPolicy::Always,
        // Tiny threshold: force several freeze cycles along the way.
        segment_bytes: 256,
    };

    {
        let (served, _) = DurableDictionary::open(&dir, depth, 4, &catalog, options).unwrap();
        for o in &stream {
            served.learn(o).unwrap();
        }
    }
    let report = wal::compact_in_place(&dir, &catalog).unwrap();
    let compacted = fs::read(&report.segment).unwrap();
    let oracle = oracle_for_prefix(&stream, stream.len());
    assert_eq!(
        compacted,
        binfmt::write_dictionary(&oracle, &catalog),
        "compacted segment must be canonical-bytes-equal to a from-scratch dump"
    );

    // And the directory still recovers to the same dictionary.
    let recovery = wal::recover(&dir, &catalog).unwrap();
    assert_oracle_equivalent(&recovery.dictionary, &oracle, "post-compaction recovery");
    fs::remove_dir_all(&dir).unwrap();
}
