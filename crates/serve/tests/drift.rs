//! Acceptance test for the catalog drift story: a daemon serving a
//! manifest-stacked engine with a published baseline must raise the
//! drift alarm under an injected `concept-drift` workload, and clear
//! it after a `SWAP` to a version re-learned on the drifted runs.
//!
//! Everything is deterministic: the dataset, the scenario perturbation,
//! and the drift-monitor judgement are pure functions of fixed seeds,
//! and verdicts are recorded synchronously with each `RECOGNIZE`
//! response — no sleeps, no polling.

mod common;

use std::sync::Arc;

use common::*;
use efd_catalog::{Manifest, StageBackend};
use efd_core::engine::Recognize;
use efd_core::multi::ComboDictionary;
use efd_core::{EfdDictionary, LabeledObservation, Query, RoundingDepth, Verdict};
use efd_serve::net::{DriftBaseline, DriftConfig, DriftState, Engine};
use efd_serve::{ComboSnapshot, Snapshot, StackedRecognizer, StackedStage};
use efd_telemetry::Interval;
use efd_workload::scenario::{build, CleanRuns, ScenarioKind, ScenarioSpec};
use efd_workload::{Dataset, DatasetSpec};

/// The stack shape under test, declared the way operators declare it: a
/// `recognizer.v1` manifest. The artifact names are symbolic here — the
/// test builds the stage engines from one in-process dictionary — but
/// precedence and confidence bars come straight from the manifest.
fn manifest() -> Manifest {
    Manifest::parse(
        r#"{
            "schema": "recognizer.v1",
            "name": "drift-demo",
            "stack": [
                {"backend": "exact", "artifact": "drift-demo", "min_confidence": 0.6},
                {"backend": "combo", "artifact": "drift-demo", "min_confidence": 0.5}
            ]
        }"#,
    )
    .expect("manifest literal parses")
}

/// Build the manifest's stack over one dictionary and wrap it as a
/// served engine tagged with a catalog version and its baseline.
fn stacked_engine(dict: &EfdDictionary, version: &str, baseline: DriftBaseline) -> Engine {
    Engine::fixed(Arc::new(stack_for(dict)), dict.len(), "stacked")
        .with_version(version)
        .with_baseline(baseline)
}

fn stack_for(dict: &EfdDictionary) -> StackedRecognizer {
    let stages = manifest()
        .stack
        .iter()
        .map(|s| {
            let engine: Arc<dyn Recognize + Send + Sync> = match s.backend {
                StageBackend::Exact => Arc::new(Snapshot::freeze(dict, 4)),
                StageBackend::Combo => Arc::new(ComboSnapshot::freeze(
                    ComboDictionary::from_single_metric(dict).expect("non-empty dict"),
                )),
                _ => unreachable!("manifest literal only stacks exact and combo"),
            };
            StackedStage {
                name: s.backend.to_string(),
                engine,
                min_confidence: s.min_confidence,
            }
        })
        .collect();
    StackedRecognizer::new(stages)
}

/// The scenario substrate: the deterministic public dataset reduced to
/// per-run window means, plus the concept-drift perturbation at full
/// intensity (runs shift up to +35% by the end of the sequence).
fn drift_scenario() -> efd_workload::scenario::ScenarioData {
    let dataset = Dataset::with_catalog(DatasetSpec::default(), catalog());
    let metric = dataset.catalog().id(METRIC).expect("harness metric");
    let clean = CleanRuns::from_dataset(&dataset, metric, Interval::PAPER_DEFAULT);
    build(
        &clean,
        &ScenarioSpec {
            kind: ScenarioKind::ConceptDrift,
            intensity: 1.0,
            seed: 9,
        },
    )
}

fn learn_runs(dict: &mut EfdDictionary, runs: &[efd_workload::scenario::ScenarioRun]) {
    for run in runs {
        let label = run.truth.clone().expect("labeled run");
        dict.learn(&LabeledObservation {
            label,
            query: Query::from_node_means(M, W, &run.means),
        });
    }
}

/// Offline abstention rates of `engine` over `runs` — what `efd catalog
/// publish` measures and stores as the version's baseline.
fn measure_baseline(engine: &dyn Recognize, runs: &[efd_workload::scenario::ScenarioRun]) -> DriftBaseline {
    let (mut unknown, mut ambiguous) = (0usize, 0usize);
    for run in runs {
        match engine.recognize(&Query::from_node_means(M, W, &run.means)).verdict {
            Verdict::Recognized(_) => {}
            Verdict::Ambiguous(_) => ambiguous += 1,
            _ => unknown += 1,
        }
    }
    DriftBaseline {
        unknown_rate: unknown as f64 / runs.len() as f64,
        ambiguous_rate: ambiguous as f64 / runs.len() as f64,
    }
}

fn recognize_run_line(means: &[f64]) -> String {
    let rendered: Vec<String> = means.iter().map(|m| m.to_string()).collect();
    format!("RECOGNIZE {METRIC} {} {} {}", W.start, W.end, rendered.join(" "))
}

#[test]
fn concept_drift_raises_the_alarm_and_a_relearned_swap_clears_it() {
    let data = drift_scenario();
    // Version 1 knows only the clean training runs.
    let mut v1 = EfdDictionary::new(RoundingDepth::new(3));
    learn_runs(&mut v1, &data.train);
    // Version 2 is re-learned with the drifted test runs folded in — the
    // online-relearning arm the scenario's `relearn` flag marks.
    let mut v2 = v1.clone();
    learn_runs(&mut v2, &data.test);

    // The drifted tail: the last quarter of the ordered test sequence,
    // where the ramp has shifted fingerprints far outside v1's keys.
    let tail = &data.test[data.test.len() - data.test.len() / 4..];
    let baseline_v1 = measure_baseline(&stack_for(&v1), &data.train);
    let baseline_v2 = measure_baseline(&stack_for(&v2), &data.test);
    assert!(
        baseline_v1.unknown_rate < 0.05,
        "v1 must know its own training runs (unknown rate {})",
        baseline_v1.unknown_rate
    );

    // Small monitor so the test needs only a few dozen verdicts: judge
    // after 16 samples over a 64-verdict window, alarm at +0.15.
    let drift_cfg = DriftConfig {
        window: 64,
        min_samples: 16,
        margin: 0.15,
    };
    let v2_engine = stacked_engine(&v2, "drift-demo@v2", baseline_v2);
    let server = start_server(
        stacked_engine(&v1, "drift-demo@v1", baseline_v1),
        move |cfg| {
            cfg.drift = drift_cfg;
            // Bare `SWAP` rebuilds through the configured loader — the
            // manifest-serving reload path — which here hands back the
            // re-learned v2 publication.
            cfg.reload_path = Some(std::path::PathBuf::from("drift-demo.manifest.json"));
            cfg.loader = Some(Arc::new(move |_p| Ok(v2_engine.clone())));
        },
    );
    let mut client = Client::connect(server.local_addr());

    // Before any traffic: the monitor is warming and STATUS carries the
    // served catalog version, backend, and published baseline.
    let status = client.request("STATUS");
    assert!(
        status.starts_with("STATUS gen=1 version=drift-demo@v1 backend=stacked"),
        "unexpected status {status:?}"
    );
    assert!(status.contains("drift=warming samples=0"), "{status:?}");
    assert_eq!(server.drift_snapshot().state, DriftState::Warming);

    // Inject the drift workload: replay the drifted tail until the
    // window has enough samples to judge. Every query is answered
    // before the next is sent, so the alarm edge is deterministic.
    let mut sent = 0usize;
    'drift: loop {
        for run in tail {
            let resp = client.request(&recognize_run_line(&run.means));
            assert!(resp.starts_with("OK 1 "), "unexpected answer {resp:?}");
            sent += 1;
            if sent >= drift_cfg.min_samples {
                break 'drift;
            }
        }
    }
    let snap = server.drift_snapshot();
    assert_eq!(
        snap.state,
        DriftState::Alarm,
        "drifted tail must trip the alarm (unknown_rate {} vs baseline {} + {})",
        snap.unknown_rate,
        baseline_v1.unknown_rate,
        drift_cfg.margin
    );
    assert!(
        snap.unknown_rate > baseline_v1.unknown_rate + drift_cfg.margin,
        "alarm must be explained by the unknown rate ({snap:?})"
    );
    let status = client.request("STATUS");
    assert!(status.contains("drift=alarm"), "{status:?}");

    // The alarm is visible to scrapers, tagged with the served version.
    let (_, body) = http_get(server.local_addr(), "/metrics");
    for needle in [
        "efd_drift_alarm 1",
        "efd_catalog_info{version=\"drift-demo@v1\"} 1",
        &format!("efd_drift_window_samples {}", drift_cfg.min_samples),
        &format!(
            "efd_drift_baseline_unknown_rate {}",
            baseline_v1.unknown_rate
        ),
    ] {
        assert!(body.contains(needle), "missing {needle:?} in scrape:\n{body}");
    }

    // SWAP to the re-learned version: the loader rebuilds the stack,
    // the baseline is republished, and the monitor restarts clean.
    assert_eq!(
        client.request("SWAP"),
        format!("SWAPPED 2 {} drift-demo@v2", v2.len())
    );
    assert_eq!(
        server.drift_snapshot().state,
        DriftState::Warming,
        "a swap republishes the baseline and resets the window"
    );

    // The same drifted traffic is in-dictionary for v2: once the new
    // window can judge, the monitor settles at Ok — the alarm cleared.
    let mut sent = 0usize;
    'after: loop {
        for run in tail {
            let resp = client.request(&recognize_run_line(&run.means));
            assert!(resp.starts_with("OK 2 "), "unexpected answer {resp:?}");
            sent += 1;
            if sent >= drift_cfg.min_samples {
                break 'after;
            }
        }
    }
    let snap = server.drift_snapshot();
    assert_eq!(snap.state, DriftState::Ok, "relearned version clears the alarm: {snap:?}");
    let status = client.request("STATUS");
    assert!(
        status.starts_with("STATUS gen=2 version=drift-demo@v2 backend=stacked"),
        "{status:?}"
    );
    assert!(status.contains("drift=ok"), "{status:?}");
    let (_, body) = http_get(server.local_addr(), "/metrics");
    assert!(body.contains("efd_drift_alarm 0"), "{body}");
    assert!(
        body.contains("efd_catalog_info{version=\"drift-demo@v2\"} 1"),
        "{body}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn baseline_free_engines_never_alarm_under_the_same_drift() {
    // The same drifted workload against the same v1 stack, but served
    // without a published baseline: the monitor must stay warming —
    // alarms are judgements against a published version, not absolute
    // thresholds.
    let data = drift_scenario();
    let mut v1 = EfdDictionary::new(RoundingDepth::new(3));
    learn_runs(&mut v1, &data.train);
    let tail = &data.test[data.test.len() - data.test.len() / 4..];

    let engine = Engine::fixed(Arc::new(stack_for(&v1)), v1.len(), "stacked")
        .with_version("drift-demo@v1");
    let server = start_server(engine, |cfg| {
        cfg.drift = DriftConfig {
            window: 64,
            min_samples: 16,
            margin: 0.15,
        };
    });
    let mut client = Client::connect(server.local_addr());
    for _ in 0..3 {
        for run in tail {
            client.request(&recognize_run_line(&run.means));
        }
    }
    let snap = server.drift_snapshot();
    assert_eq!(
        snap.state,
        DriftState::Ok,
        "no baseline ⇒ no judgement to alarm against: {snap:?}"
    );
    assert!(snap.unknown_rate > 0.5, "the drifted tail IS mostly unknown: {snap:?}");
    assert!(snap.baseline.is_none());
    let status = client.request("STATUS");
    assert!(status.contains("baseline_unknown=- baseline_ambiguous=-"), "{status:?}");

    server.shutdown();
    server.join();
}
