//! End-to-end daemon tests over real sockets.
//!
//! Every test binds `127.0.0.1:0` (ephemeral port), speaks the framed
//! wire protocol through [`common::Client`], and asserts against the
//! single-threaded [`EfdDictionary`] oracle — the serving layer's
//! equivalence contract extended across the network boundary: framing,
//! worker handoff, and hot swaps must not change answers.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::*;
use efd_core::wal::WalOptions;
use efd_core::RoundingDepth;
use efd_serve::net::protocol::render_answer;
use efd_serve::net::load_engine;
use efd_serve::DurableDictionary;

/// The harness corpus: distinct apps, one deliberate ambiguous pair
/// (`aa`/`bb` at the same level).
fn corpus() -> Vec<(&'static str, f64)> {
    vec![
        ("ft", 6000.0),
        ("cg", 8110.0),
        ("mg", 3000.0),
        ("aa", 7500.0),
        ("bb", 7500.0),
    ]
}

/// A query mix hitting every verdict kind: exact levels, a level inside
/// the rounding bucket, the ambiguous pair, a miss, and a split vote.
fn query_mix() -> Vec<[f64; 2]> {
    vec![
        [6000.0, 6000.0],
        [6010.0, 6000.0],
        [8110.0, 8110.0],
        [3000.0, 3000.0],
        [7500.0, 7500.0],
        [1234.5, 999.0],
        [6000.0, 8110.0],
    ]
}

#[test]
fn concurrent_clients_match_the_single_threaded_oracle_on_every_backend() {
    let dict = dict_with(&corpus());
    // Expected responses come from the core oracle, normalized — the
    // exact bytes every backend must put on the wire at generation 1.
    let expected: Vec<(String, String)> = query_mix()
        .iter()
        .map(|means| {
            let rec = dict.recognize(&query(means)).normalized();
            (recognize_line(means), render_answer("OK", 1, &rec))
        })
        .collect();

    for engine in engines_for(&dict) {
        let kind = engine.kind;
        let server = start_server(engine, |cfg| cfg.workers = 4);
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    for i in 0..25 * expected.len() {
                        let (line, want) = &expected[(i + t) % expected.len()];
                        let got = client.request(line);
                        assert_eq!(&got, want, "backend {kind}, request {line:?}");
                    }
                });
            }
        });
        server.shutdown();
        let summary = server.join();
        assert_eq!(
            summary.requests,
            4 * 25 * expected.len() as u64,
            "backend {kind} must answer every request"
        );
    }
}

#[test]
fn streaming_session_emits_the_oracle_verdict_when_windows_close() {
    let dict = dict_with(&corpus());
    let server = start_server(snapshot_engine(&dict), |_| {});
    let mut client = Client::connect(server.local_addr());

    assert_eq!(
        client.request(&format!("STREAM {METRIC} 2 {} {}", W.start, W.end)),
        "OPENED 1 120"
    );
    // Constant 6005 on both nodes: the window mean rounds into ft's
    // fingerprint bucket. The verdict must arrive exactly once, on the
    // push that closes the last node's window.
    let mut verdicts = Vec::new();
    for t in 0..=120u32 {
        for node in 0..2u16 {
            let resp = client.request(&format!("PUSH {node} {t} 6005"));
            if let Some(v) = resp.strip_prefix("VERDICT ") {
                verdicts.push((t, node, v.to_string()));
            } else {
                assert!(resp.starts_with("ACK "), "unexpected response {resp:?}");
            }
        }
    }
    assert_eq!(verdicts.len(), 1, "verdict must be emitted exactly once");
    let (t, node, tail) = &verdicts[0];
    assert_eq!((*t, *node), (120, 1), "emitted when the last window closes");
    assert_eq!(tail, "1 2 2 recognized ft");
    // The session is consumed by its verdict.
    assert!(client.request("PUSH 0 121 6005").starts_with("ERR bad-state"));

    // Early FINISH flushes open windows and forces the verdict.
    let mut early = Client::connect(server.local_addr());
    early.request(&format!("STREAM {METRIC} 2 {} {}", W.start, W.end));
    for t in 60..=80u32 {
        for node in 0..2u16 {
            assert!(early.request(&format!("PUSH {node} {t} 6005")).starts_with("ACK "));
        }
    }
    assert_eq!(early.request("FINISH"), "VERDICT 1 2 2 recognized ft");

    server.shutdown();
    server.join();
}

#[test]
fn metrics_scrape_reports_exact_counters_for_a_known_mix() {
    let dict = dict_with(&corpus());
    let server = start_server(snapshot_engine(&dict), |_| {});
    let addr = server.local_addr();
    let mut client = Client::connect(addr);

    for _ in 0..3 {
        assert_eq!(client.request("PING"), "PONG");
    }
    for _ in 0..4 {
        assert!(client.request(&recognize_line(&[6000.0, 6000.0])).contains("recognized"));
    }
    for _ in 0..2 {
        assert!(client.request(&recognize_line(&[111.0, 222.0])).contains("unknown"));
    }
    assert!(client.request(&recognize_line(&[7500.0, 7500.0])).contains("ambiguous"));
    assert!(client.request("STATS").starts_with("STATS "));
    assert!(client.request("BOGUS nonsense").starts_with("ERR malformed"));

    let (status, body) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "bad scrape status {status:?}");
    // 12 dispatched frames (3 + 7 + 1 + 1): every one is counted in the
    // duration histogram; only parsed requests hit the command counters.
    for needle in [
        "efd_requests_total{command=\"ping\"} 3",
        "efd_requests_total{command=\"recognize\"} 7",
        "efd_requests_total{command=\"stats\"} 1",
        "efd_requests_total{command=\"shutdown\"} 0",
        "efd_verdicts_total{verdict=\"recognized\"} 4",
        "efd_verdicts_total{verdict=\"unknown\"} 2",
        "efd_verdicts_total{verdict=\"ambiguous\"} 1",
        "efd_protocol_errors_total{kind=\"malformed\"} 1",
        "efd_protocol_errors_total{kind=\"torn\"} 0",
        "efd_request_duration_seconds_count 12",
        "efd_request_duration_seconds_bucket{le=\"+Inf\"} 12",
        "efd_snapshot_generation 1",
        "efd_snapshot_swaps_total 0",
        "efd_connections_total 2",
        "efd_scrapes_total 1",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in scrape:\n{body}");
    }

    // A second scrape sees itself counted.
    let (_, body) = http_get(addr, "/metrics");
    assert!(body.contains("efd_scrapes_total 2"));
    let (status, body) = http_get(addr, "/healthz");
    assert!(status.contains("200"));
    assert_eq!(body, "ok\n");
    let (status, _) = http_get(addr, "/nope");
    assert!(status.contains("404"));

    server.shutdown();
    server.join();
}

#[test]
fn hot_swap_under_sustained_load_drops_nothing_and_never_tears() {
    // Generation 1 does not know `new`; generation 2 does. Every
    // response under concurrent load must be exactly one of the two
    // oracle answers, tagged with the generation it came from, and a
    // connection must never step back to an older generation.
    let dict_a = dict_with(&[("old", 5000.0)]);
    let dict_b = dict_with(&[("old", 5000.0), ("new", 7000.0)]);
    let line = recognize_line(&[7000.0, 7000.0]);
    let want1 = render_answer("OK", 1, &dict_a.recognize(&query(&[7000.0, 7000.0])).normalized());
    let want2 = render_answer("OK", 2, &dict_b.recognize(&query(&[7000.0, 7000.0])).normalized());
    assert!(want1.ends_with("unknown"));
    assert!(want2.ends_with("recognized new"));

    let server = start_server(snapshot_engine(&dict_a), |cfg| cfg.workers = 4);
    let addr = server.local_addr();
    // Pin down generation 1 before any load.
    assert_eq!(Client::connect(addr).request(&line), want1);

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let (line, want1, want2) = (&line, &want1, &want2);
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut seen_gen2 = false;
                    let mut answered = 0u64;
                    for _ in 0..5_000 {
                        let got = client.request(line);
                        answered += 1;
                        if &got == want2 {
                            seen_gen2 = true;
                        } else {
                            assert_eq!(&got, want1, "answer from neither publication");
                            assert!(!seen_gen2, "generation went backwards on one connection");
                        }
                        if seen_gen2 && answered > 100 {
                            break;
                        }
                    }
                    assert!(seen_gen2, "never observed the new publication");
                    answered
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(server.publish(snapshot_engine(&dict_b)), 2);
        let total: u64 = workers.into_iter().map(|h| h.join().expect("load thread")).sum();
        assert!(total > 0);
    });

    assert_eq!(server.generation(), 2);
    assert!(server.metrics_text().contains("efd_snapshot_swaps_total 1"));
    server.shutdown();
    server.join();
}

#[test]
fn swap_command_and_hup_flag_republish_from_dictionary_files() {
    let dir = scratch_dir("swap");
    let dict_a = dict_with(&[("old", 5000.0)]);
    let dict_b = dict_with(&[("old", 5000.0), ("new", 7000.0)]);
    let path_a = write_efdb(&dir, "a.efdb", &dict_a);
    let path_b = write_efdb(&dir, "b.efdb", &dict_b);

    let engine = load_engine(&path_a, efd_serve::net::BackendKind::Snapshot, &catalog(), 4)
        .expect("load initial engine");
    let path_a_cfg = path_a.clone();
    let server = start_server(engine, move |cfg| cfg.reload_path = Some(path_a_cfg));
    let mut client = Client::connect(server.local_addr());
    let line = recognize_line(&[7000.0, 7000.0]);

    assert_eq!(client.request(&line), "OK 1 0 2 unknown");
    // Explicit-path SWAP republishes b.efdb as generation 2.
    assert_eq!(
        client.request(&format!("SWAP {}", path_b.display())),
        format!("SWAPPED 2 {} -", dict_b.len())
    );
    assert_eq!(client.request(&line), "OK 2 2 2 recognized new");
    // A failed swap is a structured error and keeps the generation.
    let resp = client.request(&format!("SWAP {}", dir.join("missing.efdb").display()));
    assert!(resp.starts_with("ERR swap-failed"), "got {resp:?}");
    assert_eq!(server.generation(), 2);
    // The SIGHUP flag reloads the configured path (back to dict A).
    server.hup_flag().store(true, std::sync::atomic::Ordering::SeqCst);
    wait_until("SIGHUP reload", || server.generation() == 3);
    assert_eq!(client.request(&line), "OK 3 0 2 unknown");

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_daemon_learns_over_the_wire_and_refuses_swaps() {
    let dir = scratch_dir("wal");
    let (durable, recovery) = DurableDictionary::open(
        &dir,
        RoundingDepth::new(2),
        4,
        &catalog(),
        WalOptions::default(),
    )
    .expect("open WAL dir");
    assert_eq!(recovery.replayed, 0, "fresh WAL dir has nothing to replay");
    let server = start_server(efd_serve::net::Engine::durable(Arc::new(durable)), |_| {});
    let mut client = Client::connect(server.local_addr());
    let line = recognize_line(&[6000.0, 6000.0]);

    assert_eq!(client.request(&line), "OK 1 0 2 unknown");
    assert_eq!(
        client.request(&format!(
            "LEARN ft X {METRIC} {} {} 6000 6000",
            W.start, W.end
        )),
        "LEARNED 2"
    );
    // Learns are visible immediately, in place: same generation.
    assert_eq!(client.request(&line), "OK 1 2 2 recognized ft");
    assert!(client.request("SWAP").starts_with("ERR bad-state"));
    assert!(client
        .request("STATS")
        .starts_with("STATS gen=1 keys=2 backend=durable version=-"));

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_command_stops_the_daemon_and_frees_the_port() {
    let dict = dict_with(&corpus());
    let server = start_server(snapshot_engine(&dict), |_| {});
    let addr = server.local_addr();
    let mut client = Client::connect(addr);
    assert!(client
        .request("STATS")
        .starts_with(&format!(
            "STATS gen=1 keys={} backend=snapshot version=-",
            dict.len()
        )));
    assert_eq!(client.request("SHUTDOWN"), "BYE");
    let summary = server.join();
    assert!(summary.requests >= 2);
    assert!(summary.connections >= 1);
    // The listener is gone: a fresh connect must be refused.
    assert!(std::net::TcpStream::connect(addr).is_err());
}
