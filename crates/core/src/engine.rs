//! The engine API: one `Learn`/`Recognize` contract over every backend.
//!
//! The repository grew several recognition backends — the single-threaded
//! [`EfdDictionary`](crate::EfdDictionary) oracle, the conjunctive
//! [`ComboDictionary`](crate::multi::ComboDictionary), and the serving
//! forms in `efd-serve` (snapshots, sharded dictionaries, streaming
//! sessions) — each of which used to expose its own inherent
//! `learn`/`recognize` signatures. SIREN (Jakobsche et al., 2025) frames
//! HPC recognition as a pipeline of *interchangeable* identification
//! methods; this module is that contract:
//!
//! * [`Learn`] — anything that absorbs labeled observations.
//! * [`Recognize`] — anything that answers a [`Query`] with a
//!   [`Recognition`]. The core method is [`Recognize::recognize_into`],
//!   which counts votes in caller-owned [`VoteScratch`] — the serving
//!   layer's zero-allocation hot path is the trait's *native* shape, and
//!   the convenience forms ([`Recognize::recognize`],
//!   [`Recognize::recognize_batch`]) are provided on top.
//! * [`ParallelRecognize`] — a blanket extension over `Recognize + Sync`
//!   adding [`recognize_batch_parallel`](ParallelRecognize::recognize_batch_parallel)
//!   via `efd_util`'s scoped-thread pool, one scratch per worker.
//!
//! Both traits are **object-safe**: backends can be selected at runtime as
//! `Box<dyn Recognize + Send + Sync>` (the CLI's `efd serve --backend`
//! does exactly that), and forwarding impls for `&R`, `Box<R>`, and
//! `Arc<R>` keep smart-pointer-wrapped backends usable wherever a
//! `Recognize` is expected.
//!
//! ## Answer contract
//!
//! Every implementation must be **answer-equivalent to the
//! single-threaded oracle** on the same learned content: the returned
//! [`Recognition`] equals `oracle.recognize(q).normalized()` — i.e.
//! results are in [`Recognition::normalized`] order, and tie-breaks
//! follow [`Recognition::best`]'s deterministic lexicographic rule. The
//! `engine_conformance` test suite instantiates this assertion for every
//! backend in the workspace.

use efd_telemetry::AppLabel;
use efd_util::parallel_map_init;

use crate::dictionary::{AppNameId, LabelId, Recognition, Verdict};
use crate::observation::{LabeledObservation, Query};

/// Reusable dense vote counters — the scratch contract shared by core and
/// the serving layer.
///
/// The oracle's [`EfdDictionary::recognize`](crate::EfdDictionary::recognize)
/// allocates two fresh hash maps per query to count votes. At serving
/// rates that allocation (and the re-hashing of every vote) dominates the
/// O(1) dictionary probes, so engine implementations count votes in
/// **dense arrays indexed by interned id** instead, with a `touched` list
/// for O(votes) reset. One `VoteScratch` lives per worker thread and is
/// reused across every query that thread answers.
///
/// Construct with `Default` and pass to [`Recognize::recognize_into`];
/// [`ParallelRecognize::recognize_batch_parallel`] manages one per worker
/// automatically. Backend authors drive it with the voting methods below;
/// [`VoteScratch::finish`] drains the counts into a [`Recognition`] and
/// resets the scratch for the next query.
#[derive(Debug, Default, Clone)]
pub struct VoteScratch {
    /// Vote count per `LabelId` index; zero except for touched ids.
    label_counts: Vec<u32>,
    /// Widened (SWAR) label counters: four packed 16-bit lanes per `u64`
    /// word, lane `i & 3` of word `i >> 2` counting label index `i`.
    /// Zero except for touched ids; [`VoteScratch::finish`] sums lane and
    /// scalar counts, so either vote path (or both) may feed a query.
    wide_label_counts: Vec<u64>,
    /// Vote count per `AppNameId` index; zero except for touched ids.
    app_counts: Vec<u32>,
    touched_labels: Vec<LabelId>,
    touched_apps: Vec<AppNameId>,
    /// Apps already credited for the current point (one vote per app per
    /// matched point, however many inputs share the entry).
    point_apps: Vec<AppNameId>,
}

impl VoteScratch {
    /// Most votes one label can take through
    /// [`VoteScratch::vote_label_wide`] before its 16-bit lane saturates.
    /// Kernels route queries with more points than this through the
    /// scalar [`VoteScratch::vote_label`] path.
    pub const WIDE_VOTE_LIMIT: usize = u16::MAX as usize;

    /// Grow the dense counters to cover `labels`/`apps` interned ids.
    /// Counters keep their (all-zero) state; growth never clears votes.
    pub fn ensure(&mut self, labels: usize, apps: usize) {
        if self.label_counts.len() < labels {
            self.label_counts.resize(labels, 0);
        }
        let wide_words = labels.div_ceil(4);
        if self.wide_label_counts.len() < wide_words {
            self.wide_label_counts.resize(wide_words, 0);
        }
        if self.app_counts.len() < apps {
            self.app_counts.resize(apps, 0);
        }
    }

    /// One vote for a label.
    #[inline]
    pub fn vote_label(&mut self, id: LabelId) {
        let c = &mut self.label_counts[id.index()];
        if *c == 0 {
            self.touched_labels.push(id);
        }
        *c += 1;
    }

    /// One vote for a label through the widened (SWAR) counter path:
    /// counts land in packed 16-bit lanes, four per `u64` word, so a
    /// postings-heavy vote loop touches a quarter of the counter cache
    /// lines the scalar [`VoteScratch::vote_label`] path would.
    ///
    /// Within one query, use *either* the scalar or the wide path for
    /// label votes — [`VoteScratch::finish`] sums both, but mixing them
    /// on the same label can record it twice in the touched list. A lane
    /// saturates at [`VoteScratch::WIDE_VOTE_LIMIT`] votes instead of
    /// overflowing into its neighbor; kernels keep counts exact by
    /// falling back to the scalar path for queries with more points than
    /// the limit.
    #[inline]
    pub fn vote_label_wide(&mut self, id: LabelId) {
        let i = id.index();
        let word = &mut self.wide_label_counts[i >> 2];
        let shift = (i & 3) * 16;
        let lane = (*word >> shift) & 0xFFFF;
        if lane == 0 {
            self.touched_labels.push(id);
        }
        if lane < 0xFFFF {
            *word += 1 << shift;
        }
    }

    /// Combined scalar + wide count for a label index, zeroing both.
    #[inline]
    fn drain_label_count(&mut self, i: usize) -> u32 {
        let scalar = std::mem::take(&mut self.label_counts[i]);
        let word = &mut self.wide_label_counts[i >> 2];
        let shift = (i & 3) * 16;
        let lane = ((*word >> shift) & 0xFFFF) as u32;
        *word &= !(0xFFFFu64 << shift);
        scalar + lane
    }

    /// One vote for an application (caller guarantees per-point dedup, or
    /// uses [`VoteScratch::begin_point`]/[`VoteScratch::vote_app_deduped`]).
    #[inline]
    pub fn vote_app(&mut self, id: AppNameId) {
        let c = &mut self.app_counts[id.index()];
        if *c == 0 {
            self.touched_apps.push(id);
        }
        *c += 1;
    }

    /// Reset the per-point app dedup set.
    #[inline]
    pub fn begin_point(&mut self) {
        self.point_apps.clear();
    }

    /// Vote for an app at most once per point (mirrors the oracle's
    /// per-entry dedup for entries whose labels share an application).
    #[inline]
    pub fn vote_app_deduped(&mut self, id: AppNameId) {
        if !self.point_apps.contains(&id) {
            self.point_apps.push(id);
            self.vote_app(id);
        }
    }

    /// Drain the accumulated **app** votes into the answer the paper's
    /// evaluation scores ([`Recognition::best`]): the most-voted
    /// application, breaking ties by lexicographically smallest name.
    /// `None` when nothing matched. Resets the scratch; never allocates.
    pub fn finish_best<'a>(&mut self, apps: &'a [String]) -> Option<&'a str> {
        let mut top = 0u32;
        let mut best: Option<&'a str> = None;
        for &id in &self.touched_apps {
            let votes = self.app_counts[id.index()];
            let name = apps[id.index()].as_str();
            if votes > top || (votes == top && best.is_some_and(|b| name < b)) {
                top = votes;
                best = Some(name);
            }
        }
        for id in self.touched_apps.drain(..) {
            self.app_counts[id.index()] = 0;
        }
        while let Some(id) = self.touched_labels.pop() {
            self.drain_label_count(id.index());
        }
        best
    }

    /// Drain the accumulated votes into a [`Recognition`] in
    /// [`Recognition::normalized`] order, resetting the scratch for the
    /// next query. `labels`/`apps` resolve interned ids to names.
    pub fn finish(
        &mut self,
        labels: &[AppLabel],
        apps: &[String],
        matched_points: usize,
        total_points: usize,
    ) -> Recognition {
        let mut app_votes: Vec<(String, u32)> = Vec::with_capacity(self.touched_apps.len());
        for id in self.touched_apps.drain(..) {
            let c = &mut self.app_counts[id.index()];
            app_votes.push((apps[id.index()].clone(), *c));
            *c = 0;
        }
        let mut label_votes: Vec<(AppLabel, u32)> = Vec::with_capacity(self.touched_labels.len());
        while let Some(id) = self.touched_labels.pop() {
            let count = self.drain_label_count(id.index());
            if count > 0 {
                // A zero combined count only happens when a label was
                // touched twice (scalar + wide paths mixed on one query,
                // against the documented contract); skip the duplicate.
                label_votes.push((labels[id.index()].clone(), count));
            }
        }

        // Sort once, directly in the normalized order (same comparators as
        // `Recognition::normalized`, which is then a no-op on this value).
        app_votes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        label_votes.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| (&a.0.app, &a.0.input).cmp(&(&b.0.app, &b.0.input)))
        });

        let verdict = match app_votes.first() {
            None => Verdict::Unknown,
            Some(&(_, top)) => {
                // The tied prefix is already name-sorted.
                let mut tied: Vec<String> = app_votes
                    .iter()
                    .take_while(|&&(_, v)| v == top)
                    .map(|(a, _)| a.clone())
                    .collect();
                if tied.len() == 1 {
                    Verdict::Recognized(tied.pop().expect("one tied app"))
                } else {
                    Verdict::Ambiguous(tied)
                }
            }
        };

        Recognition {
            verdict,
            app_votes,
            label_votes,
            matched_points,
            total_points,
        }
    }
}

/// A recognition system that absorbs labeled observations.
///
/// Learning is incremental — "learning new applications is as simple as
/// adding new keys" (paper §4) — and implementations may intern, index,
/// or buffer however they like, as long as a subsequent [`Recognize`]
/// call reflects everything learned so far.
///
/// ```
/// use efd_core::engine::{Learn, Recognize};
/// use efd_core::{EfdDictionary, LabeledObservation, Query, RoundingDepth};
/// use efd_telemetry::{AppLabel, Interval, MetricId};
///
/// // Generic over any learnable backend:
/// fn teach<E: Learn>(engine: &mut E) {
///     engine.learn(&LabeledObservation {
///         label: AppLabel::new("ft", "X"),
///         query: Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT,
///                                       &[6020.0, 6019.0]),
///     });
/// }
///
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// teach(&mut dict);
/// let q = Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[6001.0]);
/// assert_eq!(Recognize::recognize(&dict, &q).best(), Some("ft"));
/// ```
pub trait Learn {
    /// Absorb one labeled observation.
    fn learn(&mut self, obs: &LabeledObservation);

    /// Absorb a batch (dataset order = insertion order, which fixes the
    /// paper's first-learned tie-array ordering where a backend records
    /// it). Implementations that fit a model once over the whole batch
    /// (e.g. classifier adapters) may override this to defer work.
    fn learn_all(&mut self, observations: &[LabeledObservation]) {
        for o in observations {
            self.learn(o);
        }
    }
}

/// A recognition system that answers queries.
///
/// The core method is [`Recognize::recognize_into`]: vote counting in
/// caller-owned [`VoteScratch`], so hot paths amortize allocations across
/// queries. [`Recognize::recognize`] and [`Recognize::recognize_batch`]
/// are provided conveniences; `Sync` backends additionally get
/// [`ParallelRecognize::recognize_batch_parallel`] for free.
///
/// Implementations return answers in [`Recognition::normalized`] order
/// and must be answer-equivalent to the single-threaded
/// [`EfdDictionary`](crate::EfdDictionary) oracle on the same learned
/// content (see the module docs).
///
/// ```
/// use efd_core::engine::Recognize;
/// use efd_core::{EfdDictionary, LabeledObservation, Query, RoundingDepth};
/// use efd_telemetry::{AppLabel, Interval, MetricId};
///
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// dict.learn(&LabeledObservation {
///     label: AppLabel::new("cg", "Y"),
///     query: Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[8110.0; 4]),
/// });
///
/// // Backends are selected at runtime through the object-safe trait:
/// let engine: Box<dyn Recognize> = Box::new(dict);
/// let q = Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[8093.0; 4]);
/// assert_eq!(engine.recognize(&q).best(), Some("cg"));
/// assert_eq!(engine.recognize_batch(std::slice::from_ref(&q)).len(), 1);
/// ```
pub trait Recognize {
    /// Recognize one query, counting votes in caller-owned `scratch`.
    ///
    /// The scratch is reset by the call itself (via
    /// [`VoteScratch::finish`]) and is immediately reusable; backends
    /// with their own aggregation structure (e.g. conjunctive combo keys)
    /// may ignore it.
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition;

    /// Recognize one query with fresh scratch (allocates; prefer
    /// [`Recognize::recognize_into`] or the batch forms on hot paths).
    fn recognize(&self, query: &Query) -> Recognition {
        let mut scratch = VoteScratch::default();
        self.recognize_into(query, &mut scratch)
    }

    /// Recognize every query sequentially, one shared scratch, results in
    /// input order. `Sync` backends can use
    /// [`ParallelRecognize::recognize_batch_parallel`] instead.
    fn recognize_batch(&self, queries: &[Query]) -> Vec<Recognition> {
        let mut scratch = VoteScratch::default();
        queries
            .iter()
            .map(|q| self.recognize_into(q, &mut scratch))
            .collect()
    }
}

impl<R: Recognize + ?Sized> Recognize for &R {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        (**self).recognize_into(query, scratch)
    }
}

impl<R: Recognize + ?Sized> Recognize for Box<R> {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        (**self).recognize_into(query, scratch)
    }
}

impl<R: Recognize + ?Sized> Recognize for std::sync::Arc<R> {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        (**self).recognize_into(query, scratch)
    }
}

/// Parallel batch recognition for `Sync` backends.
///
/// Blanket-implemented for every `Recognize + Sync` type (including trait
/// objects like `dyn Recognize + Send + Sync`), so any thread-safe
/// backend fans batches out over `efd_util`'s scoped-thread pool with one
/// [`VoteScratch`] per worker — no per-query allocation, results in input
/// order, thread count from `efd_util::num_threads` (`EFD_THREADS`
/// overrides).
pub trait ParallelRecognize: Recognize + Sync {
    /// Recognize every query across worker threads, results in input
    /// order. Answers equal [`Recognize::recognize_batch`] on the same
    /// queries.
    fn recognize_batch_parallel(&self, queries: &[Query]) -> Vec<Recognition> {
        parallel_map_init(queries, VoteScratch::default, |scratch, q| {
            self.recognize_into(q, scratch)
        })
    }
}

impl<R: Recognize + Sync + ?Sized> ParallelRecognize for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EfdDictionary, RoundingDepth};
    use efd_telemetry::{Interval, MetricId};

    fn lab(app: &str, input: &str) -> AppLabel {
        AppLabel::new(app, input)
    }

    #[test]
    fn finish_resets_for_reuse() {
        let labels = [lab("sp", "X"), lab("bt", "X")];
        let apps = ["sp".to_string(), "bt".to_string()];
        let mut s = VoteScratch::default();
        s.ensure(2, 2);
        s.begin_point();
        s.vote_label(LabelId::from_index(0));
        s.vote_app_deduped(AppNameId::from_index(0));
        let r = s.finish(&labels, &apps, 1, 1);
        assert_eq!(r.verdict, Verdict::Recognized("sp".into()));

        // Second use sees a clean slate.
        let r = s.finish(&labels, &apps, 0, 3);
        assert_eq!(r.verdict, Verdict::Unknown);
        assert!(r.app_votes.is_empty());
        assert_eq!(r.total_points, 3);
    }

    #[test]
    fn per_point_app_dedup() {
        // Two inputs of the same app on one entry: one app vote.
        let labels = [lab("ft", "X"), lab("ft", "Y")];
        let apps = ["ft".to_string()];
        let mut s = VoteScratch::default();
        s.ensure(2, 1);
        s.begin_point();
        for i in 0..2 {
            s.vote_label(LabelId::from_index(i));
            s.vote_app_deduped(AppNameId::from_index(0));
        }
        let r = s.finish(&labels, &apps, 1, 1);
        assert_eq!(r.app_votes, vec![("ft".into(), 1)]);
        assert_eq!(r.label_votes.len(), 2);
    }

    #[test]
    fn tie_produces_sorted_ambiguous() {
        let labels = [lab("sp", "X"), lab("bt", "X")];
        let apps = ["sp".to_string(), "bt".to_string()];
        let mut s = VoteScratch::default();
        s.ensure(2, 2);
        for i in 0..2 {
            s.begin_point();
            s.vote_label(LabelId::from_index(i));
            s.vote_app_deduped(AppNameId::from_index(i));
        }
        let r = s.finish(&labels, &apps, 2, 2);
        // normalized(): lexicographic tie array.
        assert_eq!(r.verdict, Verdict::Ambiguous(vec!["bt".into(), "sp".into()]));
        assert_eq!(r.best(), Some("bt"));
    }

    #[test]
    fn wide_votes_match_scalar_votes() {
        // Same vote pattern through both counter paths: identical answers.
        let labels: Vec<AppLabel> = (0..9).map(|i| lab(&format!("a{i}"), "X")).collect();
        let apps: Vec<String> = (0..9).map(|i| format!("a{i}")).collect();
        let mut scalar = VoteScratch::default();
        let mut wide = VoteScratch::default();
        scalar.ensure(9, 9);
        wide.ensure(9, 9);
        // Uneven counts across all four lanes of two words plus a
        // straggler, so lane packing and word boundaries are exercised.
        for i in 0..9usize {
            for _ in 0..=(i % 5) {
                scalar.vote_label(LabelId::from_index(i));
                wide.vote_label_wide(LabelId::from_index(i));
            }
            scalar.begin_point();
            scalar.vote_app_deduped(AppNameId::from_index(i));
            wide.begin_point();
            wide.vote_app_deduped(AppNameId::from_index(i));
        }
        let s = scalar.finish(&labels, &apps, 9, 9);
        let w = wide.finish(&labels, &apps, 9, 9);
        assert_eq!(s, w);
        assert_eq!(w.label_votes.iter().map(|&(_, v)| v).max(), Some(5));

        // Both scratches were reset: a second finish is empty.
        assert!(wide.finish(&labels, &apps, 0, 0).label_votes.is_empty());
    }

    #[test]
    fn wide_lanes_saturate_instead_of_bleeding() {
        let labels = [lab("hot", "X"), lab("cold", "X")];
        let apps = ["hot".to_string(), "cold".to_string()];
        let mut s = VoteScratch::default();
        s.ensure(2, 2);
        // Overflow lane 0 past u16::MAX; lane 1 (same word) must be
        // untouched and lane 0 must clamp, not wrap into its neighbor.
        for _ in 0..(VoteScratch::WIDE_VOTE_LIMIT + 10) {
            s.vote_label_wide(LabelId::from_index(0));
        }
        s.vote_label_wide(LabelId::from_index(1));
        let r = s.finish(&labels, &apps, 1, 1);
        assert_eq!(
            r.label_votes,
            vec![
                (lab("hot", "X"), u16::MAX as u32),
                (lab("cold", "X"), 1),
            ]
        );
    }

    #[test]
    fn finish_best_resets_wide_counters() {
        let apps = ["ft".to_string()];
        let mut s = VoteScratch::default();
        s.ensure(1, 1);
        s.vote_label_wide(LabelId::from_index(0));
        s.begin_point();
        s.vote_app_deduped(AppNameId::from_index(0));
        assert_eq!(s.finish_best(&apps), Some("ft"));
        // The wide counter was drained: a scalar-path reuse sees zero.
        s.vote_label(LabelId::from_index(0));
        let labels = [lab("ft", "X")];
        let r = s.finish(&labels, &apps, 1, 1);
        assert_eq!(r.label_votes, vec![(lab("ft", "X"), 1)]);
    }

    #[test]
    fn trait_recognize_matches_normalized_oracle() {
        const M: MetricId = MetricId(0);
        const W: Interval = Interval::PAPER_DEFAULT;
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        for (app, mean) in [("sp", 7520.0), ("bt", 7530.0), ("ft", 6020.0)] {
            for n in 0..4u16 {
                d.insert_raw(M, efd_telemetry::NodeId(n), W, mean, &lab(app, "X"));
            }
        }
        let queries = [
            Query::from_node_means(M, W, &[7511.0, 7522.0, 7533.0, 7544.0]),
            Query::from_node_means(M, W, &[6001.0; 4]),
            Query::from_node_means(M, W, &[1.0; 4]),
        ];
        let mut scratch = VoteScratch::default();
        for q in &queries {
            let inherent = d.recognize(q).normalized();
            assert_eq!(Recognize::recognize(&d, q), inherent);
            assert_eq!(d.recognize_into(q, &mut scratch), inherent);
        }
        let batch = Recognize::recognize_batch(&d, &queries);
        let par = d.recognize_batch_parallel(&queries);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i], d.recognize(q).normalized());
            assert_eq!(par[i], batch[i]);
        }
    }

    #[test]
    fn forwarding_impls_preserve_answers() {
        const M: MetricId = MetricId(0);
        const W: Interval = Interval::PAPER_DEFAULT;
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        d.insert_raw(M, efd_telemetry::NodeId(0), W, 6020.0, &lab("ft", "X"));
        let q = Query::from_node_means(M, W, &[6004.0]);
        let expected = Recognize::recognize(&d, &q);

        let by_ref: &EfdDictionary = &d;
        assert_eq!(Recognize::recognize(&by_ref, &q), expected);
        let arc = std::sync::Arc::new(d.clone());
        assert_eq!(Recognize::recognize(&arc, &q), expected);
        let boxed: Box<dyn Recognize + Send + Sync> = Box::new(d);
        assert_eq!(boxed.recognize(&q), expected);
        assert_eq!(
            boxed.recognize_batch_parallel(std::slice::from_ref(&q))[0],
            expected
        );
    }
}
