//! The engine API: one `Learn`/`Recognize` contract over every backend.
//!
//! The repository grew several recognition backends — the single-threaded
//! [`EfdDictionary`](crate::EfdDictionary) oracle, the conjunctive
//! [`ComboDictionary`](crate::multi::ComboDictionary), and the serving
//! forms in `efd-serve` (snapshots, sharded dictionaries, streaming
//! sessions) — each of which used to expose its own inherent
//! `learn`/`recognize` signatures. SIREN (Jakobsche et al., 2025) frames
//! HPC recognition as a pipeline of *interchangeable* identification
//! methods; this module is that contract:
//!
//! * [`Learn`] — anything that absorbs labeled observations.
//! * [`Recognize`] — anything that answers a [`Query`] with a
//!   [`Recognition`]. The core method is [`Recognize::recognize_into`],
//!   which counts votes in caller-owned [`VoteScratch`] — the serving
//!   layer's zero-allocation hot path is the trait's *native* shape, and
//!   the convenience forms ([`Recognize::recognize`],
//!   [`Recognize::recognize_batch`]) are provided on top.
//! * [`ParallelRecognize`] — a blanket extension over `Recognize + Sync`
//!   adding [`recognize_batch_parallel`](ParallelRecognize::recognize_batch_parallel)
//!   via `efd_util`'s scoped-thread pool, one scratch per worker.
//!
//! Both traits are **object-safe**: backends can be selected at runtime as
//! `Box<dyn Recognize + Send + Sync>` (the CLI's `efd serve --backend`
//! does exactly that), and forwarding impls for `&R`, `Box<R>`, and
//! `Arc<R>` keep smart-pointer-wrapped backends usable wherever a
//! `Recognize` is expected.
//!
//! ## Answer contract
//!
//! Every implementation must be **answer-equivalent to the
//! single-threaded oracle** on the same learned content: the returned
//! [`Recognition`] equals `oracle.recognize(q).normalized()` — i.e.
//! results are in [`Recognition::normalized`] order, and tie-breaks
//! follow [`Recognition::best`]'s deterministic lexicographic rule. The
//! `engine_conformance` test suite instantiates this assertion for every
//! backend in the workspace.

use efd_telemetry::AppLabel;
use efd_util::parallel_map_init;

use crate::dictionary::{AppNameId, LabelId, Recognition, Verdict};
use crate::observation::{LabeledObservation, Query};

/// Reusable dense vote counters — the scratch contract shared by core and
/// the serving layer.
///
/// The oracle's [`EfdDictionary::recognize`](crate::EfdDictionary::recognize)
/// allocates two fresh hash maps per query to count votes. At serving
/// rates that allocation (and the re-hashing of every vote) dominates the
/// O(1) dictionary probes, so engine implementations count votes in
/// **dense arrays indexed by interned id** instead, with a `touched` list
/// for O(votes) reset. One `VoteScratch` lives per worker thread and is
/// reused across every query that thread answers.
///
/// Construct with `Default` and pass to [`Recognize::recognize_into`];
/// [`ParallelRecognize::recognize_batch_parallel`] manages one per worker
/// automatically. Backend authors drive it with the voting methods below;
/// [`VoteScratch::finish`] drains the counts into a [`Recognition`] and
/// resets the scratch for the next query.
#[derive(Debug, Default, Clone)]
pub struct VoteScratch {
    /// Vote count per `LabelId` index; zero except for touched ids.
    label_counts: Vec<u32>,
    /// Vote count per `AppNameId` index; zero except for touched ids.
    app_counts: Vec<u32>,
    touched_labels: Vec<LabelId>,
    touched_apps: Vec<AppNameId>,
    /// Apps already credited for the current point (one vote per app per
    /// matched point, however many inputs share the entry).
    point_apps: Vec<AppNameId>,
}

impl VoteScratch {
    /// Grow the dense counters to cover `labels`/`apps` interned ids.
    /// Counters keep their (all-zero) state; growth never clears votes.
    pub fn ensure(&mut self, labels: usize, apps: usize) {
        if self.label_counts.len() < labels {
            self.label_counts.resize(labels, 0);
        }
        if self.app_counts.len() < apps {
            self.app_counts.resize(apps, 0);
        }
    }

    /// One vote for a label.
    #[inline]
    pub fn vote_label(&mut self, id: LabelId) {
        let c = &mut self.label_counts[id.index()];
        if *c == 0 {
            self.touched_labels.push(id);
        }
        *c += 1;
    }

    /// One vote for an application (caller guarantees per-point dedup, or
    /// uses [`VoteScratch::begin_point`]/[`VoteScratch::vote_app_deduped`]).
    #[inline]
    pub fn vote_app(&mut self, id: AppNameId) {
        let c = &mut self.app_counts[id.index()];
        if *c == 0 {
            self.touched_apps.push(id);
        }
        *c += 1;
    }

    /// Reset the per-point app dedup set.
    #[inline]
    pub fn begin_point(&mut self) {
        self.point_apps.clear();
    }

    /// Vote for an app at most once per point (mirrors the oracle's
    /// per-entry dedup for entries whose labels share an application).
    #[inline]
    pub fn vote_app_deduped(&mut self, id: AppNameId) {
        if !self.point_apps.contains(&id) {
            self.point_apps.push(id);
            self.vote_app(id);
        }
    }

    /// Drain the accumulated **app** votes into the answer the paper's
    /// evaluation scores ([`Recognition::best`]): the most-voted
    /// application, breaking ties by lexicographically smallest name.
    /// `None` when nothing matched. Resets the scratch; never allocates.
    pub fn finish_best<'a>(&mut self, apps: &'a [String]) -> Option<&'a str> {
        let mut top = 0u32;
        let mut best: Option<&'a str> = None;
        for &id in &self.touched_apps {
            let votes = self.app_counts[id.index()];
            let name = apps[id.index()].as_str();
            if votes > top || (votes == top && best.is_some_and(|b| name < b)) {
                top = votes;
                best = Some(name);
            }
        }
        for id in self.touched_apps.drain(..) {
            self.app_counts[id.index()] = 0;
        }
        for id in self.touched_labels.drain(..) {
            self.label_counts[id.index()] = 0;
        }
        best
    }

    /// Drain the accumulated votes into a [`Recognition`] in
    /// [`Recognition::normalized`] order, resetting the scratch for the
    /// next query. `labels`/`apps` resolve interned ids to names.
    pub fn finish(
        &mut self,
        labels: &[AppLabel],
        apps: &[String],
        matched_points: usize,
        total_points: usize,
    ) -> Recognition {
        let mut app_votes: Vec<(String, u32)> = Vec::with_capacity(self.touched_apps.len());
        for id in self.touched_apps.drain(..) {
            let c = &mut self.app_counts[id.index()];
            app_votes.push((apps[id.index()].clone(), *c));
            *c = 0;
        }
        let mut label_votes: Vec<(AppLabel, u32)> = Vec::with_capacity(self.touched_labels.len());
        for id in self.touched_labels.drain(..) {
            let c = &mut self.label_counts[id.index()];
            label_votes.push((labels[id.index()].clone(), *c));
            *c = 0;
        }

        // Sort once, directly in the normalized order (same comparators as
        // `Recognition::normalized`, which is then a no-op on this value).
        app_votes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        label_votes.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| (&a.0.app, &a.0.input).cmp(&(&b.0.app, &b.0.input)))
        });

        let verdict = match app_votes.first() {
            None => Verdict::Unknown,
            Some(&(_, top)) => {
                // The tied prefix is already name-sorted.
                let mut tied: Vec<String> = app_votes
                    .iter()
                    .take_while(|&&(_, v)| v == top)
                    .map(|(a, _)| a.clone())
                    .collect();
                if tied.len() == 1 {
                    Verdict::Recognized(tied.pop().expect("one tied app"))
                } else {
                    Verdict::Ambiguous(tied)
                }
            }
        };

        Recognition {
            verdict,
            app_votes,
            label_votes,
            matched_points,
            total_points,
        }
    }
}

/// A recognition system that absorbs labeled observations.
///
/// Learning is incremental — "learning new applications is as simple as
/// adding new keys" (paper §4) — and implementations may intern, index,
/// or buffer however they like, as long as a subsequent [`Recognize`]
/// call reflects everything learned so far.
///
/// ```
/// use efd_core::engine::{Learn, Recognize};
/// use efd_core::{EfdDictionary, LabeledObservation, Query, RoundingDepth};
/// use efd_telemetry::{AppLabel, Interval, MetricId};
///
/// // Generic over any learnable backend:
/// fn teach<E: Learn>(engine: &mut E) {
///     engine.learn(&LabeledObservation {
///         label: AppLabel::new("ft", "X"),
///         query: Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT,
///                                       &[6020.0, 6019.0]),
///     });
/// }
///
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// teach(&mut dict);
/// let q = Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[6001.0]);
/// assert_eq!(Recognize::recognize(&dict, &q).best(), Some("ft"));
/// ```
pub trait Learn {
    /// Absorb one labeled observation.
    fn learn(&mut self, obs: &LabeledObservation);

    /// Absorb a batch (dataset order = insertion order, which fixes the
    /// paper's first-learned tie-array ordering where a backend records
    /// it). Implementations that fit a model once over the whole batch
    /// (e.g. classifier adapters) may override this to defer work.
    fn learn_all(&mut self, observations: &[LabeledObservation]) {
        for o in observations {
            self.learn(o);
        }
    }
}

/// A recognition system that answers queries.
///
/// The core method is [`Recognize::recognize_into`]: vote counting in
/// caller-owned [`VoteScratch`], so hot paths amortize allocations across
/// queries. [`Recognize::recognize`] and [`Recognize::recognize_batch`]
/// are provided conveniences; `Sync` backends additionally get
/// [`ParallelRecognize::recognize_batch_parallel`] for free.
///
/// Implementations return answers in [`Recognition::normalized`] order
/// and must be answer-equivalent to the single-threaded
/// [`EfdDictionary`](crate::EfdDictionary) oracle on the same learned
/// content (see the module docs).
///
/// ```
/// use efd_core::engine::Recognize;
/// use efd_core::{EfdDictionary, LabeledObservation, Query, RoundingDepth};
/// use efd_telemetry::{AppLabel, Interval, MetricId};
///
/// let mut dict = EfdDictionary::new(RoundingDepth::new(2));
/// dict.learn(&LabeledObservation {
///     label: AppLabel::new("cg", "Y"),
///     query: Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[8110.0; 4]),
/// });
///
/// // Backends are selected at runtime through the object-safe trait:
/// let engine: Box<dyn Recognize> = Box::new(dict);
/// let q = Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, &[8093.0; 4]);
/// assert_eq!(engine.recognize(&q).best(), Some("cg"));
/// assert_eq!(engine.recognize_batch(std::slice::from_ref(&q)).len(), 1);
/// ```
pub trait Recognize {
    /// Recognize one query, counting votes in caller-owned `scratch`.
    ///
    /// The scratch is reset by the call itself (via
    /// [`VoteScratch::finish`]) and is immediately reusable; backends
    /// with their own aggregation structure (e.g. conjunctive combo keys)
    /// may ignore it.
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition;

    /// Recognize one query with fresh scratch (allocates; prefer
    /// [`Recognize::recognize_into`] or the batch forms on hot paths).
    fn recognize(&self, query: &Query) -> Recognition {
        let mut scratch = VoteScratch::default();
        self.recognize_into(query, &mut scratch)
    }

    /// Recognize every query sequentially, one shared scratch, results in
    /// input order. `Sync` backends can use
    /// [`ParallelRecognize::recognize_batch_parallel`] instead.
    fn recognize_batch(&self, queries: &[Query]) -> Vec<Recognition> {
        let mut scratch = VoteScratch::default();
        queries
            .iter()
            .map(|q| self.recognize_into(q, &mut scratch))
            .collect()
    }
}

impl<R: Recognize + ?Sized> Recognize for &R {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        (**self).recognize_into(query, scratch)
    }
}

impl<R: Recognize + ?Sized> Recognize for Box<R> {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        (**self).recognize_into(query, scratch)
    }
}

impl<R: Recognize + ?Sized> Recognize for std::sync::Arc<R> {
    fn recognize_into(&self, query: &Query, scratch: &mut VoteScratch) -> Recognition {
        (**self).recognize_into(query, scratch)
    }
}

/// Parallel batch recognition for `Sync` backends.
///
/// Blanket-implemented for every `Recognize + Sync` type (including trait
/// objects like `dyn Recognize + Send + Sync`), so any thread-safe
/// backend fans batches out over `efd_util`'s scoped-thread pool with one
/// [`VoteScratch`] per worker — no per-query allocation, results in input
/// order, thread count from `efd_util::num_threads` (`EFD_THREADS`
/// overrides).
pub trait ParallelRecognize: Recognize + Sync {
    /// Recognize every query across worker threads, results in input
    /// order. Answers equal [`Recognize::recognize_batch`] on the same
    /// queries.
    fn recognize_batch_parallel(&self, queries: &[Query]) -> Vec<Recognition> {
        parallel_map_init(queries, VoteScratch::default, |scratch, q| {
            self.recognize_into(q, scratch)
        })
    }
}

impl<R: Recognize + Sync + ?Sized> ParallelRecognize for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EfdDictionary, RoundingDepth};
    use efd_telemetry::{Interval, MetricId};

    fn lab(app: &str, input: &str) -> AppLabel {
        AppLabel::new(app, input)
    }

    #[test]
    fn finish_resets_for_reuse() {
        let labels = [lab("sp", "X"), lab("bt", "X")];
        let apps = ["sp".to_string(), "bt".to_string()];
        let mut s = VoteScratch::default();
        s.ensure(2, 2);
        s.begin_point();
        s.vote_label(LabelId::from_index(0));
        s.vote_app_deduped(AppNameId::from_index(0));
        let r = s.finish(&labels, &apps, 1, 1);
        assert_eq!(r.verdict, Verdict::Recognized("sp".into()));

        // Second use sees a clean slate.
        let r = s.finish(&labels, &apps, 0, 3);
        assert_eq!(r.verdict, Verdict::Unknown);
        assert!(r.app_votes.is_empty());
        assert_eq!(r.total_points, 3);
    }

    #[test]
    fn per_point_app_dedup() {
        // Two inputs of the same app on one entry: one app vote.
        let labels = [lab("ft", "X"), lab("ft", "Y")];
        let apps = ["ft".to_string()];
        let mut s = VoteScratch::default();
        s.ensure(2, 1);
        s.begin_point();
        for i in 0..2 {
            s.vote_label(LabelId::from_index(i));
            s.vote_app_deduped(AppNameId::from_index(0));
        }
        let r = s.finish(&labels, &apps, 1, 1);
        assert_eq!(r.app_votes, vec![("ft".into(), 1)]);
        assert_eq!(r.label_votes.len(), 2);
    }

    #[test]
    fn tie_produces_sorted_ambiguous() {
        let labels = [lab("sp", "X"), lab("bt", "X")];
        let apps = ["sp".to_string(), "bt".to_string()];
        let mut s = VoteScratch::default();
        s.ensure(2, 2);
        for i in 0..2 {
            s.begin_point();
            s.vote_label(LabelId::from_index(i));
            s.vote_app_deduped(AppNameId::from_index(i));
        }
        let r = s.finish(&labels, &apps, 2, 2);
        // normalized(): lexicographic tie array.
        assert_eq!(r.verdict, Verdict::Ambiguous(vec!["bt".into(), "sp".into()]));
        assert_eq!(r.best(), Some("bt"));
    }

    #[test]
    fn trait_recognize_matches_normalized_oracle() {
        const M: MetricId = MetricId(0);
        const W: Interval = Interval::PAPER_DEFAULT;
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        for (app, mean) in [("sp", 7520.0), ("bt", 7530.0), ("ft", 6020.0)] {
            for n in 0..4u16 {
                d.insert_raw(M, efd_telemetry::NodeId(n), W, mean, &lab(app, "X"));
            }
        }
        let queries = [
            Query::from_node_means(M, W, &[7511.0, 7522.0, 7533.0, 7544.0]),
            Query::from_node_means(M, W, &[6001.0; 4]),
            Query::from_node_means(M, W, &[1.0; 4]),
        ];
        let mut scratch = VoteScratch::default();
        for q in &queries {
            let inherent = d.recognize(q).normalized();
            assert_eq!(Recognize::recognize(&d, q), inherent);
            assert_eq!(d.recognize_into(q, &mut scratch), inherent);
        }
        let batch = Recognize::recognize_batch(&d, &queries);
        let par = d.recognize_batch_parallel(&queries);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i], d.recognize(q).normalized());
            assert_eq!(par[i], batch[i]);
        }
    }

    #[test]
    fn forwarding_impls_preserve_answers() {
        const M: MetricId = MetricId(0);
        const W: Interval = Interval::PAPER_DEFAULT;
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        d.insert_raw(M, efd_telemetry::NodeId(0), W, 6020.0, &lab("ft", "X"));
        let q = Query::from_node_means(M, W, &[6004.0]);
        let expected = Recognize::recognize(&d, &q);

        let by_ref: &EfdDictionary = &d;
        assert_eq!(Recognize::recognize(&by_ref, &q), expected);
        let arc = std::sync::Arc::new(d.clone());
        assert_eq!(Recognize::recognize(&arc, &q), expected);
        let boxed: Box<dyn Recognize + Send + Sync> = Box::new(d);
        assert_eq!(boxed.recognize(&q), expected);
        assert_eq!(
            boxed.recognize_batch_parallel(std::slice::from_ref(&q))[0],
            expected
        );
    }
}
