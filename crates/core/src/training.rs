//! Depth selection and the high-level [`Efd`] facade.
//!
//! > "Rounding depth is the only tunable parameter in the EFD. During the
//! > learning phase we find the optimal rounding depth through cross-fold
//! > validation within the training set."
//!
//! [`Efd::fit`] implements exactly that: for every candidate depth, build
//! dictionaries on inner-fold training splits and score recognition on the
//! inner test splits; keep the depth with the best mean score. The paper
//! does not name the inner criterion; we use recognition accuracy over
//! application names (on these dictionaries it selects the same depth as
//! macro-F1 — the trade-off it navigates is exclusiveness vs repetition,
//! which both criteria see identically). Ties prefer the *smaller* depth:
//! more pruning means more robustness to unseen measurement variation.

use efd_telemetry::trace::ExecutionTrace;
use efd_telemetry::{Interval, MetricId};
use efd_util::split::stratified_k_fold_by;

use crate::dictionary::{EfdDictionary, Recognition};
use crate::observation::{LabeledObservation, Query};
use crate::rounding::RoundingDepth;

/// How the rounding depth is chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepthPolicy {
    /// Use a fixed depth (the paper's Table 4 uses 2).
    Fixed(RoundingDepth),
    /// Select by cross-fold validation inside the training set.
    Auto {
        /// Depths to try.
        candidates: Vec<RoundingDepth>,
        /// Inner folds.
        folds: usize,
        /// Shuffle seed for the inner folds.
        seed: u64,
    },
}

impl Default for DepthPolicy {
    fn default() -> Self {
        DepthPolicy::Auto {
            candidates: RoundingDepth::candidates(),
            folds: 5,
            seed: 0x5EED,
        }
    }
}

/// EFD configuration: which metrics and intervals to fingerprint, and how
/// to choose the depth. The paper's configuration is one metric × the
/// `[60:120]` interval × auto depth.
#[derive(Debug, Clone, PartialEq)]
pub struct EfdConfig {
    /// Metrics to fingerprint (usually one).
    pub metrics: Vec<MetricId>,
    /// Intervals to fingerprint (usually `[60:120]`).
    pub intervals: Vec<Interval>,
    /// Depth policy.
    pub depth: DepthPolicy,
}

impl EfdConfig {
    /// The paper's configuration for a given metric.
    pub fn single_metric(metric: MetricId) -> Self {
        Self {
            metrics: vec![metric],
            intervals: vec![Interval::PAPER_DEFAULT],
            depth: DepthPolicy::default(),
        }
    }

    /// Same, with a fixed depth.
    pub fn single_metric_fixed(metric: MetricId, depth: RoundingDepth) -> Self {
        Self {
            metrics: vec![metric],
            intervals: vec![Interval::PAPER_DEFAULT],
            depth: DepthPolicy::Fixed(depth),
        }
    }
}

/// A trained EFD: the dictionary plus the depth that built it.
#[derive(Debug, Clone)]
pub struct Efd {
    config: EfdConfig,
    dictionary: EfdDictionary,
    depth_scores: Vec<(RoundingDepth, f64)>,
}

impl Efd {
    /// Learn from labeled observations, selecting the depth per the
    /// config's policy, then build the final dictionary on *all* of
    /// `train`.
    pub fn fit(config: EfdConfig, train: &[LabeledObservation]) -> Self {
        let (depth, depth_scores) = match &config.depth {
            DepthPolicy::Fixed(d) => (*d, Vec::new()),
            DepthPolicy::Auto {
                candidates,
                folds,
                seed,
            } => select_depth(candidates, *folds, *seed, train),
        };
        let mut dictionary = EfdDictionary::new(depth);
        dictionary.learn_all(train);
        Self {
            config,
            dictionary,
            depth_scores,
        }
    }

    /// Convenience: reduce traces to observations and fit.
    pub fn fit_traces(config: EfdConfig, traces: &[ExecutionTrace]) -> Self {
        let obs: Vec<LabeledObservation> = traces
            .iter()
            .map(|t| LabeledObservation::from_trace(t, &config.metrics, &config.intervals))
            .collect();
        Self::fit(config, &obs)
    }

    /// Recognize a query.
    pub fn recognize(&self, query: &Query) -> Recognition {
        self.dictionary.recognize(query)
    }

    /// Recognize a trace (reduced with this EFD's metrics/intervals).
    pub fn recognize_trace(&self, trace: &ExecutionTrace) -> Recognition {
        let q = Query::from_trace(trace, &self.config.metrics, &self.config.intervals);
        self.recognize(&q)
    }

    /// The trained dictionary.
    pub fn dictionary(&self) -> &EfdDictionary {
        &self.dictionary
    }

    /// The configuration (metrics, intervals, policy).
    pub fn config(&self) -> &EfdConfig {
        &self.config
    }

    /// The depth in effect.
    pub fn depth(&self) -> RoundingDepth {
        self.dictionary.depth()
    }

    /// Mean inner-CV score per candidate depth (empty for fixed policy).
    pub fn depth_scores(&self) -> &[(RoundingDepth, f64)] {
        &self.depth_scores
    }
}

/// Inner cross-validation over candidate depths. Returns the chosen depth
/// and the mean score per candidate.
fn select_depth(
    candidates: &[RoundingDepth],
    folds: usize,
    seed: u64,
    train: &[LabeledObservation],
) -> (RoundingDepth, Vec<(RoundingDepth, f64)>) {
    assert!(!candidates.is_empty(), "no candidate depths");
    let fallback = candidates[0];
    if train.len() < folds.max(2) {
        return (fallback, Vec::new());
    }

    let labels: Vec<String> = train.iter().map(|o| o.label.to_string()).collect();
    let folds = stratified_k_fold_by(&labels, folds, seed);

    let mut scores = Vec::with_capacity(candidates.len());
    for &depth in candidates {
        let mut total_correct = 0usize;
        let mut total = 0usize;
        for fold in &folds {
            if fold.test.is_empty() || fold.train.is_empty() {
                continue;
            }
            let mut dict = EfdDictionary::new(depth);
            for &i in &fold.train {
                dict.learn(&train[i]);
            }
            for &i in &fold.test {
                let r = dict.recognize(&train[i].query);
                if r.best() == Some(train[i].label.app.as_str()) {
                    total_correct += 1;
                }
                total += 1;
            }
        }
        let score = if total == 0 {
            0.0
        } else {
            total_correct as f64 / total as f64
        };
        scores.push((depth, score));
    }

    // Max score; ties prefer the smaller depth (candidates are tried in
    // the given order and `>` keeps the first maximum).
    let mut best = scores[0];
    for &(d, s) in &scores[1..] {
        if s > best.1 {
            best = (d, s);
        }
    }
    (best.0, scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_telemetry::{AppLabel, MetricId};
    use efd_util::rng::SplitMix64;

    const M: MetricId = MetricId(0);
    const W: Interval = Interval::PAPER_DEFAULT;

    /// Synthetic training set where depth 2 collides two apps (sp/bt at
    /// ~7520/7540) but depth 3 separates them; depth 4+ overfits (every run
    /// gets a unique key).
    fn training_set(reps: usize) -> Vec<LabeledObservation> {
        let mut rng = SplitMix64::new(42);
        let mut out = Vec::new();
        for rep in 0..reps {
            for (app, base) in [
                ("ft", 6020.0),
                ("mg", 6110.0),
                ("sp", 7520.0),
                ("bt", 7540.0),
                ("lu", 8330.0),
            ] {
                let means: Vec<f64> = (0..4)
                    .map(|_| base + rng.next_gaussian() * 2.0)
                    .collect();
                out.push(LabeledObservation {
                    label: AppLabel::new(app, "X"),
                    query: Query::from_node_means(M, W, &means),
                });
            }
            let _ = rep;
        }
        out
    }

    #[test]
    fn auto_depth_picks_separating_depth() {
        let train = training_set(10);
        let efd = Efd::fit(EfdConfig::single_metric(M), &train);
        // Depth 2 ties sp/bt (accuracy ~0.8–0.9); depth 3 separates them.
        assert_eq!(efd.depth().get(), 3, "scores: {:?}", efd.depth_scores());
        let scores = efd.depth_scores();
        assert_eq!(scores.len(), 6);
        let s2 = scores.iter().find(|(d, _)| d.get() == 2).unwrap().1;
        let s3 = scores.iter().find(|(d, _)| d.get() == 3).unwrap().1;
        assert!(s3 > s2, "depth 3 ({s3}) should beat depth 2 ({s2})");
    }

    #[test]
    fn fixed_depth_respected() {
        let train = training_set(5);
        let efd = Efd::fit(
            EfdConfig::single_metric_fixed(M, RoundingDepth::new(2)),
            &train,
        );
        assert_eq!(efd.depth().get(), 2);
        assert!(efd.depth_scores().is_empty());
    }

    #[test]
    fn recognizes_after_fit() {
        let train = training_set(10);
        let efd = Efd::fit(EfdConfig::single_metric(M), &train);
        let q = Query::from_node_means(M, W, &[8331.0, 8329.0, 8332.0, 8330.0]);
        assert_eq!(efd.recognize(&q).best(), Some("lu"));
        // sp and bt both recognized at the selected depth.
        let q = Query::from_node_means(M, W, &[7519.0, 7521.0, 7520.0, 7518.0]);
        assert_eq!(efd.recognize(&q).best(), Some("sp"));
        let q = Query::from_node_means(M, W, &[7541.0, 7539.0, 7540.0, 7542.0]);
        assert_eq!(efd.recognize(&q).best(), Some("bt"));
    }

    #[test]
    fn unknown_app_stays_unknown() {
        let train = training_set(10);
        let efd = Efd::fit(EfdConfig::single_metric(M), &train);
        let q = Query::from_node_means(M, W, &[12345.0, 12340.0, 12350.0, 12344.0]);
        assert_eq!(efd.recognize(&q).best(), None);
    }

    #[test]
    fn tiny_training_set_falls_back() {
        let train = training_set(1); // 5 observations < 5 folds? equals; shrink further
        let efd = Efd::fit(EfdConfig::single_metric(M), &train[..3]);
        // Fallback = first candidate.
        assert_eq!(efd.depth().get(), 1);
        // Dictionary still built on everything.
        assert_eq!(efd.dictionary().label_count(), 3);
    }

    #[test]
    fn depth_selection_is_deterministic() {
        let train = training_set(8);
        let a = Efd::fit(EfdConfig::single_metric(M), &train);
        let b = Efd::fit(EfdConfig::single_metric(M), &train);
        assert_eq!(a.depth(), b.depth());
        assert_eq!(a.depth_scores(), b.depth_scores());
    }
}
