//! # Execution Fingerprint Dictionary (EFD)
//!
//! The paper's contribution: a Shazam-inspired key-value store that
//! recognizes repeated HPC application executions from a *single system
//! metric* and the *first two minutes* of telemetry.
//!
//! ```text
//! key   = [metric name, node id, time interval, ROUNDED mean]
//! value = [app input, app input, …]   (insertion-ordered)
//! ```
//!
//! * [`rounding`] — the paper's Table 1 "rounding depth" (significant-digit
//!   pruning), the EFD's only tunable parameter.
//! * [`fingerprint`] — fingerprint identity, display, and packing.
//! * [`observation`] — executions reduced to fingerprintable points.
//! * [`dictionary`] — learning, lookup, vote-based recognition with tie
//!   arrays and the `Unknown` safeguard, statistics, Table 4 rendering.
//! * [`training`] — rounding-depth selection by cross-fold validation
//!   inside the training set, and the high-level [`Efd`] facade.
//! * [`maintenance`] — dictionary lifecycle operations: merge dictionaries
//!   across clusters, forget/relearn applications, retain metric subsets.
//! * [`multi`] — combinatorial fingerprints over several metrics /
//!   intervals (paper's future work §6).
//! * [`align`] — Shazam-style temporal alignment across interval tilings
//!   (future work §6): recognition robust to unknown start offsets.
//! * [`reverse`] — reverse lookup: predict future resource usage of a known
//!   application from its stored fingerprints (future work §6).
//! * [`engine`] — the engine API: object-safe [`Learn`]/[`Recognize`]
//!   traits (and the [`VoteScratch`] dense-vote contract) unifying every
//!   backend — core dictionaries, combo keys, and the `efd-serve` forms —
//!   behind one interface.
//! * [`online`] — streaming recognizer: feed live samples, get a verdict
//!   the moment the fingerprint window closes.
//! * [`serialize`] — JSON dumps of dictionaries ("learning new applications
//!   is as simple as adding new keys").
//! * [`binfmt`] — EFDB, the versioned binary dictionary format: zero-parse
//!   persistence for instant serve cold-starts (spec in `docs/FORMAT.md`).
//! * [`diff`] — structural dictionary diffing (added/removed/relabelled
//!   keys, per-app coverage deltas, verdict-divergence sampling) backing
//!   `efd diff` and the versioned catalog.
//! * [`wal`] — crash-safe incremental persistence: an append-only learn
//!   log plus LSM-style immutable EFDB segments, with structured-error
//!   recovery and deterministic fault injection for testing it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod align;
pub mod binfmt;
pub mod dictionary;
pub mod diff;
pub mod engine;
pub mod fingerprint;
pub mod maintenance;
pub mod multi;
pub mod observation;
pub mod online;
pub mod reverse;
pub mod rounding;
pub mod serialize;
pub mod training;
pub mod wal;

pub use binfmt::{BinFormatError, Efdb};
pub use dictionary::{
    AppNameId, DictionaryParts, DictionaryStats, EfdDictionary, LabelId, Recognition, Verdict,
};
pub use engine::{Learn, ParallelRecognize, Recognize, VoteScratch};
pub use fingerprint::Fingerprint;
pub use observation::{LabeledObservation, ObsPoint, Query};
pub use rounding::{round_to_depth, RoundingDepth};
pub use training::{DepthPolicy, Efd, EfdConfig};
pub use wal::{SyncPolicy, WalDir, WalError, WalRecord};
