//! Fingerprint identity.
//!
//! A fingerprint is the paper's dictionary key:
//! `[metric name, node id, time interval, rounded mean]` — e.g.
//! `[nr_mapped_vmstat, 0, [60:120], 6000.0]`. Equality and hashing use the
//! rounded mean's bit pattern (with `-0.0` normalized), so fingerprints are
//! exact hash keys with no tolerance comparisons — the paper's entire point
//! ("we continue with low complexity by relying on dictionary-based
//! matching of fingerprints with rounded values").

use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::{Interval, MetricId, NodeId};

use crate::rounding::RoundingDepth;

/// A dictionary key: one rounded window mean on one node for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Which metric the mean was computed from.
    pub metric: MetricId,
    /// Which node of the allocation produced it.
    pub node: NodeId,
    /// The time window the mean covers.
    pub interval: Interval,
    /// Rounded mean, stored as normalized f64 bits (`-0.0` → `+0.0`) so the
    /// key is `Eq + Hash`.
    mean_bits: u64,
}

serde::impl_serde_struct!(Fingerprint {
    metric,
    node,
    interval,
    mean_bits,
});

impl Fingerprint {
    /// Build a fingerprint from a *raw* window mean, rounding at `depth`.
    /// Returns `None` for non-finite means (empty windows produce NaN and
    /// must not become keys).
    pub fn from_raw(
        metric: MetricId,
        node: NodeId,
        interval: Interval,
        raw_mean: f64,
        depth: RoundingDepth,
    ) -> Option<Self> {
        if !raw_mean.is_finite() {
            return None;
        }
        let rounded = depth.round(raw_mean);
        Some(Self::from_rounded(metric, node, interval, rounded))
    }

    /// Build from an already-rounded mean (deserialization, tests).
    pub fn from_rounded(metric: MetricId, node: NodeId, interval: Interval, mean: f64) -> Self {
        // Normalize -0.0 so it hashes identically to +0.0.
        let mean = if mean == 0.0 { 0.0 } else { mean };
        Self {
            metric,
            node,
            interval,
            mean_bits: mean.to_bits(),
        }
    }

    /// The rounded mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        f64::from_bits(self.mean_bits)
    }

    /// Paper-style rendering: `[nr_mapped_vmstat, 0, [60:120], 6000.0]`.
    pub fn display(&self, catalog: &MetricCatalog) -> String {
        format!(
            "[{}, {}, {}, {}]",
            catalog.name(self.metric),
            self.node,
            self.interval,
            fmt_mean(self.mean())
        )
    }

    /// Compact byte encoding (22 bytes): metric, node, interval, mean bits.
    pub fn pack(&self) -> [u8; 22] {
        let mut out = [0u8; 22];
        out[0..4].copy_from_slice(&self.metric.0.to_le_bytes());
        out[4..6].copy_from_slice(&self.node.0.to_le_bytes());
        out[6..10].copy_from_slice(&self.interval.start.to_le_bytes());
        out[10..14].copy_from_slice(&self.interval.end.to_le_bytes());
        out[14..22].copy_from_slice(&self.mean_bits.to_le_bytes());
        out
    }

    /// Decode [`Fingerprint::pack`]'s output.
    #[allow(clippy::missing_panics_doc)] // slices are statically sized
    pub fn unpack(bytes: &[u8; 22]) -> Self {
        let metric = MetricId(u32::from_le_bytes(bytes[0..4].try_into().unwrap()));
        let node = NodeId(u16::from_le_bytes(bytes[4..6].try_into().unwrap()));
        let start = u32::from_le_bytes(bytes[6..10].try_into().unwrap());
        let end = u32::from_le_bytes(bytes[10..14].try_into().unwrap());
        let mean_bits = u64::from_le_bytes(bytes[14..22].try_into().unwrap());
        Self {
            metric,
            node,
            interval: Interval { start, end },
            mean_bits,
        }
    }
}

/// Format a mean the way the paper's tables print them: integral values
/// keep one decimal (`6000.0`), fractional values print naturally (`5.3`).
pub fn fmt_mean(mean: f64) -> String {
    if mean.fract() == 0.0 && mean.abs() < 1e15 {
        format!("{mean:.1}")
    } else {
        format!("{mean}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_telemetry::catalog::small_catalog;

    fn fp(mean: f64, depth: u8) -> Option<Fingerprint> {
        Fingerprint::from_raw(
            MetricId(0),
            NodeId(0),
            Interval::PAPER_DEFAULT,
            mean,
            RoundingDepth::new(depth),
        )
    }

    #[test]
    fn rounding_applied_on_construction() {
        let f = fp(6037.2, 2).unwrap();
        assert_eq!(f.mean(), 6000.0);
    }

    #[test]
    fn similar_means_collide_after_rounding() {
        // The paper's mechanism: similar but distinct measurements round to
        // the same fingerprint.
        assert_eq!(fp(6037.2, 2), fp(5980.4, 2));
        assert_ne!(fp(6037.2, 3), fp(5980.4, 3));
    }

    #[test]
    fn nan_mean_yields_no_fingerprint() {
        assert!(fp(f64::NAN, 2).is_none());
        assert!(fp(f64::INFINITY, 2).is_none());
    }

    #[test]
    fn negative_zero_normalized() {
        let a = Fingerprint::from_rounded(MetricId(0), NodeId(0), Interval::PAPER_DEFAULT, 0.0);
        let b = Fingerprint::from_rounded(MetricId(0), NodeId(0), Interval::PAPER_DEFAULT, -0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn display_matches_paper_format() {
        let c = small_catalog();
        let id = c.id("nr_mapped_vmstat").unwrap();
        let f = Fingerprint::from_raw(
            id,
            NodeId(0),
            Interval::PAPER_DEFAULT,
            6037.2,
            RoundingDepth::new(2),
        )
        .unwrap();
        assert_eq!(f.display(&c), "[nr_mapped_vmstat, 0, [60:120], 6000.0]");
    }

    #[test]
    fn mean_formatting() {
        assert_eq!(fmt_mean(6000.0), "6000.0");
        assert_eq!(fmt_mean(5.3), "5.3");
        assert_eq!(fmt_mean(0.04), "0.04");
    }

    #[test]
    fn keys_distinguish_all_components() {
        let base = fp(6000.0, 2).unwrap();
        let other_metric = Fingerprint::from_rounded(
            MetricId(1),
            NodeId(0),
            Interval::PAPER_DEFAULT,
            6000.0,
        );
        let other_node =
            Fingerprint::from_rounded(MetricId(0), NodeId(1), Interval::PAPER_DEFAULT, 6000.0);
        let other_interval =
            Fingerprint::from_rounded(MetricId(0), NodeId(0), Interval::new(0, 60), 6000.0);
        assert_ne!(base, other_metric);
        assert_ne!(base, other_node);
        assert_ne!(base, other_interval);
    }

    #[test]
    fn pack_roundtrip() {
        let f = Fingerprint::from_rounded(
            MetricId(561),
            NodeId(31),
            Interval::new(120, 180),
            10980.0,
        );
        assert_eq!(Fingerprint::unpack(&f.pack()), f);
    }
}
