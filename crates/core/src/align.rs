//! Temporal alignment (paper future work, §6).
//!
//! Shazam does not match isolated hashes: it histograms the *time offset*
//! between query hashes and database hashes, and a true match shows up as
//! many hashes agreeing on one offset. The EFD analogue: populate the
//! dictionary with a whole tiling of intervals (`[0:60]`, `[60:120]`, …)
//! and, when recognizing a stream whose start time is unknown (monitoring
//! attached mid-execution), try every alignment of observed windows against
//! dictionary windows and score each application by its best-aligned vote
//! count.
//!
//! This also strengthens recognition of time-varying applications: miniAMR
//! ramps, so its `[60:120]` and `[180:240]` fingerprints differ — alignment
//! exploits that sequence instead of being confused by it.

use efd_telemetry::{Interval, NodeId};
use efd_util::FxHashMap;

use crate::dictionary::EfdDictionary;
use crate::fingerprint::Fingerprint;
use crate::observation::Query;

/// An application's best temporal alignment against the dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignedMatch {
    /// Application name.
    pub app: String,
    /// Votes at the best offset.
    pub votes: u32,
    /// Best offset in *windows* (dictionary window index − query window
    /// index): 0 means the stream started at execution start.
    pub offset_windows: i32,
}

/// Recognizer that aligns query windows against a dictionary built over an
/// interval tiling.
#[derive(Debug, Clone)]
pub struct AlignedRecognizer<'d> {
    dict: &'d EfdDictionary,
    tiling: Vec<Interval>,
}

impl<'d> AlignedRecognizer<'d> {
    /// Wrap a dictionary whose keys use intervals from `tiling` (window
    /// index = position in `tiling`).
    pub fn new(dict: &'d EfdDictionary, tiling: Vec<Interval>) -> Self {
        assert!(!tiling.is_empty(), "empty tiling");
        Self { dict, tiling }
    }

    /// Recognize a query whose points use *local* window indices (the
    /// query's intervals are positions in the same tiling geometry but
    /// with an unknown global offset). Returns matches sorted by votes
    /// (descending), each at its best offset.
    pub fn recognize(&self, query: &Query) -> Vec<AlignedMatch> {
        // votes[(app, offset)] → count
        let mut votes: FxHashMap<(String, i32), u32> = FxHashMap::default();

        for p in &query.points {
            // Local window index of this point.
            let Some(qi) = self.tiling.iter().position(|iv| *iv == p.interval) else {
                continue;
            };
            if !p.mean.is_finite() {
                continue;
            }
            // Try every dictionary window this mean could correspond to.
            for (di, &div) in self.tiling.iter().enumerate() {
                let fp = Fingerprint::from_raw(p.metric, p.node, div, p.mean, self.dict.depth());
                let Some(fp) = fp else { continue };
                if let Some(labels) = self.dict.lookup(&fp) {
                    let offset = di as i32 - qi as i32;
                    let mut apps_here: Vec<&str> = Vec::new();
                    for l in labels {
                        if !apps_here.contains(&l.app.as_str()) {
                            apps_here.push(&l.app);
                            *votes.entry((l.app.clone(), offset)).or_default() += 1;
                        }
                    }
                }
            }
        }

        // Best offset per app.
        let mut best: FxHashMap<String, (u32, i32)> = FxHashMap::default();
        for ((app, offset), v) in votes {
            let e = best.entry(app).or_insert((0, 0));
            if v > e.0 || (v == e.0 && offset.abs() < e.1.abs()) {
                *e = (v, offset);
            }
        }
        let mut out: Vec<AlignedMatch> = best
            .into_iter()
            .map(|(app, (votes, offset_windows))| AlignedMatch {
                app,
                votes,
                offset_windows,
            })
            .collect();
        out.sort_by(|a, b| b.votes.cmp(&a.votes).then(a.app.cmp(&b.app)));
        out
    }
}

/// Build a query whose intervals are the first `n` windows of `tiling`,
/// from per-window means (single metric, one node) — convenience for the
/// mid-execution attachment scenario.
pub fn query_from_windows(
    metric: efd_telemetry::MetricId,
    node: NodeId,
    tiling: &[Interval],
    means: &[f64],
) -> Query {
    let mut q = Query::default();
    for (i, &mean) in means.iter().enumerate() {
        if i >= tiling.len() {
            break;
        }
        q.points.push(crate::observation::ObsPoint {
            metric,
            node,
            interval: tiling[i],
            mean,
        });
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::LabeledObservation;
    use crate::rounding::RoundingDepth;
    use efd_telemetry::{AppLabel, MetricId};

    const M: MetricId = MetricId(0);

    /// miniAMR-like app: mean grows window over window (7800, 8000, 8200,
    /// 8400, …). A constant app sits at 6000 in every window.
    fn train_dict(tiling: &[Interval]) -> EfdDictionary {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        let ramp: Vec<f64> = (0..tiling.len()).map(|i| 7800.0 + 200.0 * i as f64).collect();
        let mut q = Query::default();
        for (i, &iv) in tiling.iter().enumerate() {
            q.points.push(crate::observation::ObsPoint {
                metric: M,
                node: NodeId(0),
                interval: iv,
                mean: ramp[i],
            });
        }
        d.learn(&LabeledObservation {
            label: AppLabel::new("miniAMR", "X"),
            query: q,
        });
        let mut q = Query::default();
        for &iv in tiling {
            q.points.push(crate::observation::ObsPoint {
                metric: M,
                node: NodeId(0),
                interval: iv,
                mean: 6000.0,
            });
        }
        d.learn(&LabeledObservation {
            label: AppLabel::new("ft", "X"),
            query: q,
        });
        d
    }

    #[test]
    fn zero_offset_alignment() {
        let tiling = Interval::tiling(60, 360); // 6 windows
        let d = train_dict(&tiling);
        let rec = AlignedRecognizer::new(&d, tiling.clone());
        let q = query_from_windows(M, NodeId(0), &tiling, &[7810.0, 7990.0, 8190.0]);
        let m = rec.recognize(&q);
        assert_eq!(m[0].app, "miniAMR");
        assert_eq!(m[0].offset_windows, 0);
        assert_eq!(m[0].votes, 3);
    }

    #[test]
    fn late_attachment_found_at_positive_offset() {
        let tiling = Interval::tiling(60, 360);
        let d = train_dict(&tiling);
        let rec = AlignedRecognizer::new(&d, tiling.clone());
        // We attached two windows late: our local windows 0..3 hold what
        // the dictionary stored at windows 2..5 (8200, 8400, 8600).
        let q = query_from_windows(M, NodeId(0), &tiling, &[8210.0, 8390.0, 8590.0]);
        let m = rec.recognize(&q);
        assert_eq!(m[0].app, "miniAMR");
        assert_eq!(m[0].offset_windows, 2);
        assert_eq!(m[0].votes, 3);
    }

    #[test]
    fn constant_app_matches_any_offset_without_penalty() {
        let tiling = Interval::tiling(60, 360);
        let d = train_dict(&tiling);
        let rec = AlignedRecognizer::new(&d, tiling.clone());
        let q = query_from_windows(M, NodeId(0), &tiling, &[6010.0, 5990.0]);
        let m = rec.recognize(&q);
        assert_eq!(m[0].app, "ft");
        // A constant signature aligns everywhere; ties prefer |offset|
        // closest to zero.
        assert_eq!(m[0].offset_windows, 0);
        assert_eq!(m[0].votes, 2);
    }

    #[test]
    fn ramp_beats_constant_in_exclusiveness() {
        // A wrong ramp (downward) must not align with miniAMR.
        let tiling = Interval::tiling(60, 360);
        let d = train_dict(&tiling);
        let rec = AlignedRecognizer::new(&d, tiling.clone());
        let q = query_from_windows(M, NodeId(0), &tiling, &[8600.0, 8400.0, 8200.0]);
        let m = rec.recognize(&q);
        // Each window matches *some* miniAMR key but at inconsistent
        // offsets → best aligned count is 1, not 3.
        let amr = m.iter().find(|x| x.app == "miniAMR").unwrap();
        assert_eq!(amr.votes, 1);
    }

    #[test]
    fn unknown_stream_yields_no_matches() {
        let tiling = Interval::tiling(60, 360);
        let d = train_dict(&tiling);
        let rec = AlignedRecognizer::new(&d, tiling.clone());
        let q = query_from_windows(M, NodeId(0), &tiling, &[123.0, 456.0]);
        assert!(rec.recognize(&q).is_empty());
    }
}
