//! Executions reduced to fingerprintable points.
//!
//! The dictionary never needs raw series — only *window means* per
//! (metric, node, interval). A [`Query`] is that reduction for an unlabeled
//! execution; a [`LabeledObservation`] adds the ground-truth label for
//! learning. Both can be built from a full [`ExecutionTrace`] or assembled
//! directly from precomputed means (the screening fast path).

use efd_telemetry::trace::ExecutionTrace;
use efd_telemetry::{AppLabel, Interval, MetricId, NodeId};

/// One fingerprintable point: the *raw* (unrounded) window mean of one
/// metric on one node over one interval. Rounding happens at dictionary
/// insertion/lookup so the same observation can be evaluated at any depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsPoint {
    /// Source metric.
    pub metric: MetricId,
    /// Source node.
    pub node: NodeId,
    /// Window the mean covers.
    pub interval: Interval,
    /// Raw mean (NaN if the window had no valid samples).
    pub mean: f64,
}

/// An unlabeled execution reduced to its fingerprintable points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// The points, in (interval, metric, node) construction order.
    pub points: Vec<ObsPoint>,
}

impl Query {
    /// Reduce a trace to window means for the given metrics × intervals.
    /// Metrics absent from the trace's selection are skipped.
    pub fn from_trace(
        trace: &ExecutionTrace,
        metrics: &[MetricId],
        intervals: &[Interval],
    ) -> Self {
        let mut points = Vec::with_capacity(metrics.len() * intervals.len() * trace.node_count());
        for &interval in intervals {
            for &metric in metrics {
                for (node, series) in trace.per_node_series(metric) {
                    points.push(ObsPoint {
                        metric,
                        node,
                        interval,
                        mean: series.window_mean(interval),
                    });
                }
            }
        }
        Self { points }
    }

    /// Build directly from per-node means of a single metric × interval
    /// (nodes numbered 0..n in order).
    pub fn from_node_means(metric: MetricId, interval: Interval, means: &[f64]) -> Self {
        let points = means
            .iter()
            .enumerate()
            .map(|(n, &mean)| ObsPoint {
                metric,
                node: NodeId(n as u16),
                interval,
                mean,
            })
            .collect();
        Self { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the query carries no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A labeled execution (learning input).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledObservation {
    /// Ground truth: application + input size.
    pub label: AppLabel,
    /// The fingerprintable points.
    pub query: Query,
}

impl LabeledObservation {
    /// Reduce a labeled trace.
    pub fn from_trace(
        trace: &ExecutionTrace,
        metrics: &[MetricId],
        intervals: &[Interval],
    ) -> Self {
        Self {
            label: trace.label.clone(),
            query: Query::from_trace(trace, metrics, intervals),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efd_telemetry::series::TimeSeries;
    use efd_telemetry::trace::{MetricSelection, NodeTrace};

    fn trace_two_metrics() -> ExecutionTrace {
        let sel = MetricSelection::new(vec![MetricId(7), MetricId(9)]);
        ExecutionTrace {
            exec_id: 1,
            label: AppLabel::new("ft", "X"),
            selection: sel,
            nodes: (0..2)
                .map(|n| NodeTrace {
                    node: NodeId(n),
                    series: vec![
                        TimeSeries::from_values(vec![10.0 + n as f64; 200]),
                        TimeSeries::from_values(vec![100.0 + n as f64; 200]),
                    ],
                })
                .collect(),
            duration_s: 200,
        }
    }

    #[test]
    fn from_trace_builds_all_points() {
        let t = trace_two_metrics();
        let q = Query::from_trace(
            &t,
            &[MetricId(7), MetricId(9)],
            &[Interval::PAPER_DEFAULT],
        );
        assert_eq!(q.len(), 4); // 2 metrics × 2 nodes × 1 interval
        let p = &q.points[0];
        assert_eq!(p.metric, MetricId(7));
        assert_eq!(p.node, NodeId(0));
        assert_eq!(p.mean, 10.0);
        assert_eq!(q.points[3].mean, 101.0);
    }

    #[test]
    fn missing_metric_skipped() {
        let t = trace_two_metrics();
        let q = Query::from_trace(&t, &[MetricId(42)], &[Interval::PAPER_DEFAULT]);
        assert!(q.is_empty());
    }

    #[test]
    fn multiple_intervals_multiply_points() {
        let t = trace_two_metrics();
        let q = Query::from_trace(
            &t,
            &[MetricId(7)],
            &[Interval::new(0, 60), Interval::new(60, 120)],
        );
        assert_eq!(q.len(), 4); // 1 metric × 2 nodes × 2 intervals
    }

    #[test]
    fn window_past_series_end_gives_nan_mean() {
        let t = trace_two_metrics();
        let q = Query::from_trace(&t, &[MetricId(7)], &[Interval::new(500, 600)]);
        assert_eq!(q.len(), 2);
        assert!(q.points[0].mean.is_nan());
    }

    #[test]
    fn from_node_means_orders_nodes() {
        let q = Query::from_node_means(MetricId(3), Interval::PAPER_DEFAULT, &[5.0, 6.0, 7.0]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.points[2].node, NodeId(2));
        assert_eq!(q.points[2].mean, 7.0);
    }

    #[test]
    fn labeled_observation_carries_label() {
        let t = trace_two_metrics();
        let o = LabeledObservation::from_trace(&t, &[MetricId(7)], &[Interval::PAPER_DEFAULT]);
        assert_eq!(o.label.to_string(), "ft X");
        assert_eq!(o.query.len(), 2);
    }
}
