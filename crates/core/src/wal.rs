//! Write-ahead learn log + immutable segments: crash-safe incremental
//! persistence for continuously-learning dictionaries.
//!
//! EFDB ([`crate::binfmt`]) is a full-dump format — the right shape for
//! publishing a finished dictionary, the wrong shape for a recognizer
//! that learns forever: persisting by rewriting the world means a crash
//! mid-dump loses everything since the last snapshot. This module adds
//! the LSM-style durability pair:
//!
//! * **WAL** — an append-only log of learn (and forget) operations, one
//!   length-prefixed, checksummed record per operation, reusing EFDB's
//!   little-endian encoding and FxHash checksum discipline. An operation
//!   is durable the moment its record is synced; recovery replays the
//!   log in order.
//! * **Segments** — when the log passes a size threshold it is *frozen*:
//!   the full current dictionary state is written as a canonical EFDB
//!   file (`segment-NNNNNN.efdb`) and the log resets. Each segment is a
//!   **cumulative snapshot** — it supersedes every lower-numbered one
//!   (loading an older segment too could resurrect keys forgotten
//!   between freezes), so recovery loads only the newest and
//!   [`compact_in_place`] deletes the rest, with canonical-bytes
//!   equality against a from-scratch EFDB dump (the
//!   [`DictionaryParts`] merge rules) as the correctness oracle.
//!
//! Cold start is therefore *newest segment + log tail*, and recovery
//! tolerates real failure modes with a structured [`WalError`] taxonomy
//! mirroring [`BinFormatError`]:
//!
//! * a **torn final record** (power loss mid-append) is truncated away
//!   with a warning — [`WalError::TornRecord`];
//! * a **checksum mismatch** stops replay at the last valid record and
//!   reports the byte position — [`WalError::CorruptRecord`];
//! * **missing segments** (the log requires more than the directory
//!   holds) and undecodable segments are hard errors —
//!   [`WalError::MissingSegments`] / [`WalError::Segment`];
//! * a **stale extra segment** (crash between segment write and log
//!   reset) is *safe*: the log still holds the operations the segment
//!   captured, and replaying an operation sequence over its own result
//!   is idempotent — learn re-inserts dedup, forgets re-remove.
//!
//! The [`fault`] submodule provides the deterministic fault-injection
//! writer the recovery test matrix is built on: truncations, bit flips,
//! and short writes at controlled offsets, in the spirit of the binfmt
//! corruption tests.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! wal.log            header | record | record | …
//! segment-000001.efdb   canonical EFDB (crate::binfmt)
//! segment-000002.efdb   …
//! ```
//!
//! The byte-level record spec lives in `docs/FORMAT.md`; this module is
//! the reference implementation.

use std::fmt;
use std::fs;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use efd_telemetry::metric::MetricCatalog;
use efd_telemetry::{AppLabel, Interval, NodeId};

use crate::binfmt::{self, BinFormatError};
use crate::dictionary::{DictionaryParts, EfdDictionary};
use crate::maintenance;
use crate::observation::LabeledObservation;
use crate::rounding::RoundingDepth;

/// The four magic bytes every WAL file starts with.
pub const WAL_MAGIC: [u8; 4] = *b"EFDW";

/// WAL format major version this module writes; readers reject any other
/// major.
pub const WAL_VERSION_MAJOR: u16 = 1;

/// WAL format minor version; readers accept older-or-equal minors and
/// reject newer ones, whose extensions they would silently ignore.
pub const WAL_VERSION_MINOR: u16 = 0;

/// Size of the fixed log header (magic through `base_segments`).
pub const WAL_HEADER_LEN: usize = 16;

/// Size of one record frame before the payload (`len` u32 + `crc` u64).
pub const RECORD_FRAME_LEN: usize = 12;

/// Name of the log file inside a WAL directory.
pub const LOG_FILE: &str = "wal.log";

/// Errors reading, replaying, or managing a WAL directory.
///
/// Marked `#[non_exhaustive]` like [`BinFormatError`]: future recovery
/// validations may add variants without a semver break.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WalError {
    /// The log ends before the fixed header could be read in full.
    Truncated {
        /// Which field was being read.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The first four bytes are not [`WAL_MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The log's version is outside what this reader accepts.
    UnsupportedVersion {
        /// Major version stored in the log.
        major: u16,
        /// Minor version stored in the log.
        minor: u16,
    },
    /// The header's rounding depth is outside `1..=17`.
    InvalidDepth(u8),
    /// The final record is incomplete — the classic torn write. Recovery
    /// truncates the log back to `offset` and warns.
    TornRecord {
        /// Byte offset of the incomplete record's frame.
        offset: u64,
        /// Bytes the full record would need.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// A record's payload does not match its stored checksum. Replay
    /// stops at the last valid record; `offset` reports the position.
    CorruptRecord {
        /// Byte offset of the corrupt record's frame.
        offset: u64,
        /// Checksum stored in the frame.
        stored: u64,
        /// Checksum computed over the payload bytes.
        computed: u64,
    },
    /// A record frame declares a zero-length payload, which no writer
    /// produces — typically pre-allocated or zero-filled space.
    ZeroLengthRecord {
        /// Byte offset of the offending frame.
        offset: u64,
    },
    /// A record's checksum is valid but its payload is malformed
    /// (unknown kind, bad UTF-8, inconsistent lengths…).
    BadRecord {
        /// Byte offset of the record's frame.
        offset: u64,
        /// What was malformed.
        what: &'static str,
    },
    /// Replay: a stored metric name is absent from the loader's catalog.
    UnknownMetric {
        /// Index of the record being replayed.
        record: usize,
        /// The unresolvable metric name.
        metric: String,
    },
    /// A segment was built at a different rounding depth than the log.
    DepthMismatch {
        /// Depth in the log header.
        log: u8,
        /// Depth of the offending segment.
        segment: u8,
    },
    /// The log header requires a segment newer than any the directory
    /// holds — knowledge frozen out of the log is gone.
    MissingSegments {
        /// Segment sequence number the log header says must exist.
        expected: u32,
        /// Highest sequence number actually found (0 = none).
        found: u32,
    },
    /// A segment file failed EFDB validation.
    Segment {
        /// Path of the bad segment.
        path: String,
        /// The underlying format error.
        error: BinFormatError,
    },
    /// An I/O operation failed (message carries `std::io::Error` text).
    Io {
        /// Path the operation touched.
        path: String,
        /// The I/O error text.
        message: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Truncated { what, need, have } => {
                write!(f, "truncated while reading {what}: need {need} bytes, have {have}")
            }
            WalError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected \"EFDW\")")
            }
            WalError::UnsupportedVersion { major, minor } => write!(
                f,
                "unsupported WAL version {major}.{minor} (this reader accepts \
                 {WAL_VERSION_MAJOR}.0 ..= {WAL_VERSION_MAJOR}.{WAL_VERSION_MINOR})"
            ),
            WalError::InvalidDepth(d) => write!(f, "rounding depth {d} outside 1..=17"),
            WalError::TornRecord { offset, need, have } => write!(
                f,
                "torn record at byte offset {offset}: need {need} bytes, have {have}"
            ),
            WalError::CorruptRecord {
                offset,
                stored,
                computed,
            } => write!(
                f,
                "corrupt record at byte offset {offset}: stored checksum {stored:#018x}, \
                 computed {computed:#018x}"
            ),
            WalError::ZeroLengthRecord { offset } => {
                write!(f, "zero-length record at byte offset {offset}")
            }
            WalError::BadRecord { offset, what } => {
                write!(f, "malformed record at byte offset {offset}: {what}")
            }
            WalError::UnknownMetric { record, metric } => {
                write!(f, "record #{record}: metric {metric:?} not in catalog")
            }
            WalError::DepthMismatch { log, segment } => write!(
                f,
                "rounding depth mismatch: log is depth {log}, segment is depth {segment}"
            ),
            WalError::MissingSegments { expected, found } => write!(
                f,
                "missing segments: log requires segment {expected}, newest on disk is {found}"
            ),
            WalError::Segment { path, error } => write!(f, "segment {path}: {error}"),
            WalError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(path: &Path, e: &io::Error) -> WalError {
    WalError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// When appends reach the disk.
///
/// The durability contract is per-policy: an operation is *durably
/// acknowledged* once its record has been `fsync`ed — under
/// [`SyncPolicy::Always`] that is every append, under
/// [`SyncPolicy::EveryN`] every N-th append (a crash loses at most the
/// last unsynced batch), under [`SyncPolicy::Never`] only explicit
/// [`WalDir::sync`] calls (and segment freezes) flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every record — strongest guarantee, slowest.
    Always,
    /// `fsync` after every N records (the batching middle ground).
    EveryN(u32),
    /// Never `fsync` implicitly; the OS flushes when it pleases.
    Never,
}

impl SyncPolicy {
    /// Parse a `--wal-sync` flag value: `always`, `batch` (= every 32),
    /// `none`, or a number (= every N).
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        match s {
            "always" => Some(SyncPolicy::Always),
            "batch" => Some(SyncPolicy::EveryN(32)),
            "none" => Some(SyncPolicy::Never),
            n => n.parse::<u32>().ok().filter(|&n| n > 0).map(SyncPolicy::EveryN),
        }
    }
}

/// Tuning for a [`WalDir`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// When appends are `fsync`ed (default: [`SyncPolicy::EveryN`]`(32)`).
    pub sync: SyncPolicy,
    /// Freeze the log into a segment once its record bytes exceed this
    /// (default 1 MiB). [`WalDir::should_freeze`] reports the condition;
    /// the owner decides when to act on it.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            sync: SyncPolicy::EveryN(32),
            segment_bytes: 1 << 20,
        }
    }
}

/// One fingerprint point inside a [`LearnRecord`], metric still in name
/// form (records are portable across catalog rebuilds, like EFDB keys).
#[derive(Debug, Clone, PartialEq)]
pub struct WalPoint {
    /// Metric name (resolved against the replaying catalog).
    pub metric: String,
    /// Node id.
    pub node: u16,
    /// Interval start second (inclusive).
    pub start: u32,
    /// Interval end second (exclusive); always > `start`.
    pub end: u32,
    /// IEEE-754 bits of the **raw** mean — replay re-rounds at the
    /// dictionary's depth, which is idempotent for already-rounded input.
    pub mean_bits: u64,
}

/// One logged learn: a labeled observation in name form.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnRecord {
    /// Application name.
    pub app: String,
    /// Input-size name.
    pub input: String,
    /// The observation's fingerprint points.
    pub points: Vec<WalPoint>,
}

impl LearnRecord {
    /// Encode a labeled observation for the log (metric ids resolved to
    /// names via `catalog`).
    pub fn from_observation(obs: &LabeledObservation, catalog: &MetricCatalog) -> LearnRecord {
        LearnRecord {
            app: obs.label.app.clone(),
            input: obs.label.input.clone(),
            points: obs
                .query
                .points
                .iter()
                .map(|p| WalPoint {
                    metric: catalog.name(p.metric).to_string(),
                    node: p.node.0,
                    start: p.interval.start,
                    end: p.interval.end,
                    mean_bits: p.mean.to_bits(),
                })
                .collect(),
        }
    }
}

/// One logged operation. Learns dominate; forgets exist so that
/// maintenance ([`crate::maintenance`]) composes with replay — an
/// eviction that is not logged would resurrect on recovery.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WalRecord {
    /// Learn a labeled observation.
    Learn(LearnRecord),
    /// Forget every key of an application ([`maintenance::forget_app`]).
    ForgetApp {
        /// The application to forget.
        app: String,
    },
    /// Forget one application + input ([`maintenance::forget_label`]).
    ForgetLabel {
        /// The application.
        app: String,
        /// The input size.
        input: String,
    },
}

const KIND_LEARN: u8 = 1;
const KIND_FORGET_APP: u8 = 2;
const KIND_FORGET_LABEL: u8 = 3;

fn push_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "WAL string over 64 KiB");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode a record's payload (everything after the `len`+`crc` frame).
pub fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match rec {
        WalRecord::Learn(l) => {
            out.push(KIND_LEARN);
            push_str(&mut out, &l.app);
            push_str(&mut out, &l.input);
            out.extend_from_slice(&(l.points.len() as u32).to_le_bytes());
            for p in &l.points {
                push_str(&mut out, &p.metric);
                out.extend_from_slice(&p.node.to_le_bytes());
                out.extend_from_slice(&p.start.to_le_bytes());
                out.extend_from_slice(&p.end.to_le_bytes());
                out.extend_from_slice(&p.mean_bits.to_le_bytes());
            }
        }
        WalRecord::ForgetApp { app } => {
            out.push(KIND_FORGET_APP);
            push_str(&mut out, app);
        }
        WalRecord::ForgetLabel { app, input } => {
            out.push(KIND_FORGET_LABEL);
            push_str(&mut out, app);
            push_str(&mut out, input);
        }
    }
    out
}

/// Encode a full framed record: `len` (u32) + `crc` (u64, FxHash of the
/// payload) + payload.
pub fn frame_record(rec: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(rec);
    let mut out = Vec::with_capacity(RECORD_FRAME_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&efd_util::hash::hash_bytes(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Encode a fresh log header.
pub fn encode_header(depth: RoundingDepth, base_segments: u32) -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[..4].copy_from_slice(&WAL_MAGIC);
    h[4..6].copy_from_slice(&WAL_VERSION_MAJOR.to_le_bytes());
    h[6..8].copy_from_slice(&WAL_VERSION_MINOR.to_le_bytes());
    h[8] = depth.get();
    // bytes 9..12 reserved (minor-version extension space)
    h[12..16].copy_from_slice(&base_segments.to_le_bytes());
    h
}

/// Payload decoder — bounds-checked, every failure a [`WalError::BadRecord`]
/// anchored at the record's frame offset.
struct PayloadCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    offset: u64,
}

impl<'a> PayloadCursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WalError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(WalError::BadRecord {
                offset: self.offset,
                what,
            }),
        }
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WalError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn string(&mut self, what: &'static str) -> Result<String, WalError> {
        let len = self.u16(what)? as usize;
        let raw = self.take(len, what)?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| WalError::BadRecord {
                offset: self.offset,
                what: "string is not valid UTF-8",
            })
    }
}

/// Decode a record payload whose checksum already verified.
pub fn decode_payload(payload: &[u8], offset: u64) -> Result<WalRecord, WalError> {
    let mut c = PayloadCursor {
        bytes: payload,
        pos: 0,
        offset,
    };
    let kind = c.take(1, "record kind")?[0];
    let rec = match kind {
        KIND_LEARN => {
            let app = c.string("learn app name")?;
            let input = c.string("learn input name")?;
            let n = c.u32("learn point count")? as usize;
            let mut points = Vec::with_capacity(n.min(payload.len() / 20));
            for _ in 0..n {
                let metric = c.string("point metric name")?;
                let node = c.u16("point node")?;
                let start = c.u32("point interval start")?;
                let end = c.u32("point interval end")?;
                if end <= start {
                    return Err(WalError::BadRecord {
                        offset,
                        what: "empty interval in point",
                    });
                }
                let mean_bits = c.u64("point mean bits")?;
                points.push(WalPoint {
                    metric,
                    node,
                    start,
                    end,
                    mean_bits,
                });
            }
            WalRecord::Learn(LearnRecord { app, input, points })
        }
        KIND_FORGET_APP => WalRecord::ForgetApp {
            app: c.string("forget app name")?,
        },
        KIND_FORGET_LABEL => WalRecord::ForgetLabel {
            app: c.string("forget app name")?,
            input: c.string("forget input name")?,
        },
        _ => {
            return Err(WalError::BadRecord {
                offset,
                what: "unknown record kind",
            })
        }
    };
    if c.pos != payload.len() {
        return Err(WalError::BadRecord {
            offset,
            what: "trailing bytes after record payload",
        });
    }
    Ok(rec)
}

/// The decoded contents of a log file: every valid record, plus the tail
/// fault (if any) that stopped the scan.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a replay holds the recovered operations; apply or inspect them"]
pub struct LogReplay {
    /// Rounding depth from the header.
    pub depth: RoundingDepth,
    /// Number of segments the header requires on disk.
    pub base_segments: u32,
    /// Every fully-valid record, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + valid records). Bytes
    /// past this are the torn/corrupt tail and are discarded on recovery.
    pub valid_len: u64,
    /// The fault that stopped the scan, if the log did not end cleanly:
    /// [`WalError::TornRecord`], [`WalError::CorruptRecord`],
    /// [`WalError::ZeroLengthRecord`], or [`WalError::BadRecord`].
    pub fault: Option<WalError>,
}

/// Decode a log byte stream.
///
/// Header problems (truncation, magic, version, depth) are hard errors.
/// Record-level problems are *tail faults*: the scan stops at the last
/// valid record and reports what it hit and where, so recovery can keep
/// the durably-written prefix — the crash-tolerance contract.
pub fn read_log(bytes: &[u8]) -> Result<LogReplay, WalError> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(WalError::Truncated {
            what: "wal header",
            need: WAL_HEADER_LEN,
            have: bytes.len(),
        });
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(WalError::BadMagic {
            found: bytes[..4].try_into().unwrap(),
        });
    }
    let major = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    let minor = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    if major != WAL_VERSION_MAJOR || minor > WAL_VERSION_MINOR {
        return Err(WalError::UnsupportedVersion { major, minor });
    }
    let depth =
        RoundingDepth::try_new(bytes[8]).ok_or(WalError::InvalidDepth(bytes[8]))?;
    let base_segments = u32::from_le_bytes(bytes[12..16].try_into().unwrap());

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    let mut fault = None;
    while pos < bytes.len() {
        let have = bytes.len() - pos;
        if have < RECORD_FRAME_LEN {
            fault = Some(WalError::TornRecord {
                offset: pos as u64,
                need: RECORD_FRAME_LEN,
                have,
            });
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if len == 0 {
            fault = Some(WalError::ZeroLengthRecord { offset: pos as u64 });
            break;
        }
        let stored = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        if have < RECORD_FRAME_LEN + len {
            fault = Some(WalError::TornRecord {
                offset: pos as u64,
                need: RECORD_FRAME_LEN + len,
                have,
            });
            break;
        }
        let payload = &bytes[pos + RECORD_FRAME_LEN..pos + RECORD_FRAME_LEN + len];
        let computed = efd_util::hash::hash_bytes(payload);
        if stored != computed {
            fault = Some(WalError::CorruptRecord {
                offset: pos as u64,
                stored,
                computed,
            });
            break;
        }
        match decode_payload(payload, pos as u64) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                fault = Some(e);
                break;
            }
        }
        pos += RECORD_FRAME_LEN + len;
    }
    Ok(LogReplay {
        depth,
        base_segments,
        records,
        valid_len: pos as u64,
        fault,
    })
}

/// Apply one replayed operation to a dictionary. `index` is the record's
/// position, used only to anchor [`WalError::UnknownMetric`].
pub fn apply_record(
    dict: &mut EfdDictionary,
    rec: &WalRecord,
    catalog: &MetricCatalog,
    index: usize,
) -> Result<(), WalError> {
    match rec {
        WalRecord::Learn(l) => {
            let label = AppLabel::new(&l.app, &l.input);
            for p in &l.points {
                let metric = catalog.id(&p.metric).ok_or_else(|| WalError::UnknownMetric {
                    record: index,
                    metric: p.metric.clone(),
                })?;
                dict.insert_raw(
                    metric,
                    NodeId(p.node),
                    Interval::new(p.start, p.end),
                    f64::from_bits(p.mean_bits),
                    &label,
                );
            }
        }
        WalRecord::ForgetApp { app } => {
            maintenance::forget_app(dict, app);
        }
        WalRecord::ForgetLabel { app, input } => {
            maintenance::forget_label(dict, app, input);
        }
    }
    Ok(())
}

/// List a directory's segment files, sorted by sequence number.
fn list_segments(dir: &Path) -> Result<Vec<(u32, PathBuf)>, WalError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, &e))?;
        let name = entry.file_name().to_string_lossy().to_string();
        let Some(seq) = name
            .strip_prefix("segment-")
            .and_then(|s| s.strip_suffix(".efdb"))
            .and_then(|s| s.parse::<u32>().ok())
        else {
            continue;
        };
        out.push((seq, entry.path()));
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// The outcome of recovering a WAL directory.
#[derive(Debug)]
#[must_use = "recovery holds the rebuilt dictionary and the tail report"]
pub struct Recovery {
    /// The rebuilt dictionary: newest segment + replayed log tail.
    pub dictionary: EfdDictionary,
    /// Highest segment sequence number on disk (0 = no segments).
    pub segments: u32,
    /// Log records replayed.
    pub replayed: usize,
    /// Byte length of the log's valid prefix.
    pub log_valid_len: u64,
    /// Bytes of torn/corrupt tail past the valid prefix (0 = clean end).
    pub truncated_bytes: u64,
    /// The tail fault, if the log did not end cleanly (see
    /// [`LogReplay::fault`]). Recovery proceeds on the valid prefix.
    pub tail_fault: Option<WalError>,
}

/// Rebuild the dictionary a WAL directory describes, **without**
/// modifying the directory: the newest segment (a cumulative snapshot
/// superseding all older ones) loads first, then the log's valid record
/// prefix replays on top. Torn/corrupt tails are reported in
/// [`Recovery::tail_fault`]; header-level or segment-level problems are
/// hard errors.
pub fn recover(dir: &Path, catalog: &MetricCatalog) -> Result<Recovery, WalError> {
    let log_path = dir.join(LOG_FILE);
    let bytes = fs::read(&log_path).map_err(|e| io_err(&log_path, &e))?;
    let replay = read_log(&bytes)?;

    let segments = list_segments(dir)?;
    let newest = segments.last();
    let highest = newest.map_or(0, |&(seq, _)| seq);
    if highest < replay.base_segments {
        return Err(WalError::MissingSegments {
            expected: replay.base_segments,
            found: highest,
        });
    }

    let mut dict = match newest {
        None => EfdDictionary::new(replay.depth),
        Some((_, path)) => {
            let seg_bytes = fs::read(path).map_err(|e| io_err(path, &e))?;
            let seg_err = |error| WalError::Segment {
                path: path.display().to_string(),
                error,
            };
            // Checked-view load: validate the segment once, then thaw
            // the borrowed sections straight into parts — no owned
            // `Efdb` decode and no extra clone, so recovery pays one
            // materialization per segment byte instead of three.
            let view = binfmt::check(&seg_bytes).map_err(seg_err)?;
            if view.depth() != replay.depth {
                return Err(WalError::DepthMismatch {
                    log: replay.depth.get(),
                    segment: view.depth().get(),
                });
            }
            EfdDictionary::from_parts(view.to_parts(catalog).map_err(seg_err)?)
        }
    };
    for (i, rec) in replay.records.iter().enumerate() {
        apply_record(&mut dict, rec, catalog, i)?;
    }
    Ok(Recovery {
        dictionary: dict,
        segments: highest,
        replayed: replay.records.len(),
        log_valid_len: replay.valid_len,
        truncated_bytes: bytes.len() as u64 - replay.valid_len,
        tail_fault: replay.fault,
    })
}

/// An open, appendable WAL directory: the log file plus its frozen
/// segments.
///
/// Appends go through [`WalDir::append`] under the configured
/// [`SyncPolicy`]; when [`WalDir::should_freeze`] reports the log over
/// its size threshold, the owner passes the current dictionary state to
/// [`WalDir::freeze`], which writes an immutable canonical-EFDB segment
/// and resets the log. Crash windows are safe by construction:
///
/// * crash before a record syncs — the operation was never acknowledged;
/// * crash mid-append — torn tail, truncated on the next open;
/// * crash between segment write and log reset — a *stale* extra
///   segment whose operations the log still holds; recovery loads that
///   newest snapshot and replays the log over it, which is idempotent
///   (learns dedup, forgets re-remove), so it converges to the same
///   dictionary.
#[derive(Debug)]
pub struct WalDir {
    dir: PathBuf,
    file: fs::File,
    log_len: u64,
    depth: RoundingDepth,
    segments: u32,
    unsynced: u32,
    options: WalOptions,
}

impl WalDir {
    /// Open (or create) a WAL directory for appending, recovering
    /// whatever state it already holds.
    ///
    /// A fresh directory gets a log at `default_depth`; an existing log's
    /// depth wins (check [`Recovery::dictionary`]'s depth). A torn or
    /// corrupt tail is truncated away here — the fault stays visible in
    /// the returned [`Recovery`].
    pub fn open(
        dir: &Path,
        default_depth: RoundingDepth,
        catalog: &MetricCatalog,
        options: WalOptions,
    ) -> Result<(WalDir, Recovery), WalError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let log_path = dir.join(LOG_FILE);
        if !log_path.exists() {
            if !list_segments(dir)?.is_empty() {
                return Err(WalError::Io {
                    path: log_path.display().to_string(),
                    message: "wal.log missing but segments exist (delete them to start fresh)"
                        .to_string(),
                });
            }
            let mut file = fs::OpenOptions::new()
                .create(true)
                .truncate(true)
                .read(true)
                .write(true)
                .open(&log_path)
                .map_err(|e| io_err(&log_path, &e))?;
            file.write_all(&encode_header(default_depth, 0))
                .and_then(|()| file.sync_data())
                .map_err(|e| io_err(&log_path, &e))?;
            let me = WalDir {
                dir: dir.to_path_buf(),
                file,
                log_len: WAL_HEADER_LEN as u64,
                depth: default_depth,
                segments: 0,
                unsynced: 0,
                options,
            };
            let recovery = Recovery {
                dictionary: EfdDictionary::new(default_depth),
                segments: 0,
                replayed: 0,
                log_valid_len: WAL_HEADER_LEN as u64,
                truncated_bytes: 0,
                tail_fault: None,
            };
            return Ok((me, recovery));
        }

        let recovery = recover(dir, catalog)?;
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&log_path)
            .map_err(|e| io_err(&log_path, &e))?;
        if recovery.truncated_bytes > 0 {
            // Drop the torn/corrupt tail so new appends start at a clean
            // record boundary.
            file.set_len(recovery.log_valid_len)
                .and_then(|()| file.sync_data())
                .map_err(|e| io_err(&log_path, &e))?;
        }
        file.seek(SeekFrom::Start(recovery.log_valid_len))
            .map_err(|e| io_err(&log_path, &e))?;
        let me = WalDir {
            dir: dir.to_path_buf(),
            file,
            log_len: recovery.log_valid_len,
            depth: recovery.dictionary.depth(),
            segments: recovery.segments,
            unsynced: 0,
            options,
        };
        Ok((me, recovery))
    }

    /// The directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rounding depth recorded in the log header.
    pub fn depth(&self) -> RoundingDepth {
        self.depth
    }

    /// Current log length in bytes (header included).
    pub fn log_len(&self) -> u64 {
        self.log_len
    }

    /// Highest segment sequence number on disk (0 = no segments).
    pub fn segment_count(&self) -> u32 {
        self.segments
    }

    /// Append one operation record under the sync policy. On `Ok`, the
    /// record is written (and synced, policy permitting).
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), WalError> {
        let log_path = self.dir.join(LOG_FILE);
        let frame = frame_record(rec);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&log_path, &e))?;
        self.log_len += frame.len() as u64;
        match self.options.sync {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
            SyncPolicy::Never => self.unsynced += 1,
        }
        Ok(())
    }

    /// Flush outstanding appends to disk (`fsync`).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file
            .sync_data()
            .map_err(|e| io_err(&self.dir.join(LOG_FILE), &e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Whether the log's record bytes exceed the segment threshold.
    pub fn should_freeze(&self) -> bool {
        self.log_len - WAL_HEADER_LEN as u64 >= self.options.segment_bytes
    }

    /// Freeze the given dictionary state — which must reflect every
    /// operation logged so far (segments + this log) — into an immutable
    /// canonical-EFDB segment, then reset the log.
    ///
    /// Write order is crash-safe: the segment is written to a temp file,
    /// synced, renamed into place, and only then is the log truncated to
    /// a fresh header recording the new segment count.
    pub fn freeze(
        &mut self,
        parts: &DictionaryParts,
        catalog: &MetricCatalog,
    ) -> Result<PathBuf, WalError> {
        let seq = self.segments + 1;
        let path = self.dir.join(format!("segment-{seq:06}.efdb"));
        let tmp = self.dir.join(format!("segment-{seq:06}.efdb.tmp"));
        let bytes = binfmt::write(parts, catalog);
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
            f.write_all(&bytes)
                .and_then(|()| f.sync_all())
                .map_err(|e| io_err(&tmp, &e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, &e))?;

        // Reset the log: everything it held now lives in the segment.
        let log_path = self.dir.join(LOG_FILE);
        self.file.set_len(0).map_err(|e| io_err(&log_path, &e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err(&log_path, &e))?;
        self.file
            .write_all(&encode_header(self.depth, seq))
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err(&log_path, &e))?;
        self.segments = seq;
        self.log_len = WAL_HEADER_LEN as u64;
        self.unsynced = 0;
        Ok(path)
    }
}

/// Report from [`compact_in_place`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactReport {
    /// The merged segment that now holds everything.
    pub segment: PathBuf,
    /// Older segment files removed.
    pub removed: usize,
    /// Keys in the compacted dictionary.
    pub keys: usize,
    /// Log records folded in.
    pub replayed: usize,
}

/// Merge a WAL directory's segments + log tail into one canonical EFDB
/// segment, removing the superseded segment files and resetting the log.
///
/// The output is **canonical bytes**: identical to a from-scratch EFDB
/// dump of a dictionary holding the same content — the compaction
/// correctness oracle the durability tests assert.
pub fn compact_in_place(dir: &Path, catalog: &MetricCatalog) -> Result<CompactReport, WalError> {
    let recovery = recover(dir, catalog)?;
    let (mut wal, _) = WalDir::open(dir, recovery.dictionary.depth(), catalog, WalOptions::default())?;
    let parts = recovery.dictionary.to_parts();
    let keys = parts.entries.len();
    let segment = wal.freeze(&parts, catalog)?;
    let mut removed = 0usize;
    for (_, path) in list_segments(dir)? {
        if path != segment {
            fs::remove_file(&path).map_err(|e| io_err(&path, &e))?;
            removed += 1;
        }
    }
    Ok(CompactReport {
        segment,
        removed,
        keys,
        replayed: recovery.replayed,
    })
}

pub mod fault {
    //! Deterministic write-fault injection for durability tests.
    //!
    //! [`FaultyWriter`] is an in-memory `io::Write` that misbehaves at a
    //! controlled byte offset — the WAL analogue of the binfmt corruption
    //! matrix. The three fault shapes map to real failure modes:
    //!
    //! * [`Fault::TruncateAt`] — bytes past the offset vanish *silently*
    //!   (the writer believes they landed): power loss with data still in
    //!   the page cache. Produces a torn tail.
    //! * [`Fault::ShortWriteAt`] — the write errors after a partial
    //!   transfer (disk full, I/O error): the caller sees the failure, but
    //!   a record fragment is on disk anyway.
    //! * [`Fault::BitFlipAt`] — one byte is corrupted in passing (media
    //!   rot, DMA corruption). Produces a checksum mismatch mid-log.

    use std::io::{self, Write};

    /// The fault plan for a [`FaultyWriter`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Fault {
        /// Behave perfectly.
        None,
        /// Silently discard every byte at offset ≥ the given position,
        /// while reporting success.
        TruncateAt(usize),
        /// Accept bytes up to the given position, then fail the write.
        ShortWriteAt(usize),
        /// Flip the given bit mask into the byte at the given offset.
        BitFlipAt {
            /// Byte position to corrupt.
            offset: usize,
            /// XOR mask applied to that byte.
            mask: u8,
        },
    }

    /// An in-memory writer that injects one [`Fault`] at a byte offset.
    #[derive(Debug)]
    pub struct FaultyWriter {
        buf: Vec<u8>,
        fault: Fault,
    }

    impl FaultyWriter {
        /// A writer that will inject `fault`.
        pub fn new(fault: Fault) -> Self {
            Self {
                buf: Vec::new(),
                fault,
            }
        }

        /// The bytes that actually "reached the disk".
        pub fn bytes(&self) -> &[u8] {
            &self.buf
        }

        /// Consume the writer, returning the surviving bytes.
        pub fn into_bytes(self) -> Vec<u8> {
            self.buf
        }
    }

    impl Write for FaultyWriter {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            match self.fault {
                Fault::None => {
                    self.buf.extend_from_slice(data);
                    Ok(data.len())
                }
                Fault::TruncateAt(limit) => {
                    let keep = limit.saturating_sub(self.buf.len()).min(data.len());
                    self.buf.extend_from_slice(&data[..keep]);
                    // Lie: report full success, like a page cache that
                    // never reaches the platter.
                    Ok(data.len())
                }
                Fault::ShortWriteAt(limit) => {
                    let keep = limit.saturating_sub(self.buf.len()).min(data.len());
                    self.buf.extend_from_slice(&data[..keep]);
                    if keep == data.len() {
                        Ok(data.len())
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "injected short write",
                        ))
                    }
                }
                Fault::BitFlipAt { offset, mask } => {
                    let start = self.buf.len();
                    self.buf.extend_from_slice(data);
                    if offset >= start && offset < self.buf.len() {
                        self.buf[offset] ^= mask;
                    }
                    Ok(data.len())
                }
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
}

/// Build a complete in-memory log image (header + framed records) — the
/// byte stream a [`WalDir`] would hold after the same appends. The
/// durability test matrix runs faults over exactly these bytes.
pub fn encode_log(depth: RoundingDepth, base_segments: u32, records: &[WalRecord]) -> Vec<u8> {
    let mut out = encode_header(depth, base_segments).to_vec();
    for rec in records {
        out.extend_from_slice(&frame_record(rec));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Query;
    use efd_telemetry::catalog::small_catalog;
    use efd_telemetry::MetricId;

    fn obs(app: &str, input: &str, means: &[f64]) -> LabeledObservation {
        LabeledObservation {
            label: AppLabel::new(app, input),
            query: Query::from_node_means(MetricId(0), Interval::PAPER_DEFAULT, means),
        }
    }

    fn learn_records(catalog: &MetricCatalog) -> Vec<WalRecord> {
        [
            obs("sp", "X", &[7617.0, 7520.0, 7520.0, 7121.0]),
            obs("bt", "X", &[7638.0, 7540.0, 7540.0, 7140.0]),
            obs("ft", "Y", &[6023.0, 6019.0, 6021.0, 6018.0]),
        ]
        .iter()
        .map(|o| WalRecord::Learn(LearnRecord::from_observation(o, catalog)))
        .collect()
    }

    #[test]
    fn record_roundtrip_all_kinds() {
        let catalog = small_catalog();
        let mut records = learn_records(&catalog);
        records.push(WalRecord::ForgetApp { app: "sp".into() });
        records.push(WalRecord::ForgetLabel {
            app: "ft".into(),
            input: "Y".into(),
        });
        for rec in &records {
            let payload = encode_payload(rec);
            assert_eq!(&decode_payload(&payload, 0).unwrap(), rec);
        }
    }

    #[test]
    fn log_roundtrip_and_replay() {
        let catalog = small_catalog();
        let records = learn_records(&catalog);
        let bytes = encode_log(RoundingDepth::new(2), 0, &records);
        let replay = read_log(&bytes).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.valid_len, bytes.len() as u64);
        assert!(replay.fault.is_none());

        let mut dict = EfdDictionary::new(replay.depth);
        for (i, rec) in replay.records.iter().enumerate() {
            apply_record(&mut dict, rec, &catalog, i).unwrap();
        }
        let metric = catalog.id("nr_mapped_vmstat").unwrap();
        let q = Query::from_node_means(
            metric,
            Interval::PAPER_DEFAULT,
            &[6031.0, 5988.0, 6007.0, 6044.0],
        );
        assert_eq!(dict.recognize(&q).best(), Some("ft"));
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let catalog = small_catalog();
        let records = learn_records(&catalog);
        let bytes = encode_log(RoundingDepth::new(2), 0, &records);
        // Cut 5 bytes into the final record.
        let last_frame = frame_record(&records[2]).len();
        let cut = bytes.len() - last_frame + 5;
        let replay = read_log(&bytes[..cut]).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.valid_len as usize, bytes.len() - last_frame);
        assert!(matches!(replay.fault, Some(WalError::TornRecord { .. })));
    }

    #[test]
    fn flipped_payload_byte_is_a_corrupt_record() {
        let catalog = small_catalog();
        let records = learn_records(&catalog);
        let mut bytes = encode_log(RoundingDepth::new(2), 0, &records);
        // Corrupt a payload byte of the second record.
        let first = frame_record(&records[0]).len();
        let at = WAL_HEADER_LEN + first + RECORD_FRAME_LEN + 3;
        bytes[at] ^= 0x40;
        let replay = read_log(&bytes).unwrap();
        assert_eq!(replay.records.len(), 1, "replay stops at the last valid record");
        assert!(matches!(
            replay.fault,
            Some(WalError::CorruptRecord { offset, .. })
                if offset == (WAL_HEADER_LEN + first) as u64
        ));
    }

    #[test]
    fn header_errors_are_hard() {
        let catalog = small_catalog();
        let bytes = encode_log(RoundingDepth::new(2), 0, &learn_records(&catalog));
        assert!(matches!(
            read_log(&[]).unwrap_err(),
            WalError::Truncated { what: "wal header", .. }
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_log(&bad_magic).unwrap_err(),
            WalError::BadMagic { .. }
        ));
        let mut newer = bytes.clone();
        newer[6] = (WAL_VERSION_MINOR + 1) as u8;
        assert!(matches!(
            read_log(&newer).unwrap_err(),
            WalError::UnsupportedVersion { .. }
        ));
        let mut bad_depth = bytes;
        bad_depth[8] = 0;
        assert_eq!(read_log(&bad_depth).unwrap_err(), WalError::InvalidDepth(0));
    }

    #[test]
    fn wal_dir_appends_recover_and_freeze() {
        let catalog = small_catalog();
        let dir = std::env::temp_dir().join(format!("efd-wal-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let depth = RoundingDepth::new(2);
        let observations = [
            obs("sp", "X", &[7617.0, 7520.0, 7520.0, 7121.0]),
            obs("bt", "X", &[7638.0, 7540.0, 7540.0, 7140.0]),
            obs("ft", "Y", &[6023.0, 6019.0, 6021.0, 6018.0]),
        ];

        // Session 1: learn two observations, freeze after the first.
        let mut oracle = EfdDictionary::new(depth);
        {
            let (mut wal, rec) = WalDir::open(&dir, depth, &catalog, WalOptions::default()).unwrap();
            assert!(rec.dictionary.is_empty());
            for (i, o) in observations[..2].iter().enumerate() {
                wal.append(&WalRecord::Learn(LearnRecord::from_observation(o, &catalog)))
                    .unwrap();
                oracle.learn(o);
                if i == 0 {
                    wal.freeze(&oracle.to_parts(), &catalog).unwrap();
                    assert_eq!(wal.segment_count(), 1);
                }
            }
            wal.sync().unwrap();
        }

        // Session 2: recovery = segment + log tail; keep learning.
        {
            let (mut wal, rec) = WalDir::open(&dir, depth, &catalog, WalOptions::default()).unwrap();
            assert_eq!(rec.segments, 1);
            assert_eq!(rec.replayed, 1);
            assert_eq!(rec.dictionary.len(), oracle.len());
            wal.append(&WalRecord::Learn(LearnRecord::from_observation(
                &observations[2],
                &catalog,
            )))
            .unwrap();
            oracle.learn(&observations[2]);
            wal.sync().unwrap();
        }

        // Compaction merges everything into one canonical segment.
        let report = compact_in_place(&dir, &catalog).unwrap();
        assert_eq!(report.removed, 1);
        assert_eq!(report.keys, oracle.len());
        let seg_bytes = fs::read(&report.segment).unwrap();
        assert_eq!(
            seg_bytes,
            binfmt::write_dictionary(&oracle, &catalog),
            "compaction output must be canonical-bytes-equal to a from-scratch dump"
        );

        // Final recovery answers like the oracle.
        let rec = recover(&dir, &catalog).unwrap();
        let metric = catalog.id("nr_mapped_vmstat").unwrap();
        for means in [
            [7601.0, 7512.0, 7533.0, 7098.0],
            [6031.0, 5988.0, 6007.0, 6044.0],
            [1.0, 2.0, 3.0, 4.0],
        ] {
            let q = Query::from_node_means(metric, Interval::PAPER_DEFAULT, &means);
            assert_eq!(rec.dictionary.recognize(&q), oracle.recognize(&q));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_is_a_hard_error() {
        let catalog = small_catalog();
        let dir = std::env::temp_dir().join(format!("efd-wal-missing-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let depth = RoundingDepth::new(2);
        {
            let (mut wal, _) = WalDir::open(&dir, depth, &catalog, WalOptions::default()).unwrap();
            let mut d = EfdDictionary::new(depth);
            let o = obs("sp", "X", &[7617.0]);
            wal.append(&WalRecord::Learn(LearnRecord::from_observation(&o, &catalog)))
                .unwrap();
            d.learn(&o);
            wal.freeze(&d.to_parts(), &catalog).unwrap();
        }
        fs::remove_file(dir.join("segment-000001.efdb")).unwrap();
        assert_eq!(
            recover(&dir, &catalog).unwrap_err(),
            WalError::MissingSegments {
                expected: 1,
                found: 0
            }
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_writer_truncates_silently() {
        use fault::{Fault, FaultyWriter};
        let mut w = FaultyWriter::new(Fault::TruncateAt(10));
        w.write_all(&[1u8; 8]).unwrap();
        w.write_all(&[2u8; 8]).unwrap(); // reports success, keeps 2 bytes
        assert_eq!(w.bytes().len(), 10);

        let mut w = FaultyWriter::new(Fault::ShortWriteAt(10));
        w.write_all(&[1u8; 8]).unwrap();
        assert!(w.write_all(&[2u8; 8]).is_err());
        assert_eq!(w.bytes().len(), 10, "partial bytes land before the error");

        let mut w = FaultyWriter::new(Fault::BitFlipAt { offset: 3, mask: 0x80 });
        w.write_all(&[0u8; 8]).unwrap();
        assert_eq!(w.bytes()[3], 0x80);
    }

    #[test]
    fn sync_policy_parses() {
        assert_eq!(SyncPolicy::parse("always"), Some(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("batch"), Some(SyncPolicy::EveryN(32)));
        assert_eq!(SyncPolicy::parse("none"), Some(SyncPolicy::Never));
        assert_eq!(SyncPolicy::parse("7"), Some(SyncPolicy::EveryN(7)));
        assert_eq!(SyncPolicy::parse("0"), None);
        assert_eq!(SyncPolicy::parse("sometimes"), None);
    }
}
