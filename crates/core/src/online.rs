//! Streaming recognition during execution.
//!
//! The paper's pitch is low latency: a verdict within the first two
//! minutes, *while the job is still running*. [`OnlineRecognizer`] wires
//! the telemetry stream into the dictionary: samples are fed as they
//! arrive (per node, per metric, per second); window aggregators emit
//! means the moment each fingerprint window closes; when every stream's
//! windows have closed, the recognizer emits its verdict. No raw series
//! are buffered — memory is O(nodes × metrics).

use efd_telemetry::streaming::MultiWindowAggregator;
use efd_telemetry::{Interval, MetricId, NodeId};
use efd_util::FxHashMap;

use crate::dictionary::{EfdDictionary, Recognition};
use crate::observation::{ObsPoint, Query};

/// Incremental recognizer over live telemetry streams.
#[derive(Debug, Clone)]
pub struct OnlineRecognizer<'d> {
    dict: &'d EfdDictionary,
    intervals: Vec<Interval>,
    aggs: FxHashMap<(NodeId, MetricId), MultiWindowAggregator>,
    points: Vec<ObsPoint>,
    expected_summaries: usize,
    emitted: bool,
}

impl<'d> OnlineRecognizer<'d> {
    /// Set up streams for `nodes × metrics`, fingerprinting `intervals`.
    pub fn new(
        dict: &'d EfdDictionary,
        metrics: &[MetricId],
        nodes: &[NodeId],
        intervals: Vec<Interval>,
    ) -> Self {
        assert!(!intervals.is_empty(), "no fingerprint intervals");
        let mut aggs = FxHashMap::default();
        for &n in nodes {
            for &m in metrics {
                aggs.insert((n, m), MultiWindowAggregator::new(intervals.clone()));
            }
        }
        let expected_summaries = nodes.len() * metrics.len() * intervals.len();
        Self {
            dict,
            intervals,
            aggs,
            points: Vec::new(),
            expected_summaries,
            emitted: false,
        }
    }

    /// Seconds after which all windows have closed (worst case).
    pub fn horizon_s(&self) -> u32 {
        self.intervals.iter().map(|iv| iv.end).max().unwrap_or(0)
    }

    /// Feed one sample. Returns the final recognition exactly once — when
    /// the last open window across all streams closes.
    pub fn push(&mut self, node: NodeId, metric: MetricId, t: u32, value: f64) -> Option<Recognition> {
        if self.emitted {
            return None;
        }
        let Some(agg) = self.aggs.get_mut(&(node, metric)) else {
            return None; // undeclared stream: ignore
        };
        for summary in agg.push(t, value) {
            self.points.push(ObsPoint {
                metric,
                node,
                interval: summary.interval,
                mean: summary.mean(),
            });
        }
        if self.points.len() >= self.expected_summaries {
            self.emitted = true;
            return Some(self.recognize_now());
        }
        None
    }

    /// Recognition over the windows closed *so far* (early peek; may be
    /// `Unknown` simply because no window has closed yet).
    pub fn current(&self) -> Recognition {
        self.recognize_now()
    }

    /// Number of window means collected so far.
    pub fn collected(&self) -> usize {
        self.points.len()
    }

    /// Force a verdict from whatever has been collected, flushing all
    /// still-open windows (job ended early).
    pub fn finish(&mut self) -> Recognition {
        if !self.emitted {
            let mut flushed: Vec<ObsPoint> = Vec::new();
            for ((node, metric), agg) in self.aggs.iter_mut() {
                for summary in agg.finish() {
                    flushed.push(ObsPoint {
                        metric: *metric,
                        node: *node,
                        interval: summary.interval,
                        mean: summary.mean(),
                    });
                }
            }
            self.points.extend(flushed);
            self.emitted = true;
        }
        self.recognize_now()
    }

    fn recognize_now(&self) -> Recognition {
        let q = Query {
            points: self.points.clone(),
        };
        self.dict.recognize(&q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Verdict;
    use crate::observation::LabeledObservation;
    use crate::rounding::RoundingDepth;
    use efd_telemetry::AppLabel;

    const M: MetricId = MetricId(0);
    const W: Interval = Interval::PAPER_DEFAULT;

    fn dict() -> EfdDictionary {
        let mut d = EfdDictionary::new(RoundingDepth::new(2));
        d.learn(&LabeledObservation {
            label: AppLabel::new("ft", "X"),
            query: Query::from_node_means(M, W, &[6000.0, 6000.0]),
        });
        d
    }

    #[test]
    fn emits_when_window_closes() {
        let d = dict();
        let mut rec = OnlineRecognizer::new(&d, &[M], &[NodeId(0), NodeId(1)], vec![W]);
        assert_eq!(rec.horizon_s(), 120);
        let mut verdict = None;
        for t in 0..=120u32 {
            for n in [NodeId(0), NodeId(1)] {
                // Wild values before 60 s (init phase) — must not matter.
                let v = if t < 60 { 50_000.0 } else { 6010.0 };
                if let Some(r) = rec.push(n, M, t, v) {
                    assert!(verdict.is_none(), "double emit");
                    verdict = Some((t, r));
                }
            }
        }
        let (t, r) = verdict.expect("no verdict by horizon");
        assert_eq!(t, 120, "verdict should land exactly at window close");
        assert_eq!(r.verdict, Verdict::Recognized("ft".into()));
    }

    #[test]
    fn current_is_unknown_before_any_window_closes() {
        let d = dict();
        let mut rec = OnlineRecognizer::new(&d, &[M], &[NodeId(0)], vec![W]);
        for t in 0..100u32 {
            rec.push(NodeId(0), M, t, 6000.0);
        }
        assert_eq!(rec.collected(), 0);
        assert_eq!(rec.current().verdict, Verdict::Unknown);
    }

    #[test]
    fn finish_flushes_partial_windows() {
        let d = dict();
        let mut rec = OnlineRecognizer::new(&d, &[M], &[NodeId(0), NodeId(1)], vec![W]);
        for t in 0..90u32 {
            rec.push(NodeId(0), M, t, 6005.0);
            rec.push(NodeId(1), M, t, 5995.0);
        }
        let r = rec.finish();
        // 30 in-window samples per node: enough for a mean → recognized.
        assert_eq!(r.verdict, Verdict::Recognized("ft".into()));
        assert_eq!(r.matched_points, 2);
    }

    #[test]
    fn undeclared_stream_ignored() {
        let d = dict();
        let mut rec = OnlineRecognizer::new(&d, &[M], &[NodeId(0)], vec![W]);
        assert!(rec.push(NodeId(9), M, 0, 1.0).is_none());
        assert_eq!(rec.collected(), 0);
    }

    #[test]
    fn no_second_emission() {
        let d = dict();
        let mut rec = OnlineRecognizer::new(&d, &[M], &[NodeId(0)], vec![W]);
        let mut emitted = 0;
        for t in 0..300u32 {
            if rec.push(NodeId(0), M, t, 6000.0).is_some() {
                emitted += 1;
            }
        }
        assert_eq!(emitted, 1);
    }
}
